"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_stats_command(self, capsys):
        rc = main(["stats", "--objects", "200", "--users", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Total objects: 200" in out

    def test_demo_command(self, capsys):
        rc = main([
            "demo", "--objects", "200", "--users", "20", "--locations", "3",
            "--k", "3", "--ws", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "|BRSTkNN|=" in out
        assert "simulated I/O" in out

    def test_demo_indexed_mode(self, capsys):
        rc = main([
            "demo", "--objects", "200", "--users", "20", "--locations", "3",
            "--mode", "indexed", "--k", "3",
        ])
        assert rc == 0
        assert "users pruned" in capsys.readouterr().out

    def test_demo_exact_yelp(self, capsys):
        rc = main([
            "demo", "--dataset", "yelp", "--objects", "300", "--users", "15",
            "--locations", "2", "--method", "exact", "--k", "3", "--uw", "8",
        ])
        assert rc == 0

    def test_batch_command_with_explain(self, capsys):
        rc = main([
            "batch", "--objects", "200", "--users", "20", "--locations", "3",
            "--k", "3", "--batch-size", "4", "--explain",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan: batch of 4" in out
        assert "queries/sec" in out

    def test_serve_command_verifies_against_sequential(self, capsys):
        rc = main([
            "serve", "--objects", "200", "--users", "20", "--locations", "3",
            "--k", "3", "--queries", "6", "--max-batch", "4", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 6 concurrent queries" in out
        assert "verify: served results == sequential" in out
        # --verify points at the static half of the verification story.
        assert "repro lint src/" in out

    def test_serve_sharded_with_auto_wait_verifies(self, capsys):
        rc = main([
            "serve", "--objects", "200", "--users", "20", "--locations", "3",
            "--k", "3", "--queries", "6", "--max-batch", "4",
            "--shards", "2", "--partitioner", "grid", "--max-wait-ms", "auto",
            "--verify", "--explain",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scatter: width" in out
        assert "shard[0]:" in out  # per-shard counters surfaced
        assert "adaptive_wait_ms" in out
        assert "partition_skew" in out
        assert (
            "verify: served results == sequential on 6 queries "
            "(mode=joint, shards=2)" in out
        )

    def test_serve_sharded_indexed_verifies(self, capsys):
        rc = main([
            "serve", "--objects", "200", "--users", "20", "--locations", "3",
            "--k", "3", "--queries", "6", "--max-batch", "4",
            "--shards", "2", "--mode", "indexed", "--verify", "--explain",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MIUR-root joint traversal" in out
        assert (
            "verify: served results == sequential on 6 queries "
            "(mode=indexed, shards=2)" in out
        )

    def test_serve_indexed_verifies_against_sequential(self, capsys):
        rc = main([
            "serve", "--objects", "200", "--users", "20", "--locations", "3",
            "--k", "3", "--queries", "4", "--max-batch", "4",
            "--mode", "indexed", "--verify",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert (
            "verify: served results == sequential on 4 queries "
            "(mode=indexed, shards=1)" in out
        )

    def test_serve_rejects_bad_max_wait(self, capsys):
        rc = main([
            "serve", "--objects", "200", "--users", "20", "--queries", "2",
            "--max-wait-ms", "soon",
        ])
        assert rc == 2

    def test_serve_rejects_sharded_baseline(self, capsys):
        rc = main([
            "serve", "--objects", "200", "--users", "20", "--queries", "2",
            "--shards", "2", "--mode", "baseline",
        ])
        assert rc == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
