"""shm-payload checker: SM601/SM602 at exact lines, and silence."""

from repro.analysis import ShmPayloadChecker, run_paths

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestShmPayloadViolations:
    def test_pickled_tainted_names_fire_sm601(self, lint_fixture):
        report, path = lint_fixture("shm_bad.py", ShmPayloadChecker())
        found = rules_at(report)
        for needle in (
            "pickle.dumps(view)",
            "pickle.dumps(handle)",
            "pickle.dumps(arrays, protocol=5)",
        ):
            assert ("SM601", line_of(path, needle)) in found

    def test_inline_construction_fires_sm601(self, lint_fixture):
        report, path = lint_fixture("shm_bad.py", ShmPayloadChecker())
        needle = "pickle.dump(TreeArrays(dataset), fh)"
        assert ("SM601", line_of(path, needle)) in rules_at(report)

    def test_raw_shared_memory_fires_sm602_everywhere(self, lint_fixture):
        report, path = lint_fixture("shm_bad.py", ShmPayloadChecker())
        found = rules_at(report)
        for needle in (
            "SharedMemory(name=name, create=True, size=4096)",
            "shared_memory.SharedMemory(name=name)",
            "SharedMemory(name=name)  # noqa: F821  SM602 (wrong class)",
        ):
            assert ("SM602", line_of(path, needle)) in found

    def test_only_the_two_family_codes_fire(self, lint_fixture):
        report, _ = lint_fixture("shm_bad.py", ShmPayloadChecker())
        assert report.findings, "the bad fixture must fire"
        assert {f.rule for f in report.findings} == {"SM601", "SM602"}


class TestShmPayloadCleanCode:
    def test_sanctioned_patterns_are_silent(self, lint_fixture):
        # Covers: ArenaRef shipping, plain-value pickling, by-name
        # column reads, attach/close — and the ShmArena class-name
        # exemption that lets the tier's one construction site pass.
        report, _ = lint_fixture("shm_ok.py", ShmPayloadChecker())
        assert report.findings == []

    def test_shipped_storage_tier_is_clean(self):
        import repro.core.kernels as kernels_mod
        import repro.core.partial as partial_mod
        import repro.core.payload as payload_mod
        import repro.storage.shm as shm_mod

        report = run_paths(
            [
                mod.__file__
                for mod in (kernels_mod, partial_mod, payload_mod, shm_mod)
            ],
            [ShmPayloadChecker()],
        )
        assert report.findings == []
