"""Fixture: raw pickle calls in a module that touches sockets.

Analyzed by path only — never imported (``pickle``, ``FrameCodec`` and
friends are free variables on purpose).  The ``import socket`` below is
what puts this module on the socket path.
"""

import asyncio
import socket


def ships_raw_pickle(sock, payload):
    sock.sendall(pickle.dumps(payload))  # noqa: F821  TR701 (dumps)


def reads_raw_pickle(sock):
    return pickle.loads(sock.recv(65536))  # noqa: F821  TR701 (loads)


async def streams_raw_pickle(writer, payload, fh):
    pickle.dump(payload, fh)  # noqa: F821  TR701 (dump to file-like)
    writer.write(b"")
    await writer.drain()


class NotACodec:
    """A pickle call inside some other class is still out of bounds."""

    def decode(self, body):
        return pickle.loads(body)  # noqa: F821  TR701 (wrong class)
