"""Fixture: Stage subclasses whose declarations match their ctx use."""


class CleanCentralStage(Stage):  # noqa: F821
    name = "clean-central"
    inputs = ("queries", "plan")
    outputs = ("results",)
    optional = ("verbose",)

    def run_central(self, ctx):
        queries = ctx.require("queries")
        plan = ctx["plan"]
        if ctx.get("verbose"):
            print(plan)
        # Re-reading an output the stage itself wrote is legal.
        ctx.setdefault("results", [])
        ctx["results"].extend(queries)


class CleanScatterStage(Stage):  # noqa: F821
    name = "clean-scatter"
    scatter = True
    inputs = ("queries",)
    outputs = ("results",)
    scratch = ("chunk_groups",)

    def split(self, ctx, shard):
        queries = ctx["queries"]
        ctx["chunk_groups"] = [list(range(len(queries)))]
        return [("search", queries)]

    def merge(self, ctx, partials_per_shard):
        groups = ctx["chunk_groups"]
        ctx["results"] = [partials_per_shard, groups]


class InheritingStage(CleanCentralStage):
    """Declarations are inherited; this body stays inside them."""

    name = "inheriting"

    def run_central(self, ctx):
        ctx["results"] = list(ctx["queries"])
