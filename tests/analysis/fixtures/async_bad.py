"""Fixture: blocking calls on the event-loop thread."""

import time
from time import sleep


async def sleepy_handler(request):
    time.sleep(0.5)  # AB401 (time.sleep)
    sleep(0.1)  # AB401 (bare sleep)
    return request


async def shutdown(pool, flusher):
    pool.join()  # AB402 (pool join)
    flusher.join()  # AB402 (no-arg join)
    worker_pool.close()  # noqa: F821  AB402 (pool-like close)


async def read_config(path):
    with open(path) as fh:  # AB403 (blocking file I/O)
        return fh.read()


async def handle_query(engine, query, options):
    return engine.query(query, options)  # AB404 (sync engine query)


async def handle_batch(engine, queries, options):
    results = engine.query_batch(queries, options)  # AB404
    return results
