"""Fixture: sanctioned socket-path patterns the transport family allows.

Pickle confined to the codec funnels, frames built through them, and —
in ``off_socket_path``-style modules without socket imports — nothing
in scope at all (that case lives in ``pool_ok.py``; this module DOES
import socket, so silence here proves the exemptions, not the scope
gate).
"""

import asyncio
import socket


class FrameCodec:
    """The one sanctioned body-pickle site on the socket path."""

    @staticmethod
    def encode_body(obj):
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)  # noqa: F821

    @staticmethod
    def decode_body(data):
        return pickle.loads(data)  # noqa: F821


class PayloadCodec:
    """Scatter payloads get the same dispensation."""

    def encode(self, payload):
        return pickle.dumps(payload)  # noqa: F821


def ships_through_the_funnel(sock, payload):
    sock.sendall(FrameCodec.encode_body(payload))


async def reads_through_the_funnel(reader):
    body = await reader.readexactly(21)
    return FrameCodec.decode_body(body)


def non_pickle_serialization(sock, rows):
    # Other codecs are fine — the rule is about pickle specifically.
    sock.sendall(encode_gather_payload(rows))  # noqa: F821
