"""Fixture: sanctioned shm patterns the shm-payload family must not flag.

Analyzed by path only — never imported.
"""


def ships_by_name(codec, rsk):
    # The sanctioned transport: an ArenaRef name, not bytes.
    return codec.ship(rsk, "rsk-root", kind="rsk")


def pickles_plain_values(payload):
    # Pickling untainted values is the normal pipe path.
    return pickle.dumps(payload)  # noqa: F821


def measures_payload_bytes(payload):
    # payload_nbytes pickles internally but takes plain payloads.
    return payload_nbytes(payload)  # noqa: F821


def reads_column_by_name(arena_name, column):
    return ShmArena.read_column_bytes(arena_name, column)  # noqa: F821


def attaches_without_pickling(name):
    arena = ShmArena.attach(name)  # noqa: F821
    try:
        return arena.get_bytes("col")
    finally:
        arena.close()


class ShmArena:
    """The one class allowed to construct segments (name-exempted)."""

    @staticmethod
    def _open(name, create, size=0):
        from multiprocessing import shared_memory

        return shared_memory.SharedMemory(name=name, create=create, size=size)

    def reopen(self, name):
        return SharedMemory(name=name)  # noqa: F821
