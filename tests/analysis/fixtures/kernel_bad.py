"""Fixture: identity kernels breaking the bitwise-exactness bans."""

import math

import numpy as np


def node_lower_bounds(dx, dy, weights, starts):
    # Allowlisted name: every banned op below must fire.
    dist = np.hypot(dx, dy)  # KI301 (hypot)
    total = math.fsum(weights)  # KI301 (fsum)
    pairwise = weights.sum()  # KI302 (.sum reduction)
    segmented = np.add.reduceat(weights, starts)  # KI302 (reduceat)
    return dist, total, pairwise, segmented


def helper_outside_allowlist(weights):
    # Not an identity kernel: the same ops are fine here.
    return np.hypot(weights, weights), weights.sum()


def marked_kernel(a, b):  # repro: identity-kernel
    scores = np.einsum("ij,j->i", a, b)  # KI302 (einsum)
    return scores


def matmul_kernel(terms, w):  # repro: identity-kernel
    def inner_step(block):
        # Nested helpers run inside the kernel's contract too.
        return block @ w  # KI302 (matrix product)

    return [inner_step(t) for t in terms]
