"""Fixture: the PR 3 token-registry discipline, done right."""

_REGISTRY = {}


def _init_worker(token):
    _REGISTRY["current"] = token


def _run_payload(payload):
    return payload


def start_pool(ctx, token, payloads):
    # Module-level initializer + small int token: picklable and tiny.
    pool = ctx.Pool(2, initializer=_init_worker, initargs=(token,))
    return pool.map(_run_payload, list(payloads))


def token_payloads(pool, queries, method, backend):
    # Payload tuples carry only small plain data, never arrays.
    payloads = [("refine", list(queries), method, backend)]
    return pool.map(_run_payload, payloads)


def dataset_stays_home(queries):
    # Constructing COW-only types is fine when they never reach a
    # boundary site.
    dataset = Dataset.synthetic()  # noqa: F821
    return dataset.stats(), list(queries)
