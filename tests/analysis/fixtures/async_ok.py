"""Fixture: the approved async patterns — nothing here may fire."""

import asyncio
import time
from functools import partial


async def patient_handler(request):
    await asyncio.sleep(0.5)
    return request


async def executor_query(engine, queries, options):
    loop = asyncio.get_running_loop()
    # Handing the *bound method* to the executor is the approved
    # pattern — the engine call runs off the loop thread.
    return await loop.run_in_executor(
        None, partial(engine.query_batch, queries, options)
    )


async def joining_strings(parts):
    return ", ".join(parts)


async def spawn_reader(path):
    def read_sync():
        # A nested sync def is another execution context: blocking
        # I/O inside it is exactly what run_in_executor expects.
        with open(path) as fh:
            return fh.read()

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read_sync)


def sync_helper(engine, query, options):
    # Synchronous code may sleep and query freely.
    time.sleep(0.01)
    return engine.query(query, options)
