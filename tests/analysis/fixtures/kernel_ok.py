"""Fixture: identity kernels that keep the scalar association order."""

import math

import numpy as np


def weights_of(user, weights):
    # Allowlisted name, clean body: builtin sum accumulates strictly
    # left to right — the scalar reference's own order.
    total = sum(weights[t] for t in sorted(user))
    return total


def frontier_bounds(dx, dy):
    # The exact scalar spelling of the metric: sqrt(dx*dx + dy*dy).
    return np.sqrt(dx * dx + dy * dy)


def guard_banded_scores(terms, w):
    # NOT an identity kernel (not allowlisted, no marker): reductions
    # are allowed under the weaker guard-band contract.
    return terms @ w + math.fsum(w)
