"""Patterns FT501 must stay silent on."""


class PersistentWorkerPool:
    # The supervisor itself may touch the raw pool: that is its job.
    def dispatch(self, payloads):
        return self._pool.map_async(self._fn, payloads)

    def run_shard_tasks_async(self, payloads):
        return self._pool.map_async(self._fn, payloads)


def supervised(pool, payloads):
    # The sanctioned path: deadline + retry apply.
    return pool.run_supervised(payloads)


def ticketed(pool, payloads):
    ticket = pool.dispatch(payloads)
    return pool.collect(ticket)


def ephemeral_sync_map(fork_pool, fn, chunks):
    # Synchronous map on a per-round pool is out of scope.
    return fork_pool.map(fn, chunks)


def not_a_pool(executor, fn, items):
    # Async dispatch on a non-pool receiver is someone else's API.
    return executor.map_async(fn, items)


def iterator_helper(data, fn):
    return data.imap(fn)
