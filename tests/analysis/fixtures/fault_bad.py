"""FT501 violations: bare pool dispatches that bypass the supervisor."""


def legacy_dispatch(pool, payloads):
    handle = pool.run_shard_tasks_async(payloads)
    return handle.get()


def bare_map_async(worker_pool, fn, items):
    return worker_pool.map_async(fn, items)


def bare_apply(self, fn):
    return self._search_pool.apply_async(fn)


def bare_imap(shard_pool, fn, items):
    return list(shard_pool.imap(fn, items))


class ShardRunner:
    def scatter(self, fn, plans):
        return self.pool.starmap_async(fn, plans)
