"""Fixture: unpicklable / COW-only state crossing the pool boundary.

Analyzed by path only — never imported (names like ``Dataset`` and
``pool`` are free variables on purpose).
"""


def lambda_into_map(pool, items):
    return pool.map(lambda x: x + 1, items)  # PB201 (lambda)


def closure_into_map(pool, items):
    def helper(x):  # a closure: unpicklable
        return x + 1

    return pool.map(helper, items)  # PB201 (local function)


def dataset_into_payload(pool, queries):
    dataset = Dataset.synthetic()  # noqa: F821
    payload = ("refine", dataset, queries)  # PB202 (tainted name)
    return pool.map(run_payload, [payload])  # noqa: F821


def arrays_constructed_inline(pool, queries):
    return pool.map(
        run_payload,  # noqa: F821
        [("search", DatasetArrays(None), queries)],  # noqa: F821  PB202
    )


class Submitter:
    def submit(self, pool, items):
        return pool.map(self.process, items)  # PB203 (bound method)

    def process(self, item):
        return item


def bad_initializer(ctx, dataset):
    tree = TreeArrays(dataset)  # noqa: F821
    return ctx.Pool(
        4,
        initializer=lambda: None,  # PB201 (lambda initializer)
        initargs=(tree,),  # PB202 (tainted initargs)
    )


def payload_tuple_outside_submit(queries):
    store = PageStore("pages.bin")  # noqa: F821
    work = ("indexed_search", queries, store)  # PB202 (payload tuple)
    return work
