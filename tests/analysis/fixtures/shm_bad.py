"""Fixture: shm-backed state pickled, raw SharedMemory outside the arena.

Analyzed by path only — never imported (``pickle``, ``ShmArena`` and
friends are free variables on purpose).
"""


def pickles_arena_view(arena, payload):
    view = arena.add_array("col", payload)
    return pickle.dumps(view)  # noqa: F821  SM601 (tainted name)


def pickles_attached_arena(name):
    handle = ShmArena.attach(name)  # noqa: F821
    return pickle.dumps(handle)  # noqa: F821  SM601 (arena handle)


def pickles_kernel_arrays(dataset):
    arrays = arrays_for(dataset)  # noqa: F821
    return pickle.dumps(arrays, protocol=5)  # noqa: F821  SM601


def pickles_inline_construction(dataset, fh):
    pickle.dump(TreeArrays(dataset), fh)  # noqa: F821  SM601 (inline)


def raw_segment(name):
    return SharedMemory(name=name, create=True, size=4096)  # noqa: F821  SM602


def raw_segment_dotted(name):
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)  # SM602 (dotted)


class NotTheArena:
    """A SharedMemory inside some other class is still out of bounds."""

    def open(self, name):
        return SharedMemory(name=name)  # noqa: F821  SM602 (wrong class)
