"""Fixture: Stage subclasses that violate the declared I/O contract.

Analyzed by path only — never imported (`Stage` is deliberately
undefined here; the checker matches the base-class *name*).
"""


class UndeclaredReadStage(Stage):  # noqa: F821
    name = "undeclared-read"
    inputs = ("queries",)
    outputs = ("results",)

    def run_central(self, ctx):
        queries = ctx["queries"]
        plan = ctx["plan"]  # undeclared required read -> SC101
        hint = ctx.get("verbose")  # undeclared optional read -> SC101
        ctx["results"] = [queries, plan, hint]


class UndeclaredWriteStage(Stage):  # noqa: F821
    name = "undeclared-write"
    inputs = ("queries",)
    outputs = ("results",)

    def run_central(self, ctx):
        ctx["results"] = list(ctx["queries"])
        ctx["leftover"] = 1  # undeclared write -> SC102


class DeadDeclarationsStage(Stage):  # noqa: F821
    name = "dead-declarations"
    inputs = ("queries", "never_read")  # SC103 on 'never_read'
    outputs = ("results", "never_written")  # SC104 on 'never_written'
    scratch = ("never_touched",)  # SC106
    optional = ("never_maybe",)  # SC106

    def run_central(self, ctx):
        ctx["results"] = list(ctx["queries"])


class DynamicKeyStage(Stage):  # noqa: F821
    name = "dynamic-key"
    inputs = ("queries", "slot_name")
    outputs = ("results",)

    def run_central(self, ctx):
        name = ctx["slot_name"]
        value = ctx[name]  # non-literal key -> SC105 (warning)
        ctx["results"] = [value for _ in ctx["queries"]]


class SuppressedWriteStage(Stage):  # noqa: F821
    name = "suppressed-write"
    inputs = ("queries",)
    outputs = ("results",)

    def run_central(self, ctx):
        ctx["results"] = list(ctx["queries"])
        # Exercises the suppression path end to end.
        ctx["debug_trace"] = []  # repro: noqa[SC102]
