"""The shipped tree must satisfy its own contracts: lint src/ is clean."""

from pathlib import Path

from repro.analysis import checkers_for, exit_code, run_paths

SRC = Path(__file__).resolve().parents[2] / "src"


class TestSelfCheck:
    def test_src_is_clean_under_all_checkers(self):
        report = run_paths([str(SRC)], checkers_for([]))
        assert report.findings == [], "\n".join(
            f"{f.file}:{f.line}: {f.rule} {f.message}"
            for f in report.findings
        )
        assert exit_code(report, strict=True) == 0

    def test_the_two_documented_suppressions_are_counted(self):
        # server.stop()'s bounded shutdown carries two AB402 noqa
        # comments; if this number drifts, a suppression was added or
        # removed without updating the rationale trail.
        report = run_paths([str(SRC)], checkers_for([]))
        assert report.suppressed == 2

    def test_pipeline_stages_declare_their_scratch(self):
        # The drift this PR fixed stays fixed: the scatter stages
        # declare their split->merge plumbing slots.
        from repro.core.pipeline import (
            IndexedSearchStage,
            SearchStage,
            SelectStage,
        )

        assert SearchStage.scratch == ("search_index_groups",)
        assert SelectStage.scratch == ("select_index_groups",)
        assert IndexedSearchStage.scratch == ("indexed_index_groups",)
        assert IndexedSearchStage.optional == ("use_ledgers",)
        assert "users_total" in IndexedSearchStage.inputs
        assert "io_counter" in IndexedSearchStage.inputs
