"""transport checker: TR701 at exact lines, scope gate, and silence."""

from repro.analysis import TransportChecker, run_paths

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestTransportViolations:
    def test_raw_pickle_calls_fire_tr701(self, lint_fixture):
        report, path = lint_fixture("transport_bad.py", TransportChecker())
        found = rules_at(report)
        for needle in (
            "pickle.dumps(payload))  # noqa: F821  TR701 (dumps)",
            "pickle.loads(sock.recv(65536))",
            "pickle.dump(payload, fh)",
            "pickle.loads(body)  # noqa: F821  TR701 (wrong class)",
        ):
            assert ("TR701", line_of(path, needle)) in found

    def test_only_the_family_code_fires(self, lint_fixture):
        report, _ = lint_fixture("transport_bad.py", TransportChecker())
        assert report.findings, "the bad fixture must fire"
        assert {f.rule for f in report.findings} == {"TR701"}

    def test_finding_count_is_exact(self, lint_fixture):
        report, _ = lint_fixture("transport_bad.py", TransportChecker())
        assert len(report.findings) == 4


class TestTransportCleanCode:
    def test_codec_funnels_are_silent(self, lint_fixture):
        report, _ = lint_fixture("transport_ok.py", TransportChecker())
        assert report.findings == []

    def test_modules_off_the_socket_path_are_out_of_scope(self, lint_fixture):
        # pool_bad.py pickles plenty, but never imports socket/asyncio —
        # that's the pool-boundary family's turf, not transport's.
        report, _ = lint_fixture("pool_bad.py", TransportChecker())
        assert report.findings == []

    def test_shipped_transport_tier_is_clean(self):
        import repro.serve.server as server_mod
        import repro.serve.shardhost as shardhost_mod
        import repro.serve.transport as transport_mod

        report = run_paths(
            [
                mod.__file__
                for mod in (server_mod, shardhost_mod, transport_mod)
            ],
            [TransportChecker()],
        )
        assert report.findings == []
