"""async-blocking checker: exact rules at exact lines, and silence."""

from repro.analysis import AsyncBlockingChecker

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestAsyncBlockingViolations:
    def test_time_sleep_fires_ab401(self, lint_fixture):
        report, path = lint_fixture("async_bad.py", AsyncBlockingChecker())
        found = rules_at(report)
        assert ("AB401", line_of(path, "time.sleep(0.5)")) in found
        assert ("AB401", line_of(path, "sleep(0.1)")) in found

    def test_pool_joins_fire_ab402(self, lint_fixture):
        report, path = lint_fixture("async_bad.py", AsyncBlockingChecker())
        found = rules_at(report)
        assert ("AB402", line_of(path, "pool.join()")) in found
        assert ("AB402", line_of(path, "flusher.join()")) in found
        assert ("AB402", line_of(path, "worker_pool.close()")) in found

    def test_open_fires_ab403(self, lint_fixture):
        report, path = lint_fixture("async_bad.py", AsyncBlockingChecker())
        assert ("AB403", line_of(path, "open(path) as fh")) in rules_at(report)

    def test_sync_engine_queries_fire_ab404(self, lint_fixture):
        report, path = lint_fixture("async_bad.py", AsyncBlockingChecker())
        found = rules_at(report)
        assert ("AB404", line_of(path, "engine.query(query, options)")) in found
        assert ("AB404", line_of(path, "engine.query_batch(queries")) in found


class TestAsyncBlockingCleanCode:
    def test_approved_patterns_produce_nothing(self, lint_fixture):
        report, _ = lint_fixture("async_ok.py", AsyncBlockingChecker())
        assert report.findings == []

    def test_string_join_is_not_a_pool_join(self, lint_fixture):
        # ", ".join(parts) takes an argument and has no pool-like
        # receiver: it must never be mistaken for AB402.
        report, path = lint_fixture("async_ok.py", AsyncBlockingChecker())
        assert not any(
            f.line == line_of(path, '", ".join(parts)')
            for f in report.findings
        )

    def test_shipped_server_reports_only_suppressed(self):
        # The real server's stop() carries two documented AB402
        # suppressions; nothing else in serve/ may fire.
        import repro.serve.server as server_mod

        from repro.analysis import run_paths

        report = run_paths([server_mod.__file__], [AsyncBlockingChecker()])
        assert report.findings == []
        assert report.suppressed == 2
