"""Shared helpers: lint a fixture file and index findings by rule/line."""

from pathlib import Path

import pytest

from repro.analysis import run_paths

FIXTURES = Path(__file__).parent / "fixtures"


def line_of(path: Path, needle: str) -> int:
    """1-based line number of the first source line containing needle."""
    for i, text in enumerate(path.read_text().splitlines(), start=1):
        if needle in text:
            return i
    raise AssertionError(f"{needle!r} not found in {path}")


@pytest.fixture
def lint_fixture():
    """Lint one fixture module with one checker; returns (findings, path)."""

    def run(filename, checker):
        path = FIXTURES / filename
        report = run_paths([str(path)], [checker])
        return report, path

    return run
