"""Engine behavior: suppressions, caching, formats, exit codes."""

import json

import pytest

from repro.analysis import (
    Checker,
    Finding,
    LintUsageError,
    ModuleInfo,
    checkers_for,
    exit_code,
    format_json,
    format_text,
    iter_python_files,
    run_paths,
)
from repro.analysis.engine import suppressed_rules


class FlagEveryDef(Checker):
    """Test checker: one finding per function definition."""

    name = "flag-every-def"
    codes = (("XX901", "a def"),)

    def __init__(self, severity="error"):
        self.severity = severity
        self.calls = 0

    def cache_key(self):
        return f"{self.name}({self.severity})"

    def check(self, module):
        import ast

        self.calls += 1
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef):
                yield self.finding(
                    "XX901", f"def {node.name}", module, node.lineno,
                    severity=self.severity,
                )


class TestSuppressions:
    def test_no_comment_means_no_suppression(self):
        assert suppressed_rules("x = 1") is None

    def test_bare_noqa_silences_everything(self):
        assert suppressed_rules("x = 1  # repro: noqa") == frozenset()

    def test_codes_and_families_parse(self):
        rules = suppressed_rules("x = 1  # repro: noqa[SC101, pool-boundary]")
        assert rules == frozenset({"SC101", "pool-boundary"})

    def test_family_name_suppresses_family_codes(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("def f():  # repro: noqa[flag-every-def]\n    pass\n")
        report = run_paths([str(target)], [FlagEveryDef()])
        assert report.findings == []
        assert report.suppressed == 1

    def test_unrelated_code_does_not_suppress(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("def f():  # repro: noqa[SC101]\n    pass\n")
        report = run_paths([str(target)], [FlagEveryDef()])
        assert len(report.findings) == 1


class TestCaching:
    def test_unchanged_file_is_checked_once(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("def f():\n    pass\n")
        checker = FlagEveryDef()
        first = run_paths([str(target)], [checker])
        second = run_paths([str(target)], [checker])
        assert checker.calls == 1
        assert second.cache_hits == 1
        assert [f.snapshot() for f in first.findings] == \
            [f.snapshot() for f in second.findings]

    def test_edited_file_is_rechecked(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("def f():\n    pass\n")
        checker = FlagEveryDef()
        run_paths([str(target)], [checker])
        target.write_text("def f():\n    pass\n\n\ndef g():\n    pass\n")
        report = run_paths([str(target)], [checker])
        assert checker.calls == 2
        assert len(report.findings) == 2

    def test_checker_configuration_splits_the_cache(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("def f():\n    pass\n")
        errors = run_paths([str(target)], [FlagEveryDef("error")])
        warnings = run_paths([str(target)], [FlagEveryDef("warning")])
        assert errors.findings[0].severity == "error"
        assert warnings.findings[0].severity == "warning"

    def test_disk_cache_round_trips(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("def f():\n    pass\n")
        cache = tmp_path / "lint-cache.json"
        first = run_paths([str(target)], [FlagEveryDef()], cache_file=str(cache))
        assert cache.exists()
        # A fresh checker instance + cold in-process cache must load
        # the stored findings instead of re-running the checker.
        from repro.analysis.engine import _MEMO

        _MEMO.clear()
        checker = FlagEveryDef()
        second = run_paths([str(target)], [checker], cache_file=str(cache))
        assert checker.calls == 0
        assert second.cache_hits == 1
        assert [f.snapshot() for f in second.findings] == \
            [f.snapshot() for f in first.findings]


class TestFilesAndErrors:
    def test_nonexistent_path_is_a_usage_error(self):
        with pytest.raises(LintUsageError, match="does not exist"):
            iter_python_files(["definitely/not/here"])

    def test_directory_without_python_is_a_usage_error(self, tmp_path):
        (tmp_path / "data.txt").write_text("not python")
        with pytest.raises(LintUsageError, match="no python files"):
            iter_python_files([str(tmp_path)])

    def test_hidden_and_pycache_dirs_are_skipped(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        hidden = tmp_path / ".venv"
        hidden.mkdir()
        (hidden / "b.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "c.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py"]

    def test_unknown_rule_is_a_usage_error(self):
        with pytest.raises(LintUsageError, match="unknown rule"):
            checkers_for(["definitely-not-a-rule"])

    def test_rule_selection_by_family_and_code(self):
        by_family = checkers_for(["stage-contract"])
        by_code = checkers_for(["SC101"])
        assert [c.name for c in by_family] == ["stage-contract"]
        assert [c.name for c in by_code] == ["stage-contract"]

    def test_syntax_error_becomes_e000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        report = run_paths([str(target)], [FlagEveryDef()])
        assert [f.rule for f in report.findings] == ["E000"]
        assert report.findings[0].severity == "error"


class TestExitCodesAndFormats:
    def _report(self, tmp_path, severity):
        target = tmp_path / "t.py"
        target.write_text("def f():\n    pass\n")
        return run_paths([str(target)], [FlagEveryDef(severity)])

    def test_clean_run_exits_zero(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("x = 1\n")
        report = run_paths([str(target)], [FlagEveryDef()])
        assert exit_code(report) == 0
        assert exit_code(report, strict=True) == 0

    def test_errors_exit_one(self, tmp_path):
        report = self._report(tmp_path, "error")
        assert exit_code(report) == 1

    def test_warnings_exit_one_only_under_strict(self, tmp_path):
        report = self._report(tmp_path, "warning")
        assert exit_code(report) == 0
        assert exit_code(report, strict=True) == 1

    def test_text_format_names_file_line_rule(self, tmp_path):
        report = self._report(tmp_path, "error")
        text = format_text(report)
        assert "t.py:1: XX901 [error] def f" in text
        assert "1 finding(s) (1 error(s)) in 1 file(s)" in text

    def test_json_format_round_trips(self, tmp_path):
        report = self._report(tmp_path, "error")
        data = json.loads(format_json(report))
        assert data["files_checked"] == 1
        (finding,) = data["findings"]
        assert finding["rule"] == "XX901"
        assert finding["line"] == 1
        assert finding["severity"] == "error"

    def test_finding_snapshot_is_complete(self):
        f = Finding("XX901", "fam", "msg", "f.py", 3, "warning")
        assert f.snapshot() == {
            "rule": "XX901", "family": "fam", "severity": "warning",
            "file": "f.py", "line": 3, "message": "msg",
        }

    def test_module_info_line_text(self):
        info = ModuleInfo("t.py", "a = 1\nb = 2\n")
        assert info.line_text(2) == "b = 2"
        assert info.line_text(99) == ""
