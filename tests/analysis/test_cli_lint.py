"""The `repro lint` command: exit codes, formats, rule selection."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


class TestLintCommand:
    def test_lint_src_strict_is_clean(self, capsys):
        rc = main(["lint", str(SRC), "--strict"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "suppressed" in out

    def test_lint_fixture_exits_one_with_findings(self, capsys):
        rc = main(["lint", str(FIXTURES / "stage_bad.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SC101" in out
        assert "SC102" in out

    def test_rule_selection_filters_families(self, capsys):
        # kernel-identity has nothing to say about a stage fixture.
        rc = main([
            "lint", str(FIXTURES / "stage_bad.py"), "--rule", "kernel-identity",
        ])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, capsys):
        rc = main([
            "lint", str(FIXTURES / "pool_bad.py"), "--format", "json",
        ])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in data["findings"]}
        assert {"PB201", "PB202", "PB203"} <= rules

    def test_nonexistent_path_exits_two(self, capsys):
        rc = main(["lint", "definitely/not/a/path"])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_directory_without_python_exits_two(self, capsys, tmp_path):
        (tmp_path / "README.txt").write_text("no code here")
        rc = main(["lint", str(tmp_path)])
        assert rc == 2
        assert "no python files" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        rc = main(["lint", str(SRC), "--rule", "nope"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_names_all_families(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for family in (
            "stage-contract", "pool-boundary", "kernel-identity",
            "async-blocking", "fault-tolerance",
        ):
            assert family in out
        for code in ("SC101", "PB201", "KI301", "AB401", "FT501"):
            assert code in out

    def test_disk_cache_file_is_written(self, capsys, tmp_path):
        cache = tmp_path / "cache.json"
        rc = main([
            "lint", str(FIXTURES / "kernel_ok.py"), "--cache", str(cache),
        ])
        assert rc == 0
        assert cache.exists()
        data = json.loads(cache.read_text())
        assert data["version"] == 1
