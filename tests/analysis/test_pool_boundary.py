"""pool-boundary checker: exact rules at exact lines, and silence."""

from repro.analysis import PoolBoundaryChecker

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestPoolBoundaryViolations:
    def test_lambda_into_map(self, lint_fixture):
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert ("PB201", line_of(path, "lambda x: x + 1")) in rules_at(report)

    def test_closure_into_map(self, lint_fixture):
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert ("PB201", line_of(path, "pool.map(helper, items)")) in \
            rules_at(report)

    def test_classmethod_constructor_taints_name(self, lint_fixture):
        # Dataset.synthetic() -> dataset -> ("refine", dataset, ...)
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert ("PB202", line_of(path, '("refine", dataset, queries)')) in \
            rules_at(report)

    def test_cow_type_constructed_inline(self, lint_fixture):
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert ("PB202", line_of(path, "DatasetArrays(None)")) in \
            rules_at(report)

    def test_bound_method_as_pool_function(self, lint_fixture):
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert ("PB203", line_of(path, "pool.map(self.process, items)")) in \
            rules_at(report)

    def test_pool_construction_keywords(self, lint_fixture):
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        found = rules_at(report)
        assert ("PB201", line_of(path, "initializer=lambda: None")) in found
        assert ("PB202", line_of(path, "initargs=(tree,)")) in found

    def test_payload_tuple_outside_submit_site(self, lint_fixture):
        report, path = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert ("PB202", line_of(path, '("indexed_search", queries, store)')) \
            in rules_at(report)

    def test_every_finding_is_an_error(self, lint_fixture):
        report, _ = lint_fixture("pool_bad.py", PoolBoundaryChecker())
        assert report.findings
        assert all(f.severity == "error" for f in report.findings)


class TestPoolBoundaryCleanCode:
    def test_token_registry_discipline_is_clean(self, lint_fixture):
        report, _ = lint_fixture("pool_ok.py", PoolBoundaryChecker())
        assert report.findings == []

    def test_shipped_pool_module_is_clean(self):
        # The real PersistentWorkerPool is the reference implementation
        # of the discipline this checker enforces.
        import repro.serve.pool as pool_mod

        from repro.analysis import run_paths

        report = run_paths([pool_mod.__file__], [PoolBoundaryChecker()])
        assert report.findings == []
