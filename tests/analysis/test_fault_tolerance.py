"""fault-tolerance checker: FT501 at exact lines, and silence."""

from repro.analysis import FaultToleranceChecker, run_paths

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestFaultToleranceViolations:
    def test_legacy_raw_dispatch_fires_on_any_receiver(self, lint_fixture):
        report, path = lint_fixture("fault_bad.py", FaultToleranceChecker())
        needle = "pool.run_shard_tasks_async(payloads)"
        assert ("FT501", line_of(path, needle)) in rules_at(report)

    def test_async_pool_methods_fire_on_poolish_receivers(self, lint_fixture):
        report, path = lint_fixture("fault_bad.py", FaultToleranceChecker())
        found = rules_at(report)
        for needle in (
            "worker_pool.map_async(fn, items)",
            "self._search_pool.apply_async(fn)",
            "shard_pool.imap(fn, items)",
            "self.pool.starmap_async(fn, plans)",
        ):
            assert ("FT501", line_of(path, needle)) in found

    def test_every_finding_is_ft501(self, lint_fixture):
        report, _ = lint_fixture("fault_bad.py", FaultToleranceChecker())
        assert report.findings, "the bad fixture must fire"
        assert {f.rule for f in report.findings} == {"FT501"}


class TestFaultToleranceCleanCode:
    def test_supervised_and_out_of_scope_patterns_are_silent(self, lint_fixture):
        # Covers: the supervisor class touching its own raw pool, the
        # sanctioned run_supervised/dispatch+collect paths, synchronous
        # ephemeral fork_pool.map, and async-looking methods on
        # receivers that are not pools.
        report, _ = lint_fixture("fault_ok.py", FaultToleranceChecker())
        assert report.findings == []

    def test_shipped_serving_stack_is_clean(self):
        import repro.core.batch as batch_mod
        import repro.core.pipeline as pipeline_mod
        import repro.serve.pool as pool_mod
        import repro.serve.server as server_mod
        import repro.serve.sharded as sharded_mod

        report = run_paths(
            [
                mod.__file__
                for mod in (
                    batch_mod, pipeline_mod, pool_mod, server_mod, sharded_mod
                )
            ],
            [FaultToleranceChecker()],
        )
        assert report.findings == []
