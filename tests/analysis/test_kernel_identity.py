"""kernel-identity checker: exact rules at exact lines, and silence."""

from repro.analysis import KernelIdentityChecker

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestKernelIdentityViolations:
    def test_hypot_and_fsum_fire_ki301(self, lint_fixture):
        report, path = lint_fixture("kernel_bad.py", KernelIdentityChecker())
        found = rules_at(report)
        assert ("KI301", line_of(path, "np.hypot(dx, dy)")) in found
        assert ("KI301", line_of(path, "math.fsum(weights)")) in found

    def test_reductions_fire_ki302(self, lint_fixture):
        report, path = lint_fixture("kernel_bad.py", KernelIdentityChecker())
        found = rules_at(report)
        assert ("KI302", line_of(path, "weights.sum()")) in found
        assert ("KI302", line_of(path, "np.add.reduceat")) in found

    def test_marker_comment_opts_function_in(self, lint_fixture):
        report, path = lint_fixture("kernel_bad.py", KernelIdentityChecker())
        assert ("KI302", line_of(path, "np.einsum")) in rules_at(report)

    def test_matmul_in_nested_helper_fires(self, lint_fixture):
        report, path = lint_fixture("kernel_bad.py", KernelIdentityChecker())
        assert ("KI302", line_of(path, "block @ w")) in rules_at(report)

    def test_non_kernel_function_is_exempt(self, lint_fixture):
        report, path = lint_fixture("kernel_bad.py", KernelIdentityChecker())
        exempt_line = line_of(path, "np.hypot(weights, weights)")
        assert not any(f.line == exempt_line for f in report.findings)

    def test_messages_explain_the_rationale(self, lint_fixture):
        report, _ = lint_fixture("kernel_bad.py", KernelIdentityChecker())
        messages = {f.rule: [] for f in report.findings}
        for f in report.findings:
            messages[f.rule].append(f.message)
        assert any("not correctly rounded" in m for m in messages["KI301"])
        assert any("compensated summation" in m for m in messages["KI301"])
        assert all("re-associate" in m for m in messages["KI302"])

    def test_custom_allowlist_overrides_default(self, lint_fixture):
        only_marked = KernelIdentityChecker(functions=frozenset())
        report, path = lint_fixture("kernel_bad.py", only_marked)
        # With an empty allowlist only the marker-comment kernels fire.
        assert ("KI302", line_of(path, "np.einsum")) in rules_at(report)
        assert not any(
            f.line == line_of(path, "np.hypot(dx, dy)")
            for f in report.findings
        )


class TestKernelIdentityCleanCode:
    def test_clean_kernels_produce_nothing(self, lint_fixture):
        report, _ = lint_fixture("kernel_ok.py", KernelIdentityChecker())
        assert report.findings == []

    def test_shipped_kernels_module_is_clean(self):
        import repro.core.kernels as kernels_mod

        from repro.analysis import run_paths

        report = run_paths([kernels_mod.__file__], [KernelIdentityChecker()])
        assert report.findings == []
