"""stage-contract checker: exact rules at exact lines, and silence."""

from repro.analysis import StageContractChecker

from .conftest import line_of


def rules_at(report):
    return {(f.rule, f.line) for f in report.findings}


class TestStageContractViolations:
    def test_undeclared_required_read(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        assert ("SC101", line_of(path, 'ctx["plan"]')) in rules_at(report)

    def test_undeclared_optional_read(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        assert ("SC101", line_of(path, 'ctx.get("verbose")')) in rules_at(report)

    def test_undeclared_write(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        assert ("SC102", line_of(path, 'ctx["leftover"]')) in rules_at(report)

    def test_dead_input_and_output(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        found = rules_at(report)
        assert ("SC103", line_of(path, '"never_read"')) in found
        assert ("SC104", line_of(path, '"never_written"')) in found

    def test_dead_scratch_and_optional(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        sc106 = [f for f in report.findings if f.rule == "SC106"]
        assert {f.line for f in sc106} == {
            line_of(path, '"never_touched"'),
            line_of(path, '"never_maybe"'),
        }

    def test_dynamic_key_is_warning(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        dynamic = [f for f in report.findings if f.rule == "SC105"]
        assert len(dynamic) == 1
        assert dynamic[0].line == line_of(path, "ctx[name]")
        assert dynamic[0].severity == "warning"

    def test_noqa_suppresses_the_seeded_write(self, lint_fixture):
        report, path = lint_fixture("stage_bad.py", StageContractChecker())
        debug_line = line_of(path, 'ctx["debug_trace"]')
        assert not any(f.line == debug_line for f in report.findings)
        assert report.suppressed == 1

    def test_messages_name_stage_and_method(self, lint_fixture):
        report, _ = lint_fixture("stage_bad.py", StageContractChecker())
        sc101 = [f for f in report.findings if f.rule == "SC101"][0]
        assert "UndeclaredReadStage" in sc101.message
        assert "run_central" in sc101.message


class TestStageContractCleanCode:
    def test_clean_stages_produce_nothing(self, lint_fixture):
        report, _ = lint_fixture("stage_ok.py", StageContractChecker())
        assert report.findings == []

    def test_declarations_inherit_within_module(self, lint_fixture):
        # InheritingStage declares nothing itself; its reads/writes are
        # covered by CleanCentralStage's declarations.
        report, _ = lint_fixture("stage_ok.py", StageContractChecker())
        assert not any("Inheriting" in f.message for f in report.findings)
