"""Tests for the data model: items, super-users."""

import pytest

from repro.model.objects import STObject, SuperUser, User
from repro.spatial.geometry import Point, Rect
from repro.text.relevance import make_relevance


def fitted_relevance():
    return make_relevance("LM").fit([{0: 1, 1: 2}, {1: 1, 2: 3}])


class TestSpatialTextualItem:
    def test_keyword_set_and_length(self):
        o = STObject(1, Point(0, 0), {3: 2, 5: 1})
        assert o.keyword_set == {3, 5}
        assert o.doc_length == 3

    def test_rejects_nonpositive_tf(self):
        with pytest.raises(ValueError):
            STObject(1, Point(0, 0), {3: 0})

    def test_has_any_keyword(self):
        o = STObject(1, Point(0, 0), {3: 1})
        assert o.has_any_keyword([9, 3])
        assert not o.has_any_keyword([9, 8])
        assert not o.has_any_keyword([])

    def test_empty_description_allowed(self):
        o = STObject(1, Point(0, 0), {})
        assert o.keyword_set == set()
        assert o.doc_length == 0


class TestSuperUser:
    def test_from_users_aggregates(self):
        rel = fitted_relevance()
        users = [
            User(0, Point(0, 0), {0: 1, 1: 1}),
            User(1, Point(2, 3), {1: 1, 2: 1}),
        ]
        su = SuperUser.from_users(users, rel)
        assert su.union_terms == frozenset({0, 1, 2})
        assert su.intersection_terms == frozenset({1})
        assert su.count == 2
        assert su.mbr == Rect(0, 0, 2, 3)
        z0 = rel.user_normalizer({0, 1})
        z1 = rel.user_normalizer({1, 2})
        assert su.min_normalizer == pytest.approx(min(z0, z1))
        assert su.max_normalizer == pytest.approx(max(z0, z1))

    def test_single_user(self):
        rel = fitted_relevance()
        su = SuperUser.from_users([User(0, Point(1, 1), {0: 1})], rel)
        assert su.union_terms == su.intersection_terms == frozenset({0})
        assert su.min_normalizer == pytest.approx(su.max_normalizer)
        assert su.mbr.is_point()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SuperUser.from_users([], fitted_relevance())

    def test_disjoint_keywords_empty_intersection(self):
        rel = fitted_relevance()
        users = [User(0, Point(0, 0), {0: 1}), User(1, Point(1, 1), {2: 1})]
        su = SuperUser.from_users(users, rel)
        assert su.intersection_terms == frozenset()

    def test_from_parts_roundtrip(self):
        su = SuperUser.from_parts(
            mbr=Rect(0, 0, 1, 1),
            union_terms=[1, 2],
            intersection_terms=[1],
            min_normalizer=0.5,
            max_normalizer=1.5,
            count=7,
        )
        assert su.union_terms == frozenset({1, 2})
        assert su.count == 7
