"""Tests for the Dataset scoring context."""

import random

import pytest

from repro import Dataset
from repro.model.objects import STObject, User
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


class TestConstruction:
    def test_rejects_empty_objects(self):
        with pytest.raises(ValueError):
            Dataset([], [], relevance="LM")

    def test_rejects_bad_alpha(self):
        o = [STObject(0, Point(0, 0), {0: 1})]
        with pytest.raises(ValueError):
            Dataset(o, [], alpha=1.5)
        with pytest.raises(ValueError):
            Dataset(o, [], alpha=-0.1)

    def test_accepts_measure_by_name_or_instance(self):
        from repro.text.relevance import TfIdfRelevance

        o = [STObject(0, Point(0, 0), {0: 1})]
        assert Dataset(o, [], relevance="TF").relevance.name == "TF"
        assert Dataset(o, [], relevance=TfIdfRelevance()).relevance.name == "TF"

    def test_lookup_by_id(self):
        rng = random.Random(1)
        objects = make_random_objects(5, 8, rng)
        users = make_random_users(3, 8, rng)
        ds = Dataset(objects, users)
        assert ds.object_by_id(objects[2].item_id) is objects[2]
        assert ds.user_by_id(users[1].item_id) is users[1]


class TestDmaxAndSpatialScore:
    def test_dmax_covers_all_pairs(self):
        rng = random.Random(2)
        objects = make_random_objects(30, 8, rng)
        users = make_random_users(10, 8, rng)
        ds = Dataset(objects, users)
        pts = [o.location for o in objects] + [u.location for u in users]
        for i in range(0, len(pts), 7):
            for j in range(0, len(pts), 5):
                assert pts[i].distance_to(pts[j]) <= ds.dmax + 1e-9

    def test_identical_points_dmax_one(self):
        """Degenerate geometry: dmax falls back to 1 to avoid 0-division."""
        o = [STObject(i, Point(3, 3), {0: 1}) for i in range(3)]
        ds = Dataset(o, [])
        assert ds.dmax == 1.0
        assert ds.spatial_score(Point(3, 3), Point(3, 3)) == 1.0

    def test_spatial_score_clamped(self):
        o = [STObject(0, Point(0, 0), {0: 1}), STObject(1, Point(1, 0), {0: 1})]
        ds = Dataset(o, [])
        # a far query point would give a negative raw score
        assert ds.spatial_score(Point(0, 0), Point(100, 0)) == 0.0
        assert ds.spatial_score(Point(0, 0), Point(0, 0)) == 1.0


class TestSTS:
    def test_alpha_blend(self):
        o = [STObject(0, Point(0, 0), {0: 1}), STObject(1, Point(10, 0), {1: 1})]
        u = User(0, Point(0, 0), {0: 1})
        ds = Dataset(o, [u], relevance="KO", alpha=0.3)
        ss = ds.spatial_score(o[0].location, u.location)
        ts = ds.text_score(o[0].terms, u.keyword_set)
        assert ds.sts(o[0], u) == pytest.approx(0.3 * ss + 0.7 * ts)

    def test_sts_in_unit_interval(self, tiny_dataset):
        ds = tiny_dataset
        for o in ds.objects[:10]:
            for u in ds.users:
                assert 0.0 <= ds.sts(o, u) <= 1.0

    def test_sts_parts_matches_sts(self, tiny_dataset):
        ds = tiny_dataset
        o, u = ds.objects[0], ds.users[0]
        assert ds.sts_parts(o.location, o.terms, u) == pytest.approx(ds.sts(o, u))


class TestClones:
    def test_with_alpha_shares_relevance(self, tiny_dataset):
        clone = tiny_dataset.with_alpha(0.9)
        assert clone.alpha == 0.9
        assert clone.relevance is tiny_dataset.relevance
        assert clone.dmax == tiny_dataset.dmax
        assert tiny_dataset.alpha == 0.5  # original untouched

    def test_with_users_rebuilds_super_user(self, tiny_dataset):
        subset = tiny_dataset.users[:3]
        clone = tiny_dataset.with_users(subset)
        assert clone.super_user.count == 3
        assert tiny_dataset.super_user.count == len(tiny_dataset.users)


class TestStats:
    def test_stats_rows(self, tiny_dataset):
        stats = tiny_dataset.stats()
        rows = dict((k, v) for k, v in stats.rows())
        assert rows["Total objects"] == len(tiny_dataset.objects)
        assert rows["Total terms in dataset"] == sum(
            o.doc_length for o in tiny_dataset.objects
        )
        assert stats.num_users == len(tiny_dataset.users)

    def test_super_user_requires_users(self):
        ds = Dataset([STObject(0, Point(0, 0), {0: 1})], [])
        with pytest.raises(ValueError):
            _ = ds.super_user
