"""Tests for the Lp metric extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset
from repro.core.joint_topk import joint_topk
from repro.index.irtree import MIRTree
from repro.spatial.geometry import Point, Rect
from repro.spatial.metrics import CHEBYSHEV, EUCLIDEAN, MANHATTAN, LpMetric

from ..conftest import make_random_objects, make_random_users

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)


def rect_strategy():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
    )


class TestMetricBasics:
    def test_euclidean_matches_point_distance(self):
        a, b = Point(0, 0), Point(3, 4)
        assert EUCLIDEAN.distance(a, b) == pytest.approx(a.distance_to(b))

    def test_manhattan(self):
        assert MANHATTAN.distance(Point(0, 0), Point(3, 4)) == 7.0

    def test_chebyshev(self):
        assert CHEBYSHEV.distance(Point(0, 0), Point(3, 4)) == 4.0

    def test_p3(self):
        d = LpMetric(3).distance(Point(0, 0), Point(1, 1))
        assert d == pytest.approx(2 ** (1 / 3))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            LpMetric(0.5)

    def test_names(self):
        assert EUCLIDEAN.name() == "L2"
        assert MANHATTAN.name() == "L1"
        assert CHEBYSHEV.name() == "Linf"
        assert LpMetric(2.5).name() == "L2.5"

    def test_diameter(self):
        r = Rect(0, 0, 3, 4)
        assert EUCLIDEAN.diameter(r) == pytest.approx(5.0)
        assert MANHATTAN.diameter(r) == pytest.approx(7.0)
        assert CHEBYSHEV.diameter(r) == pytest.approx(4.0)


class TestRectBoundsSoundness:
    @pytest.mark.parametrize(
        "metric", [MANHATTAN, EUCLIDEAN, CHEBYSHEV, LpMetric(3)], ids=lambda m: m.name()
    )
    @given(rect_strategy(), rect_strategy(), st.floats(0, 1), st.floats(0, 1),
           st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_rect_distance_brackets_points(self, metric, ra, rb, f1, f2, f3, f4):
        pa = Point(ra.min_x + f1 * ra.width, ra.min_y + f2 * ra.height)
        pb = Point(rb.min_x + f3 * rb.width, rb.min_y + f4 * rb.height)
        d = metric.distance(pa, pb)
        assert metric.min_distance_rects(ra, rb) <= d + 1e-6
        assert d <= metric.max_distance_rects(ra, rb) + 1e-6

    @pytest.mark.parametrize(
        "metric", [MANHATTAN, CHEBYSHEV, LpMetric(4)], ids=lambda m: m.name()
    )
    @given(rect_strategy(), st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_point_rect_bounds(self, metric, r, fx, fy):
        p = Point(r.min_x + fx * r.width, r.min_y + fy * r.height)
        q = Point(r.min_x - 5.0, r.max_y + 3.0)
        d = metric.distance(p, q)
        assert metric.min_distance_point_rect(q, r) <= d + 1e-6
        assert d <= metric.max_distance_point_rect(q, r) + 1e-6


class TestEndToEndWithLpMetrics:
    @pytest.mark.parametrize(
        "metric", [MANHATTAN, CHEBYSHEV], ids=lambda m: m.name()
    )
    def test_joint_topk_exact_under_lp(self, metric):
        """The whole pruning stack stays exact under L1 / Linf."""
        rng = random.Random(55)
        objects = make_random_objects(80, 12, rng)
        users = make_random_users(10, 12, rng)
        ds = Dataset(objects, users, relevance="LM", alpha=0.5, metric=metric)
        tree = MIRTree(objects, ds.relevance, fanout=4)
        results = joint_topk(tree, ds, 5)
        for u in ds.users:
            gold = sorted((ds.sts(o, u) for o in ds.objects), reverse=True)[4]
            assert results[u.item_id].kth_score == pytest.approx(gold, abs=1e-9)

    def test_engine_modes_agree_under_l1(self):
        from repro import MaxBRSTkNNEngine, MaxBRSTkNNQuery, STObject

        rng = random.Random(56)
        objects = make_random_objects(60, 10, rng)
        users = make_random_users(12, 10, rng)
        ds = Dataset(objects, users, relevance="LM", alpha=0.5, metric=MANHATTAN)
        engine = MaxBRSTkNNEngine(ds, index_users=True)
        q = MaxBRSTkNNQuery(
            ox=STObject(-1, Point(5, 5), {}),
            locations=[Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(4)],
            keywords=sorted(rng.sample(range(10), 5)),
            ws=2,
            k=4,
        )
        cards = {
            mode: engine.query(q, method="exact", mode=mode).cardinality
            for mode in ("baseline", "joint", "indexed")
        }
        assert len(set(cards.values())) == 1

    def test_metric_changes_ranking(self):
        """L1 and Linf genuinely rank differently from L2 somewhere."""
        rng = random.Random(57)
        objects = make_random_objects(100, 8, rng)
        users = make_random_users(8, 8, rng)
        rankings = {}
        for metric in (EUCLIDEAN, MANHATTAN, CHEBYSHEV):
            ds = Dataset(objects, users, relevance="LM", alpha=1.0, metric=metric)
            tree = MIRTree(objects, ds.relevance, fanout=4)
            res = joint_topk(tree, ds, 5)
            rankings[metric.name()] = tuple(
                tuple(res[u.item_id].object_ids()) for u in users
            )
        assert len(set(rankings.values())) > 1
