"""Stateful property test: the R-tree against a naive list model.

Hypothesis drives an arbitrary interleaving of inserts and queries and
checks every query answer against a brute-force shadow model, plus the
structural invariants after every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.spatial.geometry import Point, Rect
from repro.spatial.rtree import RTree

coords = st.floats(min_value=0, max_value=50, allow_nan=False)


class RTreeModel(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.tree = RTree(fanout=4)
        self.shadow = []
        self.next_id = 0

    @rule(x=coords, y=coords)
    def insert(self, x, y):
        self.tree.insert(Point(x, y), self.next_id)
        self.shadow.append((self.next_id, Point(x, y)))
        self.next_id += 1

    @rule(x1=coords, y1=coords, x2=coords, y2=coords)
    def range_query(self, x1, y1, x2, y2):
        rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        got = {e.item for e in self.tree.range_query(rect)}
        expected = {i for i, p in self.shadow if rect.contains_point(p)}
        assert got == expected

    @rule(x=coords, y=coords, n=st.integers(1, 5))
    def nearest_query(self, x, y, n):
        q = Point(x, y)
        got = self.tree.nearest(q, n=n)
        gold = sorted(p.distance_to(q) for _, p in self.shadow)[:n]
        assert [e.point.distance_to(q) for e in got] == gold or all(
            abs(a - b) < 1e-9
            for a, b in zip([e.point.distance_to(q) for e in got], gold)
        )

    @invariant()
    def structural_invariants(self):
        if getattr(self, "tree", None) is not None:
            self.tree.check_invariants()
            assert len(self.tree) == len(self.shadow)


TestRTreeStateful = RTreeModel.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
