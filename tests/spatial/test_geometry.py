"""Unit and property tests for geometry primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


def rect_strategy():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
    )


def point_strategy():
    return st.tuples(coords, coords).map(lambda t: Point(*t))


def point_in_rect(draw_rect, fx, fy):
    return Point(
        draw_rect.min_x + fx * (draw_rect.max_x - draw_rect.min_x),
        draw_rect.min_y + fy * (draw_rect.max_y - draw_rect.min_y),
    )


class TestPoint:
    def test_distance_symmetric(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_iter_unpacks(self):
        x, y = Point(2.0, 7.0)
        assert (x, y) == (2.0, 7.0)

    def test_as_rect_degenerate(self):
        r = Point(3, 4).as_rect()
        assert r.is_point()
        assert r.area == 0.0


class TestRectBasics:
    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_measures(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12
        assert r.margin == 7
        assert r.diagonal == pytest.approx(5.0)
        assert r.center == Point(2.0, 1.5)

    def test_contains_point_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(1, 1))
        assert not r.contains_point(Point(1.1, 0.5))

    def test_contains_rect(self):
        outer, inner = Rect(0, 0, 10, 10), Rect(2, 2, 5, 5)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert u == Rect(0, 0, 3, 3)

    def test_enlargement_zero_when_contained(self):
        assert Rect(0, 0, 10, 10).enlargement(Rect(1, 1, 2, 2)) == 0.0

    def test_from_points_and_rects(self):
        pts = [Point(1, 5), Point(-2, 0), Point(3, 3)]
        assert Rect.from_points(pts) == Rect(-2, 0, 3, 5)
        with pytest.raises(ValueError):
            Rect.from_points([])
        with pytest.raises(ValueError):
            Rect.from_rects([])


class TestRectDistances:
    def test_min_distance_point_inside_is_zero(self):
        assert Rect(0, 0, 2, 2).min_distance_point(Point(1, 1)) == 0.0

    def test_min_distance_point_outside(self):
        assert Rect(0, 0, 1, 1).min_distance_point(Point(4, 5)) == pytest.approx(5.0)

    def test_max_distance_point(self):
        # farthest corner of unit square from origin-corner is (1,1)
        assert Rect(0, 0, 1, 1).max_distance_point(Point(0, 0)) == pytest.approx(
            math.sqrt(2)
        )

    def test_rect_distances_disjoint(self):
        a, b = Rect(0, 0, 1, 1), Rect(4, 5, 6, 7)
        assert a.min_distance_rect(b) == pytest.approx(5.0)  # (3,4) gap
        assert a.max_distance_rect(b) == pytest.approx(math.hypot(6, 7))

    def test_rect_distances_overlapping(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        assert a.min_distance_rect(b) == 0.0
        assert a.max_distance_rect(b) == pytest.approx(math.hypot(3, 3))


class TestRectDistanceProperties:
    @given(rect_strategy(), rect_strategy(), st.floats(0, 1), st.floats(0, 1),
           st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=150)
    def test_rect_distance_brackets_point_distance(self, ra, rb, fx1, fy1, fx2, fy2):
        """Any point pair's distance lies within [min_dist, max_dist]."""
        pa = point_in_rect(ra, fx1, fy1)
        pb = point_in_rect(rb, fx2, fy2)
        d = pa.distance_to(pb)
        assert ra.min_distance_rect(rb) <= d + 1e-6
        assert d <= ra.max_distance_rect(rb) + 1e-6

    @given(rect_strategy(), rect_strategy())
    @settings(max_examples=100)
    def test_rect_distance_symmetry(self, ra, rb):
        assert ra.min_distance_rect(rb) == pytest.approx(rb.min_distance_rect(ra))
        assert ra.max_distance_rect(rb) == pytest.approx(rb.max_distance_rect(ra))

    @given(rect_strategy(), st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=100)
    def test_point_rect_consistency(self, r, fx, fy):
        """Degenerate rect distances equal point distances."""
        p = point_in_rect(r, fx, fy)
        pr = Rect.from_point(p)
        assert pr.min_distance_rect(r) == pytest.approx(r.min_distance_point(p))
        assert pr.max_distance_rect(r) == pytest.approx(r.max_distance_point(p))

    @given(rect_strategy(), rect_strategy())
    @settings(max_examples=100)
    def test_union_contains_both(self, ra, rb):
        u = ra.union(rb)
        assert u.contains_rect(ra) and u.contains_rect(rb)

    @given(rect_strategy(), rect_strategy())
    @settings(max_examples=100)
    def test_min_le_max(self, ra, rb):
        assert ra.min_distance_rect(rb) <= ra.max_distance_rect(rb) + 1e-9
