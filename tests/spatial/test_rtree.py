"""R-tree tests: structure invariants plus query-vs-brute-force oracles."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect
from repro.spatial.rtree import RTree, RTreeEntry


def random_entries(n, rng, space=100.0):
    return [
        RTreeEntry(point=Point(rng.uniform(0, space), rng.uniform(0, space)), item=i)
        for i in range(n)
    ]


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 5, 32, 33, 200, 1000])
    def test_sizes_and_invariants(self, n):
        rng = random.Random(n)
        tree = RTree.bulk_load(random_entries(n, rng), fanout=8)
        assert len(tree) == n
        tree.check_invariants()

    def test_all_entries_preserved(self):
        rng = random.Random(7)
        entries = random_entries(300, rng)
        tree = RTree.bulk_load(entries, fanout=8)
        items = sorted(e.item for e in tree.iter_entries())
        assert items == list(range(300))

    def test_page_ids_unique_and_dense(self):
        rng = random.Random(3)
        tree = RTree.bulk_load(random_entries(200, rng), fanout=8)
        ids = [n.page_id for n in tree.iter_nodes()]
        assert sorted(ids) == list(range(len(ids)))

    def test_height_grows_logarithmically(self):
        rng = random.Random(5)
        small = RTree.bulk_load(random_entries(8, rng), fanout=8)
        big = RTree.bulk_load(random_entries(4000, rng), fanout=8)
        assert small.height == 1
        assert 3 <= big.height <= 6

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            RTree(fanout=1)


class TestInsert:
    def test_incremental_insert_invariants(self):
        rng = random.Random(13)
        tree = RTree(fanout=4)
        for i in range(150):
            tree.insert(Point(rng.uniform(0, 50), rng.uniform(0, 50)), i)
            if i % 25 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 150
        assert sorted(e.item for e in tree.iter_entries()) == list(range(150))

    def test_insert_duplicate_points(self):
        tree = RTree(fanout=4)
        for i in range(20):
            tree.insert(Point(1.0, 1.0), i)
        tree.check_invariants()
        assert len(tree) == 20

    def test_insert_into_bulk_loaded(self):
        rng = random.Random(17)
        tree = RTree.bulk_load(random_entries(64, rng), fanout=8)
        for i in range(64, 100):
            tree.insert(Point(rng.uniform(0, 100), rng.uniform(0, 100)), i)
        tree.check_invariants()
        assert len(tree) == 100


class TestQueries:
    def test_range_query_matches_brute_force(self):
        rng = random.Random(23)
        entries = random_entries(500, rng)
        tree = RTree.bulk_load(entries, fanout=8)
        for _ in range(20):
            x1, x2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            y1, y2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            query = Rect(x1, y1, x2, y2)
            expected = {e.item for e in entries if query.contains_point(e.point)}
            got = {e.item for e in tree.range_query(query)}
            assert got == expected

    def test_range_query_empty_tree(self):
        tree = RTree(fanout=4)
        assert tree.range_query(Rect(0, 0, 10, 10)) == []

    def test_nearest_matches_brute_force(self):
        rng = random.Random(29)
        entries = random_entries(300, rng)
        tree = RTree.bulk_load(entries, fanout=8)
        for _ in range(15):
            q = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            gold = sorted(entries, key=lambda e: e.point.distance_to(q))[:5]
            gold_d = [e.point.distance_to(q) for e in gold]
            got = tree.nearest(q, n=5)
            got_d = [e.point.distance_to(q) for e in got]
            assert got_d == pytest.approx(gold_d)

    def test_nearest_n_larger_than_tree(self):
        rng = random.Random(31)
        tree = RTree.bulk_load(random_entries(5, rng), fanout=4)
        assert len(tree.nearest(Point(0, 0), n=50)) == 5

    def test_nearest_zero(self):
        rng = random.Random(37)
        tree = RTree.bulk_load(random_entries(5, rng), fanout=4)
        assert tree.nearest(Point(0, 0), n=0) == []


class TestSubtreeCounts:
    def test_counts_after_bulk_load(self):
        rng = random.Random(41)
        tree = RTree.bulk_load(random_entries(256, rng), fanout=8)
        assert tree.root.subtree_count == 256

    def test_counts_after_inserts(self):
        rng = random.Random(43)
        tree = RTree(fanout=4)
        for i in range(77):
            tree.insert(Point(rng.uniform(0, 10), rng.uniform(0, 10)), i)
        assert tree.root.subtree_count == 77
        tree.check_invariants()


@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
        ),
        min_size=0,
        max_size=120,
    ),
    st.integers(min_value=2, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_property_bulk_load_preserves_everything(points, fanout):
    entries = [RTreeEntry(point=Point(x, y), item=i) for i, (x, y) in enumerate(points)]
    tree = RTree.bulk_load(entries, fanout=fanout)
    tree.check_invariants()
    assert sorted(e.item for e in tree.iter_entries()) == list(range(len(points)))


@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
        ),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_incremental_insert_invariants(points):
    tree = RTree(fanout=4)
    for i, (x, y) in enumerate(points):
        tree.insert(Point(x, y), i)
    tree.check_invariants()
    assert len(tree) == len(points)
