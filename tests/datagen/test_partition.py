"""UserPartitioner: strategies, stability, and edge cases."""

import random

import pytest

from repro import Dataset, User
from repro.datagen.partition import (
    PARTITIONERS,
    UserPartitioner,
    partition_users,
)
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build_dataset(n_users=24, seed=0, users=None):
    rng = random.Random(seed)
    objects = make_random_objects(30, 12, rng)
    if users is None:
        users = make_random_users(n_users, 12, rng)
    return Dataset(objects, users, relevance="LM", alpha=0.5)


class TestAssignmentInvariants:
    @pytest.mark.parametrize("strategy", PARTITIONERS)
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7])
    def test_disjoint_cover_in_dataset_order(self, strategy, num_shards):
        dataset = build_dataset()
        assignment = UserPartitioner(strategy, num_shards).assign(dataset)
        assert len(assignment.shard_user_ids) == num_shards
        all_ids = [uid for ids in assignment.shard_user_ids for uid in ids]
        assert sorted(all_ids) == sorted(u.item_id for u in dataset.users)
        assert len(all_ids) == len(set(all_ids))  # disjoint
        order = {u.item_id: i for i, u in enumerate(dataset.users)}
        for ids in assignment.shard_user_ids:
            # every shard keeps the dataset's user order (the merge relies on it)
            assert ids == sorted(ids, key=lambda uid: order[uid])
        for uid in all_ids:
            assert uid in assignment.shard_of

    @pytest.mark.parametrize("strategy", PARTITIONERS)
    def test_stable_across_calls(self, strategy):
        dataset = build_dataset(seed=3)
        a = UserPartitioner(strategy, 4).assign(dataset)
        b = UserPartitioner(strategy, 4).assign(dataset)
        assert a.shard_user_ids == b.shard_user_ids
        assert a.shard_of == b.shard_of

    @pytest.mark.parametrize("strategy", PARTITIONERS)
    def test_split_shares_scoring_context(self, strategy):
        dataset = build_dataset(seed=1)
        _, shard_datasets = partition_users(dataset, 3, strategy)
        assert len(shard_datasets) == 3
        for shard_ds in shard_datasets:
            assert shard_ds.objects is dataset.objects
            assert shard_ds.relevance is dataset.relevance
            assert shard_ds.dmax == dataset.dmax
            for u in shard_ds.users:  # same User objects, same ids
                assert dataset.user_by_id(u.item_id) is u

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            UserPartitioner("zorp", 2)
        with pytest.raises(ValueError, match="num_shards"):
            UserPartitioner("hash", 0)


class TestEdgeCases:
    def test_more_shards_than_users_leaves_empty_shards(self):
        dataset = build_dataset(n_users=3, seed=5)
        for strategy in PARTITIONERS:
            assignment = UserPartitioner(strategy, 8).assign(dataset)
            assert sum(assignment.counts()) == 3
            assert len([c for c in assignment.counts() if c == 0]) >= 5

    def test_single_user(self):
        dataset = build_dataset(n_users=1, seed=6)
        for strategy in PARTITIONERS:
            assignment = UserPartitioner(strategy, 4).assign(dataset)
            assert sum(assignment.counts()) == 1

    def test_zero_users(self):
        dataset = build_dataset().with_users([])
        for strategy in PARTITIONERS:
            assignment = UserPartitioner(strategy, 4).assign(dataset)
            assert assignment.counts() == [0, 0, 0, 0]
            assert assignment.largest_skew() == 1.0

    def test_grid_all_users_in_one_cell(self):
        # Identical locations -> one grid cell -> one shard gets all.
        users = [
            User(item_id=i, location=Point(2.0, 2.0), terms={i % 3: 1})
            for i in range(10)
        ]
        dataset = build_dataset(users=users)
        assignment = UserPartitioner("grid", 4).assign(dataset)
        assert sorted(assignment.counts()) == [0, 0, 0, 10]

    def test_duplicate_user_locations_split_by_hash(self):
        users = [
            User(item_id=i, location=Point(1.0, 1.0), terms={i % 3: 1})
            for i in range(16)
        ]
        dataset = build_dataset(users=users)
        assignment = UserPartitioner("hash", 4).assign(dataset)
        # hash ignores geometry: colocated users still spread out
        assert max(assignment.counts()) < 16

    def test_grid_prefers_colocation(self):
        # Two tight clusters far apart: grid keeps each on one shard.
        users = [
            User(item_id=i, location=Point(0.1 + 0.001 * i, 0.1), terms={0: 1})
            for i in range(8)
        ] + [
            User(item_id=100 + i, location=Point(9.9 - 0.001 * i, 9.9), terms={1: 1})
            for i in range(8)
        ]
        dataset = build_dataset(users=users)
        assignment = UserPartitioner("grid", 2).assign(dataset)
        shards_of_cluster_a = {assignment.shard_of[i] for i in range(8)}
        shards_of_cluster_b = {assignment.shard_of[100 + i] for i in range(8)}
        assert len(shards_of_cluster_a) == 1
        assert len(shards_of_cluster_b) == 1
        assert shards_of_cluster_a != shards_of_cluster_b


class TestSubsetUsers:
    def test_subset_preserves_order_and_ids(self):
        dataset = build_dataset(seed=2)
        wanted = [u.item_id for u in dataset.users[::2]]
        subset = dataset.subset_users(reversed(wanted))
        assert [u.item_id for u in subset.users] == wanted  # dataset order
        assert subset.dmax == dataset.dmax

    def test_subset_unknown_id_raises(self):
        dataset = build_dataset()
        with pytest.raises(KeyError):
            dataset.subset_users([10**9])

    def test_empty_subset_allowed(self):
        dataset = build_dataset()
        assert dataset.subset_users([]).users == []
