"""Tests for the synthetic collection generators."""

import numpy as np
import pytest

from repro.datagen.synthetic import (
    SpaceConfig,
    flickr_like,
    yelp_like,
    zipf_term_sampler,
)


class TestZipfSampler:
    def test_valid_distribution(self):
        rng = np.random.default_rng(0)
        p = zipf_term_sampler(rng, 100)
        assert p.shape == (100,)
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()

    def test_heavy_tail(self):
        """A small head of terms carries a large probability share."""
        rng = np.random.default_rng(0)
        p = np.sort(zipf_term_sampler(rng, 1000))[::-1]
        assert p[:50].sum() > 0.3

    def test_shuffled_by_seed(self):
        a = zipf_term_sampler(np.random.default_rng(1), 50)
        b = zipf_term_sampler(np.random.default_rng(2), 50)
        assert not np.allclose(a, b)


class TestFlickrLike:
    def test_shape(self):
        objects, vocab = flickr_like(num_objects=300, vocab_size=200, seed=3)
        assert len(objects) == 300
        assert len(vocab) <= 200
        ids = [o.item_id for o in objects]
        assert ids == list(range(300))

    def test_short_documents(self):
        objects, _ = flickr_like(num_objects=400, seed=4)
        mean_terms = sum(len(o.keyword_set) for o in objects) / len(objects)
        assert 4.0 <= mean_terms <= 10.0  # paper: 6.9

    def test_tags_occur_once(self):
        objects, _ = flickr_like(num_objects=100, seed=5)
        assert all(tf == 1 for o in objects for tf in o.terms.values())

    def test_deterministic_under_seed(self):
        a, _ = flickr_like(num_objects=50, seed=9)
        b, _ = flickr_like(num_objects=50, seed=9)
        assert all(
            x.location == y.location and x.terms == y.terms for x, y in zip(a, b)
        )

    def test_locations_inside_space(self):
        cfg = SpaceConfig(side=20.0)
        objects, _ = flickr_like(num_objects=200, space=cfg, seed=6)
        assert all(0 <= o.location.x <= 20 and 0 <= o.location.y <= 20 for o in objects)

    def test_clustering_present(self):
        """Clustered generation concentrates mass versus uniform."""
        objects, _ = flickr_like(num_objects=2000, seed=7)
        xs = np.array([o.location.x for o in objects])
        ys = np.array([o.location.y for o in objects])
        grid, _, _ = np.histogram2d(xs, ys, bins=10)
        top_cells = np.sort(grid.ravel())[::-1]
        assert top_cells[:10].sum() > 0.25 * len(objects)


class TestYelpLike:
    def test_long_documents(self):
        objects, _ = yelp_like(num_objects=80, seed=8)
        mean_terms = sum(len(o.keyword_set) for o in objects) / len(objects)
        assert mean_terms > 50

    def test_repeated_terms(self):
        objects, _ = yelp_like(num_objects=50, seed=9)
        assert any(tf > 1 for o in objects for tf in o.terms.values())

    def test_distinct_prefix_from_flickr(self):
        _, vocab_f = flickr_like(num_objects=10, seed=1)
        _, vocab_y = yelp_like(num_objects=10, seed=1)
        assert vocab_f.term_of(0).startswith("tag")
        assert vocab_y.term_of(0).startswith("rev")
