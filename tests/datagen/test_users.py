"""Tests for the Section 8 user-generation protocol."""

import pytest

from repro.datagen.synthetic import flickr_like
from repro.datagen.users import candidate_locations, generate_users


@pytest.fixture(scope="module")
def objects():
    objs, _ = flickr_like(num_objects=800, vocab_size=400, seed=21)
    return objs


class TestGenerateUsers:
    def test_counts_and_ids(self, objects):
        wl = generate_users(objects, num_users=50, seed=1)
        assert len(wl.users) == 50
        assert [u.item_id for u in wl.users] == list(range(50))

    def test_ul_keywords_per_user(self, objects):
        wl = generate_users(objects, num_users=40, keywords_per_user=4,
                            unique_keywords=25, seed=2)
        assert all(len(u.keyword_set) == 4 for u in wl.users)

    def test_pool_size_is_uw(self, objects):
        wl = generate_users(objects, num_users=40, unique_keywords=15, seed=3)
        assert len(wl.candidate_keywords) <= 15
        union = set().union(*(u.keyword_set for u in wl.users))
        assert union <= set(wl.candidate_keywords)

    def test_users_inside_area(self, objects):
        wl = generate_users(objects, num_users=60, area_side=5.0, seed=4)
        assert wl.area.width == pytest.approx(5.0)
        assert all(wl.area.contains_point(u.location) for u in wl.users)

    def test_user_locations_are_object_locations(self, objects):
        wl = generate_users(objects, num_users=30, seed=5)
        locs = {(o.location.x, o.location.y) for o in objects}
        assert all((u.location.x, u.location.y) in locs for u in wl.users)

    def test_ul_exceeding_uw_rejected(self, objects):
        with pytest.raises(ValueError):
            generate_users(objects, num_users=5, keywords_per_user=10,
                           unique_keywords=5)

    def test_empty_objects_rejected(self):
        with pytest.raises(ValueError):
            generate_users([], num_users=5)

    def test_deterministic(self, objects):
        a = generate_users(objects, num_users=20, seed=8)
        b = generate_users(objects, num_users=20, seed=8)
        assert all(x.terms == y.terms and x.location == y.location
                   for x, y in zip(a.users, b.users))
        assert a.candidate_keywords == b.candidate_keywords

    def test_query_object(self, objects):
        wl = generate_users(objects, num_users=10, seed=9)
        ox = wl.query_object()
        assert ox.terms == {}
        assert wl.area.contains_point(ox.location)
        ox2 = wl.query_object(terms={3: 1})
        assert ox2.terms == {3: 1}


class TestCandidateLocations:
    def test_inside_area_and_count(self, objects):
        wl = generate_users(objects, num_users=20, seed=10)
        locs = candidate_locations(wl, num_locations=12, seed=10)
        assert len(locs) == 12
        assert all(wl.area.contains_point(p) for p in locs)
        assert wl.locations == locs

    def test_deterministic(self, objects):
        wl = generate_users(objects, num_users=20, seed=11)
        a = candidate_locations(wl, 6, seed=11)
        b = candidate_locations(wl, 6, seed=11)
        assert a == b
