"""Property tests for the wave-vectorized frontier traversal (PR 3).

Two families of guarantees:

* **Backend identity.**  ``joint_traversal(backend="numpy")`` must
  reproduce the python traversal *bitwise*: same LO/RO pools (object
  ids, lower/upper bounds, weight dicts, order), same ``rsk_group``,
  and the same simulated-I/O trace — the frontier kernels sum in the
  scalar association order on purpose (see repro/core/kernels.py,
  "Exactness contract"), so these asserts use ``==``, never approx.

* **Cross-k subsumption.**  The candidate pool of a ``k_max``
  traversal subsumes the pool of every smaller ``k`` and yields
  value-identical per-k thresholds, which is what lets a mixed-k batch
  pay for a single tree walk (``repro.core.batch.SharedTraversalPool``).
"""

import pickle
import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, QueryOptions
from repro.core.joint_topk import individual_topk, joint_traversal
from repro.core.kernels import HAS_NUMPY, TreeArrays, tree_arrays_for
from repro.model.objects import SuperUser
from repro.storage.iostats import IOCounter
from repro.storage.pager import LRUBuffer, PageStore

from ..conftest import make_random_objects, make_random_users

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def random_engine(seed, index_users=False):
    rng = random.Random(seed)
    vocab = rng.choice([8, 20, 60])
    objects = make_random_objects(rng.randint(30, 140), vocab, rng)
    users = make_random_users(rng.randint(5, 28), vocab, rng)
    dataset = Dataset(
        objects,
        users,
        relevance=rng.choice(["LM", "TF", "KO"]),
        alpha=rng.choice([0.0, 0.25, 0.5, 0.9, 1.0]),
    )
    engine = MaxBRSTkNNEngine(
        dataset, fanout=rng.choice([3, 4, 8]), index_users=index_users
    )
    return engine, rng


def assert_traversals_identical(a, b):
    """Pool-level bitwise equality (CandidateObject is an eq dataclass)."""
    assert a.rsk_group == b.rsk_group
    for name in ("lo", "ro"):
        pa, pb = getattr(a, name), getattr(b, name)
        assert len(pa) == len(pb), name
        for x, y in zip(pa, pb):
            assert x.obj.item_id == y.obj.item_id, name
            assert x.lower == y.lower, name
            assert x.upper == y.upper, name
            assert x.weights == y.weights, name


@pytest.mark.parametrize("seed", range(8))
def test_numpy_traversal_identical_on_random_trees(seed):
    """numpy == python: pools, threshold, and I/O trace, bitwise."""
    engine, rng = random_engine(seed, index_users=True)
    summaries = [
        None,  # dataset-wide super-user
        engine.user_tree.root.summary,  # MIUR root (indexed phase 1)
        SuperUser.from_users(  # a proper subgroup
            engine.dataset.users[: max(2, len(engine.dataset.users) // 2)],
            engine.dataset.relevance,
        ),
    ]
    for k in (1, 2, 5, 11):
        for su in summaries:
            counters = []
            results = []
            for backend in ("python", "numpy"):
                counter = IOCounter()
                results.append(
                    joint_traversal(
                        engine.object_tree,
                        engine.dataset,
                        k,
                        super_user=su,
                        store=PageStore(counter=counter),
                        backend=backend,
                    )
                )
                counters.append(counter)
            assert_traversals_identical(results[0], results[1])
            assert counters[0].node_visits == counters[1].node_visits
            assert counters[0].invfile_blocks == counters[1].invfile_blocks


def test_numpy_traversal_identical_with_buffered_store():
    """The LRU-buffer fallback path charges exactly like the scalar one."""
    engine, _ = random_engine(3)
    for capacity in (0, 16):
        stores = []
        for _ in range(2):
            counter = IOCounter()
            stores.append(PageStore(counter=counter, buffer=LRUBuffer(capacity)))
        py = joint_traversal(
            engine.object_tree, engine.dataset, 4, store=stores[0],
            backend="python",
        )
        np_ = joint_traversal(
            engine.object_tree, engine.dataset, 4, store=stores[1],
            backend="numpy",
        )
        assert_traversals_identical(py, np_)
        assert stores[0].counter.node_visits == stores[1].counter.node_visits
        assert stores[0].counter.invfile_blocks == stores[1].counter.invfile_blocks
        assert stores[0].buffer.hits == stores[1].buffer.hits
        assert stores[0].buffer.misses == stores[1].buffer.misses


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_kmax_pool_subsumes_every_smaller_k(seed, backend):
    """Objects any k-traversal keeps are all in the k_max pool, and the
    derived per-k thresholds are value-identical to dedicated runs."""
    engine, _ = random_engine(seed)
    kmax = 9
    pool = joint_traversal(
        engine.object_tree, engine.dataset, kmax, backend=backend
    )
    pool_ids = {c.obj.item_id for c in pool.all_candidates()}
    lows = sorted((c.lower for c in pool.all_candidates()), reverse=True)
    for k in (1, 2, 4, kmax):
        dedicated = joint_traversal(
            engine.object_tree, engine.dataset, k, backend=backend
        )
        dedicated_ids = {c.obj.item_id for c in dedicated.all_candidates()}
        assert dedicated_ids <= pool_ids
        # RSk(us) derived from the pool == the dedicated traversal's.
        derived_rsk_group = lows[k - 1] if k <= len(lows) else 0.0
        assert derived_rsk_group == dedicated.rsk_group
        # Algorithm 2 over the k_max pool == over the dedicated pool.
        via_pool = individual_topk(pool, engine.dataset, k, backend=backend)
        via_dedicated = individual_topk(
            dedicated, engine.dataset, k, backend=backend
        )
        for uid, res in via_dedicated.items():
            assert via_pool[uid].ranked == res.ranked


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_mixed_k_batch_runs_one_traversal_and_matches_sequential(backend):
    """The PR-3 acceptance shape: k in {1, 5, 10} -> one tree walk."""
    engine, rng = random_engine(17)
    from repro.core.query import MaxBRSTkNNQuery
    from repro.model.objects import STObject
    from repro.spatial.geometry import Point

    queries = []
    for i, k in enumerate([1, 5, 10, 5, 1]):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10))
                    for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(8), 4)),
                ws=2,
                k=k,
            )
        )
    sequential = [
        engine.query(q, QueryOptions(backend="python")) for q in queries
    ]
    runs_before = engine.traversal_runs
    batched = engine.query_batch(queries, QueryOptions(backend=backend))
    assert engine.traversal_runs == runs_before + 1  # exactly one walk
    assert engine._traversal_pool.k == 10
    for solo, bat in zip(sequential, batched):
        assert solo.location == bat.location
        assert solo.keywords == bat.keywords
        assert solo.brstknn == bat.brstknn


def test_tree_arrays_memoized_per_tree_and_refuse_pickling():
    engine, _ = random_engine(1)
    arrays = tree_arrays_for(engine.object_tree)
    assert isinstance(arrays, TreeArrays)
    assert tree_arrays_for(engine.object_tree) is arrays
    other, _ = random_engine(2)
    assert tree_arrays_for(other.object_tree) is not arrays
    with pytest.raises(TypeError, match="copy-on-write"):
        pickle.dumps(arrays)


def test_tree_arrays_flatten_the_whole_tree():
    engine, _ = random_engine(4)
    arrays = tree_arrays_for(engine.object_tree)
    # Leaf entries = objects; every node owns a contiguous entry span.
    object_entries = sum(
        arrays.node_end[i] - arrays.node_start[i]
        for i, node in enumerate(arrays.nodes)
        if node.is_leaf
    )
    assert object_entries == len(engine.dataset.objects)
    assert arrays.num_entries == len(arrays.ent_indptr) - 1
    # CSR terms are ascending within every entry (the canonical order).
    for e in range(arrays.num_entries):
        seg = arrays.ent_term[arrays.ent_indptr[e]:arrays.ent_indptr[e + 1]]
        assert list(seg) == sorted(seg)
