"""Tests for greedy and exact keyword selection (Section 6.2)."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset
from repro.core.joint_topk import joint_topk
from repro.core.keyword_selection import (
    compute_brstknn,
    greedy_max_coverage,
    select_keywords_exact,
    select_keywords_greedy,
)
from repro.index.irtree import MIRTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build_selection_problem(seed, n_obj=70, n_users=14, vocab=14, k=5):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance="LM", alpha=0.5)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    topk = joint_topk(tree, ds, k)
    rsk = {uid: r.kth_score for uid, r in topk.items()}
    ox = STObject(item_id=-1, location=Point(5, 5), terms={})
    location = Point(rng.uniform(2, 8), rng.uniform(2, 8))
    candidates = sorted(rng.sample(range(vocab), 8))
    return ds, ox, location, candidates, rsk


def brute_force_best(ds, ox, location, candidates, ws, users, rsk):
    """Reference: scan every combination of size <= ws."""
    best = frozenset()
    best_n = -1
    pool = sorted(candidates)
    for size in range(0, ws + 1):
        for combo in combinations(pool, size):
            winners = compute_brstknn(ds, ox, location, combo, users, rsk)
            if len(winners) > best_n:
                best, best_n = frozenset(winners), len(winners)
    return best_n


class TestGreedyMaxCoverage:
    def test_simple_instance(self):
        sets = {0: {1, 2, 3}, 1: {3, 4}, 2: {5}}
        chosen, covered = greedy_max_coverage(sets, 2)
        assert chosen[0] == 0
        assert covered == {1, 2, 3, 4} or covered == {1, 2, 3, 5}

    def test_budget_zero(self):
        assert greedy_max_coverage({0: {1}}, 0) == ([], set())

    def test_stops_when_nothing_gained(self):
        chosen, covered = greedy_max_coverage({0: {1}, 1: {1}}, 5)
        assert len(chosen) == 1

    def test_deterministic_tiebreak(self):
        sets = {2: {1, 2}, 1: {3, 4}}
        chosen, _ = greedy_max_coverage(sets, 1)
        assert chosen == [1]  # smallest key wins the tie

    @given(
        st.dictionaries(
            st.integers(0, 8),
            st.sets(st.integers(0, 12), min_size=0, max_size=6),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_greedy_ratio(self, sets, budget):
        """Greedy coverage >= (1 - 1/e) * optimal coverage."""
        _, covered = greedy_max_coverage(sets, budget)
        best_opt = 0
        keys = sorted(sets)
        for size in range(1, min(budget, len(keys)) + 1):
            for combo in combinations(keys, size):
                u = set().union(*(sets[k] for k in combo))
                best_opt = max(best_opt, len(u))
        assert len(covered) >= (1 - 1 / 2.718281828) * best_opt - 1e-9


class TestComputeBrstknn:
    def test_threshold_is_inclusive(self, tiny_dataset):
        ds = tiny_dataset
        u = ds.users[0]
        o = ds.objects[0]
        score = ds.sts(o, u)
        winners = compute_brstknn(
            ds, o, o.location, frozenset(), [u], {u.item_id: score}
        )
        assert u.item_id in winners  # ties admit (>=)

    def test_above_threshold_excluded(self, tiny_dataset):
        ds = tiny_dataset
        u = ds.users[0]
        o = ds.objects[0]
        score = ds.sts(o, u)
        winners = compute_brstknn(
            ds, o, o.location, frozenset(), [u], {u.item_id: score + 1e-6}
        )
        assert u.item_id not in winners


class TestExactSelection:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("ws", [1, 2, 3])
    def test_exact_matches_brute_force(self, seed, ws):
        ds, ox, loc, cands, rsk = build_selection_problem(seed)
        chosen, winners, _ = select_keywords_exact(
            ds, ox, loc, cands, ws, ds.users, rsk
        )
        gold = brute_force_best(ds, ox, loc, cands, ws, ds.users, rsk)
        assert len(winners) == gold
        # chosen set must actually achieve the reported winners
        actual = compute_brstknn(ds, ox, loc, chosen, ds.users, rsk)
        assert actual == winners

    def test_small_pool_enumerates_all_subsets(self):
        ds, ox, loc, cands, rsk = build_selection_problem(60)
        # Restrict to 2 candidates with ws 5: the exact method scans all
        # 2^|useful| subsets (smaller sets can win under LM, so there is
        # no single forced answer) and matches the brute-force optimum.
        chosen, winners, scored = select_keywords_exact(
            ds, ox, loc, cands[:2], 5, ds.users, rsk
        )
        useful = set(cands[:2]) & {t for u in ds.users for t in u.keyword_set}
        assert chosen <= useful
        assert scored <= 2 ** len(useful)
        gold = brute_force_best(ds, ox, loc, cands[:2], 5, ds.users, rsk)
        assert len(winners) == gold

    def test_respects_ws_budget(self):
        ds, ox, loc, cands, rsk = build_selection_problem(61)
        for ws in (1, 2, 3):
            chosen, _, _ = select_keywords_exact(ds, ox, loc, cands, ws, ds.users, rsk)
            assert len(chosen) <= ws


class TestGreedySelection:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("ws", [1, 2, 3])
    def test_never_beats_exact_and_is_consistent(self, seed, ws):
        ds, ox, loc, cands, rsk = build_selection_problem(seed)
        g_chosen, g_winners, _ = select_keywords_greedy(
            ds, ox, loc, cands, ws, ds.users, rsk
        )
        e_chosen, e_winners, _ = select_keywords_exact(
            ds, ox, loc, cands, ws, ds.users, rsk
        )
        assert len(g_chosen) <= ws
        assert len(g_winners) <= len(e_winners)
        # reported winners are the actual BRSTkNN of the chosen set
        actual = compute_brstknn(ds, ox, loc, g_chosen, ds.users, rsk)
        assert actual == g_winners

    @pytest.mark.parametrize("seed", range(5))
    def test_reasonable_approximation_quality(self, seed):
        ds, ox, loc, cands, rsk = build_selection_problem(seed)
        ws = 2
        _, g_winners, _ = select_keywords_greedy(ds, ox, loc, cands, ws, ds.users, rsk)
        _, e_winners, _ = select_keywords_exact(ds, ox, loc, cands, ws, ds.users, rsk)
        if e_winners:
            assert len(g_winners) / len(e_winners) >= 0.5

    def test_empty_candidates(self):
        ds, ox, loc, _, rsk = build_selection_problem(62)
        chosen, winners, _ = select_keywords_greedy(ds, ox, loc, [], 2, ds.users, rsk)
        assert chosen == frozenset()

    def test_no_users(self):
        ds, ox, loc, cands, rsk = build_selection_problem(63)
        chosen, winners, _ = select_keywords_greedy(ds, ox, loc, cands, 2, [], rsk)
        assert winners == frozenset()
