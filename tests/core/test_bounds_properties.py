"""Randomized property tests for the bound estimations in ``core/bounds.py``.

Two families the pruning correctness of the whole system rests on:

* **UBL soundness (Lemma 3).**  ``UBL(l, u)`` / ``UBL(l, us)`` must
  upper-bound the exact STS of the query object at ``l`` under *every*
  admissible keyword augmentation (any ``W' ⊆ W`` with ``|W'| <= ws``),
  for every user (in the group).  Violations would make Algorithm 3
  silently drop winning locations/users.
* **MIUR-tree threshold monotonicity (Section 7).**  The node-level
  threshold ``RSk(node)`` computed from the joint traversal's candidate
  pool must satisfy ``RSk(node) <= RSk(u)`` for every user in the
  node's subtree — that inequality is exactly what licenses pruning a
  subtree when ``UBL(l, node) < RSk(node)``.
"""

import random
from itertools import combinations

import pytest

from repro import Dataset
from repro.core.bounds import BoundCalculator, augmented_document
from repro.core.indexed_users import _node_rsk
from repro.core.joint_topk import (
    canonical_candidates,
    individual_topk,
    joint_traversal,
)
from repro.index.irtree import MIRTree
from repro.index.miurtree import MIURTree
from repro.model.objects import STObject, SuperUser
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users

#: Slack for float comparisons: bounds must hold up to rounding noise.
EPS = 1e-9


def build(seed, measure="LM", alpha=0.5, vocab=15, n_obj=50, n_users=12):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    return Dataset(objects, users, relevance=measure, alpha=alpha), rng, vocab


@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("ws", [0, 1, 2])
def test_ubl_user_dominates_every_augmentation(measure, seed, ws):
    """``UBL(l, u)`` >= exact STS for every ``W' ⊆ W, |W'| <= ws``."""
    ds, rng, vocab = build(seed, measure=measure)
    bounds = BoundCalculator(ds)
    ox = STObject(
        item_id=-1,
        location=Point(5, 5),
        terms={t: 1 for t in rng.sample(range(vocab), 2)},
    )
    candidates = sorted(rng.sample(range(vocab), 5))
    for _ in range(3):
        loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
        for u in ds.users:
            ubl = bounds.location_upper_user(loc, ox, candidates, ws, u)
            for size in range(ws + 1):
                for combo in combinations(candidates, size):
                    doc = augmented_document(ox.terms, combo)
                    exact = ds.sts_parts(loc, doc, u)
                    assert exact <= ubl + EPS, (
                        u.item_id, combo, exact, ubl,
                    )


@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("seed", range(3))
def test_ubl_group_dominates_every_member(measure, seed):
    """``UBL(l, us)`` >= exact augmented STS of every grouped user."""
    ds, rng, vocab = build(seed, measure=measure)
    bounds = BoundCalculator(ds)
    su = ds.super_user
    ox = STObject(item_id=-1, location=Point(5, 5), terms={0: 2, 1: 1})
    candidates = sorted(rng.sample(range(vocab), 4))
    ws = 2
    for _ in range(4):
        loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
        ub_group = bounds.location_upper_group(loc, ox, candidates, ws, su)
        for u in ds.users:
            for size in range(ws + 1):
                for combo in combinations(candidates, size):
                    doc = augmented_document(ox.terms, combo)
                    exact = ds.sts_parts(loc, doc, u)
                    assert exact <= ub_group + EPS
            # The group bound subsumes each member's bound: union terms
            # with the smallest normalizer can only score higher.
            assert (
                bounds.location_upper_user(loc, ox, candidates, ws, u)
                <= ub_group + EPS
            )


@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("seed", range(3))
def test_lbl_group_is_a_true_lower_bound(measure, seed):
    """``LBL(l, us)`` <= exact un-augmented STS of every grouped user."""
    ds, rng, _ = build(seed, measure=measure)
    bounds = BoundCalculator(ds)
    su = ds.super_user
    ox = STObject(item_id=-1, location=Point(5, 5), terms={0: 1, 3: 1})
    for _ in range(4):
        loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
        lb_group = bounds.location_lower_group(loc, ox, su)
        for u in ds.users:
            exact = ds.sts_parts(loc, ox.terms, u)
            assert lb_group <= exact + EPS


@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("k", [1, 3, 6])
def test_miur_node_rsk_below_every_member_rsk(measure, seed, k):
    """``RSk(node) <= RSk(u)`` for every user in the node's subtree,
    for every node of a randomized MIUR-tree."""
    ds, rng, _ = build(seed, measure=measure, n_obj=60, n_users=20)
    object_tree = MIRTree(ds.objects, ds.relevance, fanout=4)
    user_tree = MIURTree(ds.users, ds.relevance, fanout=3)
    bounds = BoundCalculator(ds)

    root = user_tree.root
    traversal = joint_traversal(object_tree, ds, k, super_user=root.summary)
    exact_rsk = {
        uid: res.kth_score
        for uid, res in individual_topk(traversal, ds, k).items()
    }
    # The canonical per-k candidate set the search actually prunes on
    # (pool-size independent; a subset of the pool, so the resulting
    # threshold can only be smaller — the inequality must still hold).
    canonical = canonical_candidates(traversal, traversal.rsk_group)

    # Walk the whole tree; every node summary is a super-user.
    stack = [root]
    nodes_checked = 0
    while stack:
        view = stack.pop()
        node_threshold = _node_rsk(canonical, bounds, view.summary, k)
        for uid in _subtree_user_ids(user_tree, view):
            assert node_threshold <= exact_rsk[uid] + EPS, (
                view.page_id, uid, node_threshold, exact_rsk[uid],
            )
        children, _users = user_tree.read_children(view)
        stack.extend(children)
        nodes_checked += 1
    assert nodes_checked >= 1


def _subtree_user_ids(user_tree, view):
    ids = []
    stack = [view]
    while stack:
        v = stack.pop()
        children, leaf_users = user_tree.read_children(v)
        ids.extend(u.item_id for u in leaf_users)
        stack.extend(children)
    return ids


@pytest.mark.parametrize("seed", range(3))
def test_miur_summaries_are_valid_super_users(seed):
    """Every MIUR node summary must dominate/subsume its subtree the
    way ``SuperUser.from_users`` over the subtree's users would."""
    ds, _, _ = build(seed, n_users=20)
    user_tree = MIURTree(ds.users, ds.relevance, fanout=3)
    stack = [user_tree.root]
    while stack:
        view = stack.pop()
        members = [ds.user_by_id(uid) for uid in _subtree_user_ids(user_tree, view)]
        direct = SuperUser.from_users(members, ds.relevance)
        assert view.summary.union_terms == direct.union_terms
        assert view.summary.intersection_terms == direct.intersection_terms
        assert view.summary.count == direct.count
        assert view.summary.min_normalizer <= direct.min_normalizer + EPS
        assert direct.max_normalizer <= view.summary.max_normalizer + EPS
        for u in members:
            assert view.summary.mbr.contains_point(u.location)
        children, _ = user_tree.read_children(view)
        stack.extend(children)
