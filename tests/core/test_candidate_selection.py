"""Tests for Algorithm 3: candidate location selection with pruning."""

import random

import pytest

from repro import Dataset
from repro.core.candidate_selection import select_candidate, shortlist_locations
from repro.core.joint_topk import joint_topk, joint_traversal
from repro.core.query import MaxBRSTkNNQuery
from repro.index.irtree import MIRTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build_problem(seed, n_obj=80, n_users=15, vocab=14, k=5, n_locs=6):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance="LM", alpha=0.5)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    trav = joint_traversal(tree, ds, k)
    topk = joint_topk(tree, ds, k)
    rsk = {uid: r.kth_score for uid, r in topk.items()}
    locations = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n_locs)]
    candidates = sorted(rng.sample(range(vocab), 7))
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=-1, location=Point(5, 5), terms={}),
        locations=locations,
        keywords=candidates,
        ws=2,
        k=k,
    )
    return ds, query, rsk, trav.rsk_group


class TestShortlist:
    @pytest.mark.parametrize("seed", range(4))
    def test_shortlist_is_superset_of_true_winners(self, seed):
        """No user who can actually be won may be shortlisted away."""
        from repro.core.keyword_selection import compute_brstknn
        from itertools import combinations

        ds, query, rsk, rsk_group = build_problem(seed)
        shortlists, _ = shortlist_locations(ds, query, rsk, rsk_group)
        by_loc = {id(sl.location): sl for sl in shortlists}
        surviving = {(sl.location.x, sl.location.y) for sl in shortlists}
        for loc in query.locations:
            winners_any = set()
            for size in range(0, query.ws + 1):
                for combo in combinations(query.keywords, size):
                    winners_any |= compute_brstknn(
                        ds, query.ox, loc, combo, ds.users, rsk
                    )
            if not winners_any:
                continue
            assert (loc.x, loc.y) in surviving
            sl = next(s for s in shortlists if s.location == loc)
            shortlisted = {u.item_id for u in sl.users}
            assert winners_any <= shortlisted

    def test_group_pruning_counts(self):
        """With spatial-dominant scoring a remote location is prunable."""
        ds, query, rsk, rsk_group = build_problem(7)
        spatial_ds = ds.with_alpha(1.0)
        from repro.core.joint_topk import joint_topk as jt, joint_traversal as jtrav
        from repro.index.irtree import MIRTree

        tree = MIRTree(spatial_ds.objects, spatial_ds.relevance, fanout=4)
        trav = jtrav(tree, spatial_ds, query.k)
        topk = jt(tree, spatial_ds, query.k)
        rsk_s = {uid: r.kth_score for uid, r in topk.items()}
        query.locations.append(Point(1e6, 1e6))
        shortlists, pruned = shortlist_locations(
            spatial_ds, query, rsk_s, trav.rsk_group
        )
        assert pruned >= 1


class TestSelectCandidate:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_equals_baseline_scan(self, seed):
        from repro.core.baseline import baseline_select_candidate

        ds, query, rsk, rsk_group = build_problem(seed)
        pruned = select_candidate(ds, query, rsk, rsk_group, method="exact")
        gold = baseline_select_candidate(ds, query, rsk)
        assert pruned.cardinality == gold.cardinality

    @pytest.mark.parametrize("seed", range(5))
    def test_approx_bounded_by_exact(self, seed):
        ds, query, rsk, rsk_group = build_problem(seed)
        approx = select_candidate(ds, query, rsk, rsk_group, method="approx")
        exact = select_candidate(ds, query, rsk, rsk_group, method="exact")
        assert approx.cardinality <= exact.cardinality
        if exact.cardinality:
            assert approx.cardinality / exact.cardinality >= 0.5

    def test_result_reports_achievable_set(self):
        from repro.core.keyword_selection import compute_brstknn

        ds, query, rsk, rsk_group = build_problem(11)
        res = select_candidate(ds, query, rsk, rsk_group, method="exact")
        assert res.location is not None
        actual = compute_brstknn(
            ds, query.ox, res.location, res.keywords, ds.users, rsk
        )
        assert actual >= res.brstknn  # reported winners are real

    def test_single_location(self):
        ds, query, rsk, rsk_group = build_problem(13)
        query.locations = query.locations[:1]
        res = select_candidate(ds, query, rsk, rsk_group, method="exact")
        assert res.location == query.locations[0]

    def test_unknown_method_rejected(self):
        ds, query, rsk, rsk_group = build_problem(14)
        with pytest.raises(ValueError):
            select_candidate(ds, query, rsk, rsk_group, method="magic")

    def test_impossible_thresholds_yield_empty(self):
        ds, query, rsk, _ = build_problem(15)
        impossible = {uid: 2.0 for uid in rsk}  # STS can never reach 2
        res = select_candidate(ds, query, impossible, 2.0, method="exact")
        assert res.cardinality == 0
        assert res.location is not None  # still returns a placement
