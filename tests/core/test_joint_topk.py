"""Gold-model tests: joint top-k must equal brute-force per-user top-k."""

import random

import pytest

from repro import Dataset
from repro.core.joint_topk import individual_topk, joint_topk, joint_traversal
from repro.index.irtree import MIRTree
from repro.storage.iostats import IOCounter
from repro.storage.pager import PageStore

from ..conftest import make_random_objects, make_random_users


def build(seed, measure="LM", alpha=0.5, n_obj=90, n_users=14, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance=measure, alpha=alpha)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    return ds, tree


def brute_force_kth(ds, user, k):
    scores = sorted((ds.sts(o, user) for o in ds.objects), reverse=True)
    return scores[k - 1] if len(scores) >= k else (scores[-1] if scores else 0.0)


class TestJointEqualsBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
    def test_kth_scores_match(self, seed, measure):
        ds, tree = build(seed, measure)
        k = 5
        results = joint_topk(tree, ds, k)
        for u in ds.users:
            assert results[u.item_id].kth_score == pytest.approx(
                brute_force_kth(ds, u, k), abs=1e-9
            )

    @pytest.mark.parametrize("alpha", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_alpha_extremes(self, alpha):
        ds, tree = build(3, alpha=alpha)
        k = 4
        results = joint_topk(tree, ds, k)
        for u in ds.users:
            assert results[u.item_id].kth_score == pytest.approx(
                brute_force_kth(ds, u, k), abs=1e-9
            )

    @pytest.mark.parametrize("k", [1, 2, 7, 20])
    def test_various_k(self, k):
        ds, tree = build(8)
        results = joint_topk(tree, ds, k)
        for u in ds.users:
            assert results[u.item_id].kth_score == pytest.approx(
                brute_force_kth(ds, u, k), abs=1e-9
            )

    def test_k_larger_than_objects(self):
        ds, tree = build(9, n_obj=6)
        results = joint_topk(tree, ds, 50)
        for u in ds.users:
            assert len(results[u.item_id].ranked) == 6

    def test_full_ranking_scores_match(self):
        """Not just the threshold: every returned score is correct."""
        ds, tree = build(12)
        k = 6
        results = joint_topk(tree, ds, k)
        for u in ds.users:
            gold = sorted((ds.sts(o, u) for o in ds.objects), reverse=True)[:k]
            got = [s for s, _ in results[u.item_id].ranked]
            assert got == pytest.approx(gold, abs=1e-9)


class TestTraversalMechanics:
    def test_lo_holds_k_objects(self):
        ds, tree = build(21)
        trav = joint_traversal(tree, ds, 5)
        assert len(trav.lo) == 5
        # LO is ordered by descending lower bound.
        lbs = [c.lower for c in trav.lo]
        assert lbs == sorted(lbs, reverse=True)
        assert trav.rsk_group == pytest.approx(min(lbs))

    def test_ro_sorted_by_descending_upper(self):
        ds, tree = build(22)
        trav = joint_traversal(tree, ds, 5)
        ubs = [c.upper for c in trav.ro]
        assert ubs == sorted(ubs, reverse=True)

    def test_ro_members_reach_threshold(self):
        ds, tree = build(23)
        trav = joint_traversal(tree, ds, 5)
        for cand in trav.ro:
            assert cand.upper >= trav.rsk_group - 1e-12

    def test_pools_contain_every_possible_topk_object(self):
        """Completeness: any object in any user's true top-k survives."""
        ds, tree = build(24)
        k = 5
        trav = joint_traversal(tree, ds, k)
        pool_ids = {c.obj.item_id for c in trav.all_candidates()}
        for u in ds.users:
            ranked = sorted(
                ((ds.sts(o, u), o.item_id) for o in ds.objects),
                key=lambda t: (-t[0], t[1]),
            )
            kth = ranked[k - 1][0]
            # every object strictly above the threshold must be present
            for score, oid in ranked[:k]:
                if score > kth:
                    assert oid in pool_ids

    def test_k_zero_returns_empty(self):
        ds, tree = build(25)
        trav = joint_traversal(tree, ds, 0)
        assert trav.lo == [] and trav.ro == []
        results = joint_topk(tree, ds, 0)
        assert all(r.ranked == [] for r in results.values())


class TestIOSharing:
    def test_joint_never_rereads_nodes(self):
        """Each tree node is read at most once by the joint traversal."""
        ds, tree = build(31, n_obj=200)
        counter = IOCounter()
        store = PageStore(counter=counter)
        joint_traversal(tree, ds, 5, store=store)
        assert counter.node_visits <= tree.rtree.node_count()

    def test_joint_cheaper_than_baseline(self):
        from repro.topk.single import topk_all_users_individually

        ds, tree = build(32, n_obj=250, n_users=25)
        c_joint, c_base = IOCounter(), IOCounter()
        joint_topk(tree, ds, 5, store=PageStore(counter=c_joint))
        topk_all_users_individually(tree, ds, 5, store=PageStore(counter=c_base))
        assert c_joint.total < c_base.total


class TestIndividualRefinement:
    def test_subset_of_users(self):
        ds, tree = build(41)
        trav = joint_traversal(tree, ds, 4)
        two = ds.users[:2]
        results = individual_topk(trav, ds, 4, users=two)
        assert set(results) == {u.item_id for u in two}
        for u in two:
            assert results[u.item_id].kth_score == pytest.approx(
                brute_force_kth(ds, u, 4), abs=1e-9
            )
