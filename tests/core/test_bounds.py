"""Property tests for the bound estimations (Lemmas 2 and 3).

These are the load-bearing correctness tests of the whole system: every
pruning decision in the joint top-k and in candidate selection relies
on these inequalities holding for *every* user, node and candidate.
"""

import random

import pytest

from repro import Dataset
from repro.core.bounds import (
    BoundCalculator,
    augmented_document,
    best_augmentation_weights,
    candidate_term_weight,
)
from repro.index.irtree import MIRTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point, Rect

from ..conftest import make_random_objects, make_random_users


def build_world(seed, measure="LM", alpha=0.5, n_obj=80, n_users=15, vocab=18):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance=measure, alpha=alpha)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    return ds, tree


def subtree_objects(tree, node):
    if node.is_leaf:
        return [tree.object_by_id(e.item) for e in node.entries]
    return [o for c in node.children for o in subtree_objects(tree, c)]


class TestLemma2NodeBounds:
    """For every node E, user u, object o under E: LB <= STS(o,u) <= UB."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
    def test_bounds_bracket_scores(self, seed, measure, alpha):
        ds, tree = build_world(seed, measure, alpha)
        su = ds.super_user
        bounds = BoundCalculator(ds)
        for node in tree.rtree.iter_nodes():
            max_w, min_w = tree.subtree_summary(node)
            weights = {
                t: (max_w[t], min_w.get(t, 0.0)) for t in max_w
            }
            ub = bounds.node_upper(node.rect, weights, su)
            lb = bounds.node_lower(node.rect, weights, su)
            assert lb <= ub + 1e-9
            for obj in subtree_objects(tree, node):
                for user in ds.users:
                    sts = ds.sts(obj, user)
                    assert sts <= ub + 1e-9, (
                        f"UB violated: node {node.page_id}, obj {obj.item_id}, "
                        f"user {user.item_id}: {sts} > {ub}"
                    )
                    assert sts >= lb - 1e-9, (
                        f"LB violated: node {node.page_id}, obj {obj.item_id}, "
                        f"user {user.item_id}: {sts} < {lb}"
                    )

    def test_object_level_bounds_tight_spatially(self):
        """For a single user group, object bounds collapse to the score."""
        rng = random.Random(77)
        objects = make_random_objects(20, 8, rng)
        users = make_random_users(1, 8, rng)
        ds = Dataset(objects, users, relevance="LM", alpha=1.0)  # spatial only
        bounds = BoundCalculator(ds)
        su = ds.super_user
        for o in objects:
            rect = Rect.from_point(o.location)
            ub = bounds.node_upper(rect, {}, su)
            lb = bounds.node_lower(rect, {}, su)
            sts = ds.sts(o, users[0])
            assert ub == pytest.approx(sts, abs=1e-9)
            assert lb == pytest.approx(sts, abs=1e-9)


class TestNormalizationFix:
    """The DESIGN.md deviation: paper-style group normalization can break
    Lemma 2; min/max normalizers restore it."""

    def test_single_keyword_user_reaches_one(self):
        # User A has one rare keyword 5; object O5 is the only doc with
        # it, so TS(O5, A) = 1. A second user broadens the union.
        objs = [
            STObject(0, Point(0, 0), {5: 1}),
            STObject(1, Point(1, 1), {1: 1, 2: 1}),
        ]
        from repro.model.objects import User

        users = [
            User(10, Point(0, 0), {5: 1}),
            User(11, Point(1, 1), {1: 1, 2: 1}),
        ]
        ds = Dataset(objs, users, relevance="LM", alpha=0.0)  # text only
        bounds = BoundCalculator(ds)
        su = ds.super_user
        weights = {
            t: (w, w) for t, w in ds.relevance.document_weights(objs[0].terms).items()
        }
        ub = bounds.node_upper(Rect.from_point(objs[0].location), weights, su)
        sts = ds.sts(objs[0], users[0])
        assert sts == pytest.approx(1.0)
        assert ub >= sts - 1e-9  # the fix: would fail with Z(us.dUni)


class TestLemma3LocationBounds:
    """UBL/LBL bracket the STS of any augmented placement."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
    def test_location_bounds(self, seed, measure):
        ds, _ = build_world(seed, measure)
        bounds = BoundCalculator(ds)
        su = ds.super_user
        rng = random.Random(seed + 100)
        candidates = rng.sample(range(18), 6)
        ws = 2
        ox = STObject(item_id=-1, location=Point(5, 5), terms={0: 1})
        loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
        ub_group = bounds.location_upper_group(loc, ox, candidates, ws, su)
        lb_group = bounds.location_lower_group(loc, ox, su)
        from itertools import combinations

        for combo in list(combinations(candidates, ws)) + [()]:
            doc = augmented_document(ox.terms, combo)
            for user in ds.users:
                sts = ds.sts_parts(loc, doc, user)
                assert sts <= ub_group + 1e-9
                ub_user = bounds.location_upper_user(loc, ox, candidates, ws, user)
                assert sts <= ub_user + 1e-9
            # Lower bound only guarantees the *un-augmented* score.
            if combo == ():
                for user in ds.users:
                    assert ds.sts_parts(loc, ox.terms, user) >= lb_group - 1e-9


class TestAugmentationHelpers:
    def test_augmented_document_adds_one_occurrence(self):
        doc = augmented_document({1: 2}, [1, 3])
        assert doc == {1: 3, 3: 1}

    def test_augmented_document_does_not_mutate(self):
        base = {1: 1}
        augmented_document(base, [2])
        assert base == {1: 1}

    def test_candidate_term_weight_positive_for_known_terms(self, tiny_dataset):
        rel = tiny_dataset.relevance
        w = candidate_term_weight(rel, {}, 0)
        assert w > 0.0

    def test_best_augmentation_respects_ws(self, tiny_dataset):
        rel = tiny_dataset.relevance
        group = frozenset(range(10))
        w1 = best_augmentation_weights(rel, {}, range(10), group, 1)
        w3 = best_augmentation_weights(rel, {}, range(10), group, 3)
        assert 0.0 < w1 <= w3

    def test_best_augmentation_zero_cases(self, tiny_dataset):
        rel = tiny_dataset.relevance
        assert best_augmentation_weights(rel, {}, [], frozenset({1}), 2) == 0.0
        assert best_augmentation_weights(rel, {}, [1], frozenset(), 2) == 0.0
        assert best_augmentation_weights(rel, {}, [1], frozenset({1}), 0) == 0.0
        # keyword already in the base document is not "addable"
        assert best_augmentation_weights(rel, {1: 1}, [1], frozenset({1}), 2) == 0.0
