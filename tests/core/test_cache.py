"""ResultCache: keying, LRU eviction, epoch invalidation."""

import pytest

from repro import MaxBRSTkNNQuery, QueryOptions
from repro.core.cache import ResultCache, canonical_signature
from repro.core.config import CachePolicy
from repro.model.objects import STObject
from repro.spatial.geometry import Point

OPTS = QueryOptions(backend="python")


def make_query(item_id=-1, x=1.0, terms=None, locations=((2.0, 2.0),),
               keywords=(0, 1), ws=1, k=2):
    return MaxBRSTkNNQuery(
        ox=STObject(
            item_id=item_id, location=Point(x, 1.0), terms=dict(terms or {})
        ),
        locations=[Point(px, py) for px, py in locations],
        keywords=list(keywords),
        ws=ws,
        k=k,
    )


class TestCanonicalSignature:
    def test_equal_content_distinct_objects_share_a_signature(self):
        assert canonical_signature(make_query()) == canonical_signature(
            make_query()
        )

    def test_term_order_does_not_matter(self):
        a = make_query(terms={3: 1, 7: 2})
        b = make_query(terms={7: 2, 3: 1})
        assert canonical_signature(a) == canonical_signature(b)

    @pytest.mark.parametrize("change", [
        dict(item_id=-2),
        dict(x=1.5),
        dict(terms={3: 1}),
        dict(locations=((2.0, 2.0), (3.0, 3.0))),
        dict(locations=((3.0, 3.0),)),
        dict(keywords=(1, 0)),  # keyword order is answer-relevant
        dict(ws=2),
        dict(k=3),
    ])
    def test_answer_relevant_changes_change_the_signature(self, change):
        assert canonical_signature(make_query()) != canonical_signature(
            make_query(**change)
        )


class TestResultCache:
    def test_miss_then_hit_roundtrip(self):
        cache = ResultCache()
        query, result = make_query(), object()
        assert cache.lookup(query, OPTS, epoch=0) is None
        assert cache.store(query, OPTS, 0, result) == 0
        assert cache.lookup(make_query(), OPTS, epoch=0) is result
        assert len(cache) == 1

    def test_options_separate_entries(self):
        cache = ResultCache()
        cache.store(make_query(), OPTS, 0, object())
        exact = QueryOptions(backend="python", method="exact")
        assert cache.lookup(make_query(), exact, epoch=0) is None

    def test_epoch_bump_invalidates(self):
        cache = ResultCache()
        cache.store(make_query(), OPTS, 0, object())
        assert cache.lookup(make_query(), OPTS, epoch=1) is None
        # The stale generation ages out of the LRU instead of matching.
        assert cache.lookup(make_query(), OPTS, epoch=0) is not None

    def test_lru_eviction_counts_and_order(self):
        cache = ResultCache(CachePolicy(max_entries=2))
        a, b, c = (make_query(item_id=-i) for i in (1, 2, 3))
        assert cache.store(a, OPTS, 0, "ra") == 0
        assert cache.store(b, OPTS, 0, "rb") == 0
        # Touch a so b is now least-recently-used.
        assert cache.lookup(a, OPTS, epoch=0) == "ra"
        assert cache.store(c, OPTS, 0, "rc") == 1
        assert cache.lookup(b, OPTS, epoch=0) is None
        assert cache.lookup(a, OPTS, epoch=0) == "ra"
        assert cache.lookup(c, OPTS, epoch=0) == "rc"

    def test_restore_refreshes_instead_of_growing(self):
        cache = ResultCache(CachePolicy(max_entries=2))
        cache.store(make_query(), OPTS, 0, "old")
        assert cache.store(make_query(), OPTS, 0, "new") == 0
        assert len(cache) == 1
        assert cache.lookup(make_query(), OPTS, epoch=0) == "new"

    def test_clear(self):
        cache = ResultCache()
        cache.store(make_query(), OPTS, 0, object())
        cache.clear()
        assert len(cache) == 0

    def test_rejects_non_policy(self):
        with pytest.raises(TypeError):
            ResultCache(policy=4096)


class TestCachePolicy:
    @pytest.mark.parametrize("entries", [0, -1, 1.5, "8", True])
    def test_invalid_max_entries_rejected(self, entries):
        with pytest.raises(ValueError):
            CachePolicy(max_entries=entries)

    def test_invalid_track_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CachePolicy(track_thresholds=1)

    def test_with_(self):
        policy = CachePolicy().with_(max_entries=8)
        assert policy.max_entries == 8
        assert CachePolicy().max_entries == 4096
