"""Failure-injection and degenerate-input tests across the core pipeline."""

import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.joint_topk import joint_topk
from repro.index.irtree import MIRTree
from repro.model.objects import STObject, User
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


class TestDegenerateGeometry:
    def test_all_items_at_one_point(self):
        """Co-located everything: pure text ranking, no crashes."""
        objects = [STObject(i, Point(1, 1), {i % 3: 1}) for i in range(20)]
        users = [User(i, Point(1, 1), {0: 1}) for i in range(4)]
        ds = Dataset(objects, users, relevance="LM", alpha=0.5)
        tree = MIRTree(objects, ds.relevance, fanout=4)
        results = joint_topk(tree, ds, 3)
        for u in users:
            gold = sorted((ds.sts(o, u) for o in objects), reverse=True)[2]
            assert results[u.item_id].kth_score == pytest.approx(gold, abs=1e-9)

    def test_collinear_points(self):
        objects = [STObject(i, Point(float(i), 0.0), {0: 1}) for i in range(30)]
        users = [User(0, Point(15.0, 0.0), {0: 1})]
        ds = Dataset(objects, users, relevance="KO", alpha=1.0)
        tree = MIRTree(objects, ds.relevance, fanout=4)
        results = joint_topk(tree, ds, 5)
        # nearest 5 objects to x=15 win
        got = set(results[0].object_ids())
        assert got == {13, 14, 15, 16, 17}


class TestDegenerateText:
    def test_objects_without_keywords_rejected_gracefully(self):
        """Empty documents are legal objects (spatial-only relevance)."""
        objects = [STObject(0, Point(0, 0), {}), STObject(1, Point(1, 1), {0: 1})]
        users = [User(0, Point(0, 0), {0: 1})]
        ds = Dataset(objects, users, relevance="LM", alpha=0.5)
        tree = MIRTree(objects, ds.relevance, fanout=4)
        results = joint_topk(tree, ds, 2)
        assert len(results[0].ranked) == 2

    def test_user_without_keywords(self):
        rng = random.Random(1)
        objects = make_random_objects(20, 5, rng)
        users = [User(0, Point(5, 5), {})]
        ds = Dataset(objects, users, relevance="LM", alpha=0.5)
        tree = MIRTree(objects, ds.relevance, fanout=4)
        results = joint_topk(tree, ds, 3)
        gold = sorted((ds.sts(o, users[0]) for o in objects), reverse=True)[2]
        assert results[0].kth_score == pytest.approx(gold, abs=1e-9)

    def test_query_with_empty_candidate_keywords(self):
        rng = random.Random(2)
        objects = make_random_objects(30, 5, rng)
        users = make_random_users(5, 5, rng)
        ds = Dataset(objects, users)
        engine = MaxBRSTkNNEngine(ds)
        q = MaxBRSTkNNQuery(
            ox=STObject(-1, Point(5, 5), {0: 1}),
            locations=[Point(5, 5)],
            keywords=[],
            ws=0,
            k=3,
        )
        res = engine.query(q, method="exact")
        assert res.keywords == frozenset()
        assert res.location == q.locations[0]

    def test_candidate_keywords_unknown_to_collection(self):
        """Candidates no document contains still work (they weigh > 0
        in the augmented query document, which is scored directly)."""
        rng = random.Random(3)
        objects = make_random_objects(30, 5, rng)
        users = [User(0, Point(5, 5), {777: 1})]
        ds = Dataset(objects, users)
        engine = MaxBRSTkNNEngine(ds)
        q = MaxBRSTkNNQuery(
            ox=STObject(-1, Point(5, 5), {}),
            locations=[Point(5, 5)],
            keywords=[777],
            ws=1,
            k=3,
        )
        res = engine.query(q, method="exact")
        assert res.cardinality >= 0  # must not crash; winning is possible


class TestSingleEntityWorlds:
    def test_single_object_single_user(self):
        objects = [STObject(0, Point(0, 0), {0: 1})]
        users = [User(0, Point(1, 1), {0: 1})]
        ds = Dataset(objects, users)
        engine = MaxBRSTkNNEngine(ds, index_users=True)
        q = MaxBRSTkNNQuery(
            ox=STObject(-1, Point(0.5, 0.5), {}),
            locations=[Point(0.5, 0.5)],
            keywords=[0],
            ws=1,
            k=1,
        )
        for mode in ("joint", "baseline", "indexed"):
            res = engine.query(q, method="exact", mode=mode)
            # ox matches the user's keyword and is closer than o0? Either
            # way all modes must agree.
            assert res.cardinality in (0, 1)
        cards = {
            mode: engine.query(q, method="exact", mode=mode).cardinality
            for mode in ("joint", "baseline", "indexed")
        }
        assert len(set(cards.values())) == 1

    def test_k_equals_collection_size_everyone_wins(self):
        """With k = |O| every object is in every top-k, so any placement
        sharing a keyword (or any at all, threshold = min score) wins."""
        rng = random.Random(4)
        objects = make_random_objects(10, 5, rng)
        users = make_random_users(6, 5, rng)
        ds = Dataset(objects, users)
        engine = MaxBRSTkNNEngine(ds)
        q = MaxBRSTkNNQuery(
            ox=STObject(-1, Point(5, 5), {}),
            locations=[Point(5, 5)],
            keywords=list(range(5)),
            ws=2,
            k=10,
        )
        res = engine.query(q, method="exact")
        base = engine.query(q, method="exact", mode="baseline")
        assert res.cardinality == base.cardinality
