"""Vectorized kernels vs the scalar reference, value for value.

The equivalence suite (``test_backend_equivalence``) checks whole-query
results; these tests pin the kernel layer itself: every array a
:class:`DatasetArrays` kernel returns must match the scalar code path
element-wise, and every guard-banded *decision* kernel must match the
scalar decision exactly.
"""

import math
import random

import pytest

from repro import Dataset
from repro.core.bounds import BoundCalculator
from repro.core.joint_topk import individual_topk, joint_traversal
from repro.core.kernels import GUARD_EPS, HAS_NUMPY, arrays_for, resolve_backend
from repro.core.keyword_selection import compute_brstknn
from repro.index.irtree import MIRTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point
from repro.spatial.metrics import CHEBYSHEV, EUCLIDEAN, MANHATTAN

from ..conftest import make_random_objects, make_random_users

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

#: Element-wise kernels may differ from the scalar reference only far
#: below the guard band that protects decisions.
TOL = GUARD_EPS * 1e-3


def build(seed, measure="LM", alpha=0.5, vocab=20, n_obj=50, n_users=14, metric=EUCLIDEAN):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance=measure, alpha=alpha, metric=metric)
    return ds, rng


@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
@pytest.mark.parametrize("seed", [0, 1])
def test_sts_kernel_matches_scalar(measure, alpha, seed):
    ds, rng = build(seed, measure=measure, alpha=alpha)
    arrays = arrays_for(ds)
    for _ in range(5):
        loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
        doc = {t: rng.randint(1, 3) for t in rng.sample(range(20), rng.randint(0, 5))}
        scores = arrays.sts(loc, doc)
        for i, u in enumerate(ds.users):
            assert math.isclose(
                scores[i], ds.sts_parts(loc, doc, u), rel_tol=0.0, abs_tol=TOL
            )


@pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN, CHEBYSHEV])
def test_spatial_kernel_matches_all_metrics(metric):
    ds, rng = build(3, metric=metric)
    arrays = arrays_for(ds)
    loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
    ss = arrays.spatial_scores(loc)
    for i, u in enumerate(ds.users):
        assert math.isclose(
            ss[i], ds.spatial_score(loc, u.location), rel_tol=0.0, abs_tol=TOL
        )


@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("vocab", [8, 40])
@pytest.mark.parametrize("ws", [0, 1, 3])
def test_location_bounds_match_scalar(measure, vocab, ws):
    ds, rng = build(7, measure=measure, vocab=vocab)
    arrays = arrays_for(ds)
    bounds = BoundCalculator(ds)
    ox = STObject(
        item_id=-1,
        location=Point(5, 5),
        terms={t: 1 for t in rng.sample(range(vocab), 3)},
    )
    candidates = sorted(rng.sample(range(vocab), min(6, vocab)))
    for _ in range(4):
        loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
        ub = arrays.location_upper(loc, ox, candidates, ws)
        lb = arrays.location_lower(loc, ox)
        for i, u in enumerate(ds.users):
            assert math.isclose(
                ub[i],
                bounds.location_upper_user(loc, ox, candidates, ws, u),
                rel_tol=0.0,
                abs_tol=TOL,
            )
            assert math.isclose(
                lb[i],
                bounds.location_lower_user(loc, ox, u),
                rel_tol=0.0,
                abs_tol=TOL,
            )


@pytest.mark.parametrize("seed", range(4))
def test_brstknn_kernel_exact_membership(seed):
    """The decision kernel must agree with the scalar scan *exactly*,
    including RSk thresholds of 0.0 (everyone ties at score >= 0)."""
    ds, rng = build(seed)
    ox = STObject(item_id=-1, location=Point(5, 5), terms={})
    loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
    keywords = frozenset(rng.sample(range(20), 2))
    for rsk_value in (0.0, 0.3, 0.7):
        rsk = {u.item_id: rsk_value for u in ds.users}
        scalar = compute_brstknn(ds, ox, loc, keywords, ds.users, rsk, backend="python")
        vectorized = compute_brstknn(
            ds, ox, loc, keywords, ds.users, rsk, backend="numpy"
        )
        assert scalar == vectorized


@pytest.mark.parametrize("seed", range(4))
def test_shortlist_kernel_exact_membership(seed):
    ds, rng = build(seed, n_users=20)
    arrays = arrays_for(ds)
    bounds = BoundCalculator(ds)
    ox = STObject(item_id=-1, location=Point(5, 5), terms={0: 1})
    candidates = sorted(rng.sample(range(20), 5))
    loc = Point(rng.uniform(0, 10), rng.uniform(0, 10))
    rsk = {u.item_id: rng.uniform(0.0, 1.0) for u in ds.users}
    scalar = [
        u.item_id
        for u in ds.users
        if bounds.location_upper_user(loc, ox, candidates, 2, u) >= rsk[u.item_id]
    ]
    vectorized = [
        u.item_id for u in arrays.shortlist(loc, ox, candidates, 2, ds.users, rsk)
    ]
    assert scalar == vectorized


def test_individual_topk_backends_identical():
    """Vectorized Algorithm 2 returns bitwise-identical TopKResults."""
    ds, _ = build(11, n_obj=80, n_users=16)
    tree = MIRTree(ds.objects, ds.relevance, fanout=4)
    for k in (1, 4, 10):
        traversal = joint_traversal(tree, ds, k)
        py = individual_topk(traversal, ds, k, backend="python")
        np_ = individual_topk(traversal, ds, k, backend="numpy")
        assert py.keys() == np_.keys()
        for uid in py:
            assert py[uid].ranked == np_[uid].ranked


def test_user_subset_rows():
    ds, rng = build(13)
    arrays = arrays_for(ds)
    subset = rng.sample(ds.users, 5)
    loc = Point(2, 2)
    ss = arrays.spatial_scores(loc, arrays.rows_for(subset))
    for i, u in enumerate(subset):
        assert math.isclose(
            ss[i], ds.spatial_score(loc, u.location), rel_tol=0.0, abs_tol=TOL
        )


def test_arrays_cache_per_dataset():
    ds, _ = build(17)
    assert arrays_for(ds) is arrays_for(ds)
    clone = ds.with_alpha(0.9)
    assert arrays_for(clone) is not arrays_for(ds)


def test_arrays_cache_does_not_leak_datasets():
    """Datasets (and their dense array mirrors) must be collectable
    once the caller drops them — a serving sweep builds many."""
    import gc
    import weakref

    ds, _ = build(19)
    arrays_for(ds)
    ref = weakref.ref(ds)
    del ds
    gc.collect()
    assert ref() is None


def test_resolve_backend():
    assert resolve_backend(None) == "numpy"
    assert resolve_backend("auto") == "numpy"
    assert resolve_backend("python") == "python"
    with pytest.raises(ValueError):
        resolve_backend("fortran")
