"""Tests for the exhaustive baseline (Section 4)."""

import random


from repro import Dataset
from repro.core.baseline import baseline_maxbrstknn, baseline_select_candidate
from repro.core.query import MaxBRSTkNNQuery
from repro.index.irtree import MIRTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build(seed, n_obj=60, n_users=10, vocab=12):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance="LM", alpha=0.5)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    locations = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)]
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=-1, location=Point(5, 5), terms={}),
        locations=locations,
        keywords=sorted(rng.sample(range(vocab), 5)),
        ws=2,
        k=4,
    )
    return ds, tree, query


class TestBaselineScan:
    def test_scans_all_combinations(self):
        ds, tree, query = build(1)
        rsk = {u.item_id: 0.9 for u in ds.users}
        res = baseline_select_candidate(ds, query, rsk)
        from math import comb

        # every size 0..ws over the 5-keyword pool, for all 3 locations
        expected_combos = 1 + comb(5, 1) + comb(5, 2)
        assert res.stats.keyword_combinations_scored == 3 * expected_combos

    def test_returns_at_most_ws_keywords(self):
        ds, tree, query = build(2)
        rsk = {u.item_id: 0.0 for u in ds.users}
        res = baseline_select_candidate(ds, query, rsk)
        assert len(res.keywords) <= query.ws

    def test_zero_overlap_users_win_only_spatially(self):
        """With no shared keyword TS = 0, so only alpha * SS can win.

        Thresholds above alpha are therefore unreachable for users whose
        vocabulary never matches the placed object.
        """
        ds, tree, query = build(3)
        # give every user an unmatchable vocabulary
        for u in ds.users:
            u.terms = {999: 1}
        above_alpha = {u.item_id: ds.alpha + 0.01 for u in ds.users}
        res = baseline_select_candidate(ds, query, above_alpha)
        assert res.cardinality == 0
        # but a zero threshold admits everyone purely spatially
        zero = {u.item_id: 0.0 for u in ds.users}
        res2 = baseline_select_candidate(ds, query, zero)
        assert res2.cardinality == len(ds.users)

    def test_ws_zero_scores_empty_combo(self):
        ds, tree, query = build(4)
        query.ws = 0
        rsk = {u.item_id: 0.5 for u in ds.users}
        res = baseline_select_candidate(ds, query, rsk)
        assert res.keywords == frozenset()


class TestFullBaseline:
    def test_end_to_end_and_stats(self):
        ds, tree, query = build(5)
        res = baseline_maxbrstknn(tree, ds, query)
        assert res.location is not None
        assert res.stats.topk_time_s > 0
        assert res.stats.selection_time_s > 0

    def test_io_recorded_with_store(self):
        from repro.storage.iostats import IOCounter
        from repro.storage.pager import PageStore

        ds, tree, query = build(6)
        store = PageStore(counter=IOCounter())
        res = baseline_maxbrstknn(tree, ds, query, store=store)
        assert res.stats.io_node_visits > 0
