"""The unified phase pipeline: stage contracts and executor identity.

Three layers of guarantees:

* **Stage round-trips** — for every scatter stage, ``merge(split(...))``
  over any partition of the user set reconstructs the sequential
  inputs *exactly* (same rsk maps, same shortlist ids in dataset user
  order), because ``run`` is the shared worker entry both executors
  use.
* **Pipeline shapes** — ``build_pipeline`` wires the right typed
  stages per (mode, executor), with validated inputs/outputs.
* **Executor identity** — the LocalExecutor (via ``query_batch``) and
  the ShardedExecutor (via ``ShardedEngine``) produce bitwise-equal
  results; per-stage accounting lands on ``last_flush_report``.
"""

import random

import pytest

from repro import (
    Dataset,
    EngineConfig,
    MaxBRSTkNNEngine,
    MaxBRSTkNNQuery,
    QueryOptions,
    STObject,
)
from repro.core.batch import _ensure_traversal_pool, derive_rsk_group
from repro.core.joint_topk import individual_topk
from repro.core.partial import merge_query_shortlist_ids
from repro.core.pipeline import (
    FlushContext,
    RefineStage,
    ShardHandle,
    ShortlistStage,
    build_pipeline,
    execute_shard_payload,
)
from repro.core.planner import plan_batch
from repro.datagen.partition import UserPartitioner
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build_dataset(seed=0, n_obj=60, n_users=20, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    measure = ["LM", "TF", "KO"][seed % 3]
    return Dataset(objects, users, relevance=measure, alpha=0.5), rng, vocab


def make_queries(rng, vocab, count, ks=(3, 5)):
    return [
        MaxBRSTkNNQuery(
            ox=STObject(
                item_id=-(i + 1),
                location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                terms={},
            ),
            locations=[
                Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(4)
            ],
            keywords=sorted(rng.sample(range(vocab), 5)),
            ws=2,
            k=ks[i % len(ks)],
        )
        for i in range(count)
    ]


def scatter_context(dataset, queries, num_shards, partitioner, seed):
    """A joint-mode FlushContext plus shard handles over a partition."""
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
    plan = plan_batch(
        QueryOptions(backend="python"), engine.capabilities(),
        [q.k for q in queries],
    )
    pool = _ensure_traversal_pool(engine, plan.shared_traversal_k, "python")
    ctx = FlushContext(
        engine=engine,
        plan=plan,
        queries=list(queries),
        pool_state=pool,
        need_ks=list(plan.distinct_ks),
        group_by_k={k: derive_rsk_group(pool, k) for k in plan.distinct_ks},
        super_user=dataset.super_user,
        user_pos={u.item_id: i for i, u in enumerate(dataset.users)},
    )
    _, shard_datasets = UserPartitioner(partitioner, num_shards).split(dataset)
    handles = [
        ShardHandle(shard_id=i, dataset=ds, workers=1, rsk_by_k={})
        for i, ds in enumerate(shard_datasets)
        if ds.users
    ]
    return engine, ctx, handles


class TestStageRoundTrips:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("partitioner", ["hash", "grid"])
    def test_refine_merge_split_roundtrips_to_sequential(
        self, seed, num_shards, partitioner
    ):
        """merge(split(...)) == the sequential Algorithm 2 map, exactly."""
        dataset, rng, vocab = build_dataset(seed=seed)
        queries = make_queries(rng, vocab, 4, ks=(2, 5))
        engine, ctx, handles = scatter_context(
            dataset, queries, num_shards, partitioner, seed
        )
        stage = RefineStage()
        partials_per_shard = [
            [execute_shard_payload(h.dataset, p) for p in stage.split(ctx, h)]
            for h in handles
        ]
        stage.merge(ctx, partials_per_shard)
        pool = ctx["pool_state"]
        for k in ctx["need_ks"]:
            sequential = {
                uid: res.kth_score
                for uid, res in individual_topk(
                    pool.traversal, dataset, k, backend="python"
                ).items()
            }
            merged = ctx["merged_by_k"][k]
            assert merged.rsk == sequential  # exact, not approx
            assert merged.users_total == len(dataset.users)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_shortlist_merge_split_restores_sequential_user_order(
        self, seed, num_shards
    ):
        """Merged shortlist ids per location == the sequential scan's
        ``[u for u in users if UBL >= RSk(u)]``, in dataset user order."""
        from repro.core.candidate_selection import shortlist_locations

        dataset, rng, vocab = build_dataset(seed=seed + 10)
        queries = make_queries(rng, vocab, 3, ks=(3,))
        engine, ctx, handles = scatter_context(
            dataset, queries, num_shards, "hash", seed
        )
        # Refine first (shortlist reads the per-shard rsk maps).
        refine = RefineStage()
        refine_partials = [
            [execute_shard_payload(h.dataset, p) for p in refine.split(ctx, h)]
            for h in handles
        ]
        refine.merge(ctx, refine_partials)
        for h, chunks in zip(handles, refine_partials):
            for partial in (p for chunk in chunks for p in chunk):
                h.rsk_by_k[partial.k] = partial.rsk
        stage = ShortlistStage()
        partials_per_shard = [
            [execute_shard_payload(h.dataset, p) for p in stage.split(ctx, h)]
            for h in handles
        ]
        stage.merge(ctx, partials_per_shard)
        merged = ctx["merged_by_k"]
        for q, (q2, kept, ids_per_location, pruned, _stats, _t) in zip(
            queries, ctx["merged_inputs"]
        ):
            assert q is q2
            sequential, seq_pruned = shortlist_locations(
                dataset, q, merged[q.k].rsk, ctx["group_by_k"][q.k],
                super_user=dataset.super_user, backend="python",
            )
            assert pruned == seq_pruned
            assert [loc for loc, _, _ in kept] == [sl.index for sl in sequential]
            assert ids_per_location == [
                [u.item_id for u in sl.users] for sl in sequential
            ]

    def test_merge_rejects_overlapping_shards(self):
        """The refine merge is a *disjoint* union — overlap raises."""
        dataset, rng, vocab = build_dataset(seed=2)
        queries = make_queries(rng, vocab, 2, ks=(3,))
        engine, ctx, handles = scatter_context(dataset, queries, 2, "hash", 2)
        stage = RefineStage()
        partials = [
            [execute_shard_payload(h.dataset, p) for p in stage.split(ctx, h)]
            for h in handles
        ]
        duplicated = [partials[0], partials[0]]  # same users twice
        with pytest.raises(ValueError, match="re-reports"):
            stage.merge(ctx, duplicated)

    def test_shortlist_merge_checks_group_agreement(self):
        dataset, rng, vocab = build_dataset(seed=3)
        from repro.core.partial import ShortlistPartial

        good = ShortlistPartial(
            shard_id=0, kept=[(0, 1.0, 0.5)], users=[[1]],
            locations_pruned=1, time_s=0.0,
        )
        bad = ShortlistPartial(
            shard_id=1, kept=[(0, 0.9, 0.5)], users=[[2]],
            locations_pruned=1, time_s=0.0,
        )
        with pytest.raises(ValueError, match="disagrees"):
            merge_query_shortlist_ids([good, bad], {1: 0, 2: 1})


class TestPipelineShapes:
    def test_stage_lists_per_mode_and_executor(self):
        dataset, rng, vocab = build_dataset()
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
        caps = engine.capabilities()
        joint = plan_batch(QueryOptions(backend="python"), caps, [3, 5])
        indexed = plan_batch(
            QueryOptions(mode="indexed", backend="python"), caps, [3, 5]
        )
        baseline = plan_batch(
            QueryOptions(mode="baseline", backend="python"), caps, [3]
        )
        assert build_pipeline(joint, sharded=False).stage_names() == (
            "traverse", "refine", "select",
        )
        assert build_pipeline(joint, sharded=True).stage_names() == (
            "traverse", "refine", "shortlist", "search",
        )
        assert build_pipeline(indexed, sharded=False).stage_names() == (
            "traverse", "indexed-search",
        )
        assert build_pipeline(indexed, sharded=True).stage_names() == (
            "traverse", "indexed-search",
        )
        assert build_pipeline(baseline, sharded=False).stage_names() == (
            "baseline-topk", "select",
        )

    def test_stages_declare_io_slots(self):
        dataset, _, _ = build_dataset()
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        plan = plan_batch(QueryOptions(backend="python"), engine.capabilities(), [3])
        pipeline = build_pipeline(plan, sharded=True)
        produced = {"engine", "plan", "queries", "io_counter", "need_ks",
                    "super_user", "user_pos", "merged_by_k", "users_total",
                    "store"}
        for stage in pipeline.stages:
            assert stage.inputs, stage.name
            missing = [s for s in stage.inputs if s not in produced]
            assert not missing, (stage.name, missing)
            produced |= set(stage.outputs)
        assert "results" in produced

    def test_context_require_names_the_missing_slot(self):
        ctx = FlushContext()
        with pytest.raises(RuntimeError, match="merged_by_k"):
            ctx.require("merged_by_k")


class TestFlushReports:
    def test_local_joint_flush_report(self):
        dataset, rng, vocab = build_dataset(seed=4)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        queries = make_queries(rng, vocab, 4, ks=(2, 4))
        engine.query_batch(queries, QueryOptions(backend="python"))
        report = engine.last_flush_report
        assert report is not None
        assert report.mode == "joint"
        assert report.batch_size == 4
        assert [s.stage for s in report.stages] == ["traverse", "refine", "select"]
        # The one tree walk's I/O lands on the traverse stage.
        traverse = report.stage("traverse")
        assert traverse.io_node_visits + traverse.io_invfile_blocks > 0
        assert report.stage("select").io_node_visits == 0

    def test_local_indexed_flush_report_charges_search_io(self):
        dataset, rng, vocab = build_dataset(seed=5)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
        queries = make_queries(rng, vocab, 3, ks=(3,))
        engine.query_batch(queries, QueryOptions(mode="indexed", backend="python"))
        report = engine.last_flush_report
        assert [s.stage for s in report.stages] == ["traverse", "indexed-search"]
        search = report.stage("indexed-search")
        # The best-first search reads MIUR pages through the store.
        assert search.io_node_visits + search.io_invfile_blocks > 0

    def test_sharded_flush_report(self):
        from repro.serve import ShardedEngine

        dataset, rng, vocab = build_dataset(seed=6)
        queries = make_queries(rng, vocab, 4, ks=(3,))
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        sharded.query_batch(queries, QueryOptions(backend="python"))
        report = sharded.last_flush_report
        assert [s.stage for s in report.stages] == [
            "traverse", "refine", "shortlist", "search",
        ]
        assert report.stage("refine").scatter_width == 2
        assert report.stage("shortlist").items == 4
