"""FlushHistory: the planner's observed-cost ring buffers."""

import pytest

from repro.core.history import (
    FlushHistory,
    FlushSignature,
    signature_of,
)
from repro.core.pipeline import FlushReport, StageStats
from repro.core.planner import EngineCapabilities, plan_batch
from repro.core.config import QueryOptions
from repro.core.kernels import HAS_NUMPY

SIG = FlushSignature(mode="joint", backend="python", scatter_width=1)
OTHER = FlushSignature(mode="indexed", backend="python", scatter_width=1)


def report(batch_size=4, stage="select", items=4, time_s=0.004):
    return FlushReport(
        mode="joint",
        batch_size=batch_size,
        stages=[StageStats(stage=stage, items=items, time_s=time_s)],
    )


class TestRecordObserve:
    def test_unseen_signature_observes_none(self):
        assert FlushHistory().observe(SIG) is None
        assert FlushHistory().flushes(SIG) == 0

    def test_per_item_cost_is_time_over_items(self):
        history = FlushHistory()
        history.record(SIG, report(items=4, time_s=0.004))
        history.record(SIG, report(items=2, time_s=0.008))
        obs = history.observe(SIG)
        assert obs.flushes == 2
        assert obs.mean_batch == 4.0
        # 12 ms over 6 items = 2 ms/item.
        assert obs.per_item_ms("select") == pytest.approx(2.0)
        assert obs.mean_items("select") == pytest.approx(3.0)
        assert obs.per_item_ms("unknown-stage") is None
        assert obs.mean_items("unknown-stage") is None

    def test_signatures_do_not_bleed(self):
        history = FlushHistory()
        history.record(SIG, report(time_s=0.001))
        history.record(OTHER, report(stage="indexed-search", time_s=5.0))
        assert history.observe(SIG).per_item_ms("indexed-search") is None
        assert history.flushes(SIG) == 1
        assert history.flushes(OTHER) == 1
        assert len(history) == 2

    def test_zero_item_stages_have_no_per_item_cost(self):
        history = FlushHistory()
        history.record(SIG, report(items=0, time_s=0.5))
        assert history.observe(SIG).per_item_ms("select") is None


class TestRingBehavior:
    def test_capacity_ages_old_flushes_out(self):
        history = FlushHistory(capacity=3)
        for _ in range(5):
            history.record(SIG, report(time_s=10.0))  # slow era
        for _ in range(3):
            history.record(SIG, report(items=4, time_s=0.0004))  # fast era
        obs = history.observe(SIG)
        assert obs.flushes == 3
        # The slow flushes aged out; only the fast era remains.
        assert obs.per_item_ms("select") == pytest.approx(0.1)

    def test_clear(self):
        history = FlushHistory()
        history.record(SIG, report())
        history.clear()
        assert len(history) == 0
        assert history.observe(SIG) is None

    @pytest.mark.parametrize("capacity", [0, -1, 1.5, "8", True])
    def test_invalid_capacity_rejected(self, capacity):
        with pytest.raises(ValueError):
            FlushHistory(capacity=capacity)


class TestSnapshot:
    def test_snapshot_keys_and_rounding(self):
        history = FlushHistory()
        history.record(SIG, report(items=4, time_s=0.004))
        snap = history.snapshot()
        assert set(snap) == {"joint/python/x1"}
        cell = snap["joint/python/x1"]
        assert cell["flushes"] == 1
        assert cell["mean_batch"] == 4.0
        assert cell["stage_ms_per_item"] == {"select": 1.0}


class TestSignatureOf:
    def test_local_plan_signature(self):
        caps = EngineCapabilities(
            has_user_tree=False, numpy_available=HAS_NUMPY, fork_available=True
        )
        plan = plan_batch(QueryOptions(backend="python"), caps, ks=[3, 3])
        assert signature_of(plan) == SIG

    def test_sharded_plan_signature_carries_scatter_width(self):
        caps = EngineCapabilities(
            has_user_tree=False,
            numpy_available=HAS_NUMPY,
            fork_available=True,
            num_shards=2,
            partitioner="hash",
            shard_users=(6, 6),
        )
        plan = plan_batch(QueryOptions(backend="python"), caps, ks=[3, 3])
        assert signature_of(plan) == FlushSignature(
            mode="joint", backend="python", scatter_width=2
        )
