"""Mergeable partial results: union semantics and merge validation."""

import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, MaxBRSTkNNQuery, STObject
from repro.core.batch import _ensure_traversal_pool, derive_rsk_group
from repro.core.candidate_selection import shortlist_locations
from repro.core.partial import (
    PartialResult,
    compute_partial,
    compute_shortlist_partial,
    merge_partials,
    merge_query_shortlists,
)
from repro.datagen.partition import partition_users
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build(seed=0, n_users=20):
    rng = random.Random(seed)
    dataset = Dataset(
        make_random_objects(60, 16, rng),
        make_random_users(n_users, 16, rng),
        relevance="LM",
        alpha=0.5,
    )
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
    return dataset, engine, rng


def make_query(rng, vocab=16, k=3, locations=3):
    return MaxBRSTkNNQuery(
        ox=STObject(item_id=-1, location=Point(5, 5), terms={}),
        locations=[Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(locations)],
        keywords=sorted(rng.sample(range(vocab), 5)),
        ws=2,
        k=k,
    )


class TestRefineMerge:
    def test_union_equals_central_refinement(self):
        dataset, engine, _ = build()
        pool = _ensure_traversal_pool(engine, 3, "python")
        _, shard_datasets = partition_users(dataset, 3, "hash")
        partials = [
            compute_partial(ds, pool.traversal, 3, shard_id=i)
            for i, ds in enumerate(shard_datasets)
        ]
        merged = merge_partials(partials)
        from repro.core.joint_topk import individual_topk

        central = individual_topk(pool.traversal, dataset, 3)
        assert merged.rsk == {
            uid: res.kth_score for uid, res in central.items()
        }
        assert merged.users_total == len(dataset.users)
        assert merged.shards == 3

    def test_overlapping_shards_raise(self):
        a = PartialResult(shard_id=0, k=3, rsk={1: 0.5}, users_total=1, time_s=0.0)
        b = PartialResult(shard_id=1, k=3, rsk={1: 0.6}, users_total=1, time_s=0.0)
        with pytest.raises(ValueError, match="re-reports"):
            merge_partials([a, b])

    def test_mixed_k_raises(self):
        a = PartialResult(shard_id=0, k=3, rsk={1: 0.5}, users_total=1, time_s=0.0)
        b = PartialResult(shard_id=1, k=5, rsk={2: 0.6}, users_total=1, time_s=0.0)
        with pytest.raises(ValueError, match="across k"):
            merge_partials([a, b])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            merge_partials([])


class TestShortlistMerge:
    def test_merged_equals_sequential_shortlists(self):
        dataset, engine, rng = build(seed=2)
        query = make_query(rng)
        pool = _ensure_traversal_pool(engine, query.k, "python")
        from repro.core.joint_topk import individual_topk

        rsk = {
            uid: res.kth_score
            for uid, res in individual_topk(pool.traversal, dataset, query.k).items()
        }
        rsk_group = derive_rsk_group(pool, query.k)
        sequential, seq_pruned = shortlist_locations(
            dataset, query, rsk, rsk_group, super_user=dataset.super_user
        )
        _, shard_datasets = partition_users(dataset, 4, "grid")
        partials = [
            compute_shortlist_partial(
                ds, query,
                {u.item_id: rsk[u.item_id] for u in ds.users},
                rsk_group, dataset.super_user, shard_id=i,
            )
            for i, ds in enumerate(shard_datasets)
            if ds.users
        ]
        merged, pruned = merge_query_shortlists(dataset, query, partials)
        assert pruned == seq_pruned
        assert len(merged) == len(sequential)
        for a, b in zip(sequential, merged):
            assert a.index == b.index
            assert a.location == b.location
            assert a.upper_group == b.upper_group
            assert a.lower_group == b.lower_group
            # same users, same (sequential) order
            assert [u.item_id for u in a.users] == [u.item_id for u in b.users]

    def test_disagreeing_shards_raise(self):
        dataset, engine, rng = build(seed=3)
        query = make_query(rng)
        pool = _ensure_traversal_pool(engine, query.k, "python")
        from repro.core.joint_topk import individual_topk

        rsk = {
            uid: res.kth_score
            for uid, res in individual_topk(pool.traversal, dataset, query.k).items()
        }
        _, shard_datasets = partition_users(dataset, 2, "hash")
        partials = []
        for i, ds in enumerate(shard_datasets):
            # Different rsk_group per shard -> different group pruning.
            partials.append(
                compute_shortlist_partial(
                    ds, query,
                    {u.item_id: rsk[u.item_id] for u in ds.users},
                    0.0 if i == 0 else 10.0, dataset.super_user, shard_id=i,
                )
            )
        with pytest.raises(ValueError, match="disagrees"):
            merge_query_shortlists(dataset, query, partials)
