"""``query_batch``: a batch of N queries == N sequential ``query`` calls.

The contract under test: batching is purely an execution strategy.
Results — location, keyword set, BRSTkNN user set — and every
deterministic ``QueryStats`` counter (I/O, pruning, combinations
scored) must be exactly what sequential cold queries produce; only
wall-clock timings may differ.
"""

import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.kernels import HAS_NUMPY
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users

BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])


def build_engine(seed=0, n_obj=70, n_users=14, vocab=18, index_users=False):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    dataset = Dataset(objects, users, relevance="LM", alpha=0.5)
    return MaxBRSTkNNEngine(dataset, fanout=4, index_users=index_users), rng, vocab


def make_queries(rng, vocab, count, ks=(3,)):
    queries = []
    for i in range(count):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(vocab), 5)),
                ws=2,
                k=ks[i % len(ks)],
            )
        )
    return queries


def assert_result_equal(a, b):
    assert a.location == b.location
    assert a.keywords == b.keywords
    assert a.brstknn == b.brstknn


def assert_stats_equal(a, b):
    """Deterministic stats counters only — timings legitimately differ."""
    assert a.users_total == b.users_total
    assert a.io_node_visits == b.io_node_visits
    assert a.io_invfile_blocks == b.io_invfile_blocks
    assert a.locations_pruned == b.locations_pruned
    assert a.keyword_combinations_scored == b.keyword_combinations_scored
    assert a.users_pruned == b.users_pruned


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", ["joint", "baseline"])
def test_batch_equals_sequential(backend, mode):
    engine, rng, vocab = build_engine()
    queries = make_queries(rng, vocab, 6, ks=(3, 5))  # mixed k values
    sequential = [engine.query(q, mode=mode, backend="python") for q in queries]
    batched = engine.query_batch(queries, mode=mode, backend=backend)
    assert len(batched) == len(sequential)
    for solo, bat in zip(sequential, batched):
        assert_result_equal(solo, bat)
        assert_stats_equal(solo.stats, bat.stats)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_equals_sequential_indexed(backend):
    engine, rng, vocab = build_engine(index_users=True)
    queries = make_queries(rng, vocab, 3)
    sequential = [
        engine.query(q, mode="indexed", backend="python") for q in queries
    ]
    batched = engine.query_batch(queries, mode="indexed", backend=backend)
    for solo, bat in zip(sequential, batched):
        assert_result_equal(solo, bat)
        assert_stats_equal(solo.stats, bat.stats)


def test_empty_batch():
    engine, _, _ = build_engine()
    assert engine.query_batch([]) == []


def test_duplicate_queries_get_identical_results():
    engine, rng, vocab = build_engine(seed=5)
    query = make_queries(rng, vocab, 1)[0]
    batched = engine.query_batch([query, query, query], backend="python")
    assert len(batched) == 3
    for other in batched[1:]:
        assert_result_equal(batched[0], other)
        assert_stats_equal(batched[0].stats, other.stats)
    # ...and they match a sequential call too.
    solo = engine.query(query, backend="python")
    assert_result_equal(solo, batched[0])


def test_shared_topk_cache_reused_across_batches():
    engine, rng, vocab = build_engine(seed=7)
    queries = make_queries(rng, vocab, 4, ks=(2, 4))
    engine.query_batch(queries)
    cache = engine._shared_topk_cache
    assert set(cache) == {("joint", 2), ("joint", 4)}
    hits = {key: entry.hits for key, entry in cache.items()}
    engine.query_batch(queries)  # same ks: phase 1 must not recompute
    assert set(cache) == {("joint", 2), ("joint", 4)}
    for key, entry in cache.items():
        assert entry.hits == hits[key] + 2
    engine.clear_topk_cache()
    assert engine._shared_topk_cache == {}


def test_batch_workers_match_inprocess():
    engine, rng, vocab = build_engine(seed=9)
    queries = make_queries(rng, vocab, 5)
    inprocess = engine.query_batch(queries, workers=1)
    fanned = engine.query_batch(queries, workers=2)
    for a, b in zip(inprocess, fanned):
        assert_result_equal(a, b)
        assert_stats_equal(a.stats, b.stats)


def test_batch_rejects_unknown_mode():
    engine, rng, vocab = build_engine()
    queries = make_queries(rng, vocab, 1)
    with pytest.raises(ValueError):
        engine.query_batch(queries, mode="warp")


def test_indexed_batch_shares_root_traversal():
    """mode="indexed" batches share the MIUR-root traversal per distinct k."""
    from repro import QueryOptions
    from repro.core.indexed_users import RootTraversal

    engine, rng, vocab = build_engine(seed=13, index_users=True)
    queries = make_queries(rng, vocab, 4, ks=(3, 5))
    before_first = engine.io.snapshot()
    engine.query_batch(queries, QueryOptions(mode="indexed"))
    first_io = (engine.io.snapshot() - before_first).total
    cache = engine._shared_topk_cache
    assert set(cache) == {("indexed", 3), ("indexed", 5)}
    assert all(isinstance(entry, RootTraversal) for entry in cache.values())
    assert {key: entry.hits for key, entry in cache.items()} == {
        ("indexed", 3): 2,
        ("indexed", 5): 2,
    }
    # A second identical batch reuses phase 1 entirely (hits double) and
    # pays strictly less real I/O: only the per-query search remains.
    before_second = engine.io.snapshot()
    engine.query_batch(queries, QueryOptions(mode="indexed"))
    second_io = (engine.io.snapshot() - before_second).total
    assert sum(entry.hits for entry in cache.values()) == 8
    traversal_io = sum(
        entry.io_node_visits + entry.io_invfile_blocks for entry in cache.values()
    )
    assert traversal_io > 0
    assert second_io == first_io - traversal_io
    engine.clear_topk_cache()
    assert engine._shared_topk_cache == {}


def test_indexed_batch_stats_match_sequential_per_phase():
    """Indexed stats now carry top-k I/O + per-phase timings, batch == solo."""
    from repro import QueryOptions

    engine, rng, vocab = build_engine(seed=15, index_users=True)
    queries = make_queries(rng, vocab, 3)
    sequential = [
        engine.query(q, QueryOptions(mode="indexed", backend="python"))
        for q in queries
    ]
    batched = engine.query_batch(queries, QueryOptions(mode="indexed"))
    for solo, bat in zip(sequential, batched):
        assert solo.stats.io_total > 0
        assert bat.stats.io_node_visits == solo.stats.io_node_visits
        assert bat.stats.io_invfile_blocks == solo.stats.io_invfile_blocks


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_batch_method_exact_matches_sequential():
    engine, rng, vocab = build_engine(seed=11)
    queries = make_queries(rng, vocab, 3)
    sequential = [
        engine.query(q, method="exact", backend="python") for q in queries
    ]
    batched = engine.query_batch(queries, method="exact", backend="numpy")
    for solo, bat in zip(sequential, batched):
        assert_result_equal(solo, bat)
        assert_stats_equal(solo.stats, bat.stats)
