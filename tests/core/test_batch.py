"""``query_batch``: a batch of N queries == N sequential ``query`` calls.

The contract under test: batching is purely an execution strategy.
Results — location, keyword set, BRSTkNN user set — and every
deterministic *selection-phase* ``QueryStats`` counter (pruning,
combinations scored) must be exactly what sequential cold queries
produce.  Top-k-phase I/O matches the sequential trace too, except
that a mixed-k joint batch reports the one shared ``k_max`` walk it
actually ran (cross-k candidate-pool sharing) — identical for every
query in the batch and equal to the sequential ``k_max`` trace.  Only
wall-clock timings may differ beyond that.
"""

import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.kernels import HAS_NUMPY
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users

BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])


def build_engine(seed=0, n_obj=70, n_users=14, vocab=18, index_users=False):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    dataset = Dataset(objects, users, relevance="LM", alpha=0.5)
    return MaxBRSTkNNEngine(dataset, fanout=4, index_users=index_users), rng, vocab


def make_queries(rng, vocab, count, ks=(3,)):
    queries = []
    for i in range(count):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(vocab), 5)),
                ws=2,
                k=ks[i % len(ks)],
            )
        )
    return queries


def assert_result_equal(a, b):
    assert a.location == b.location
    assert a.keywords == b.keywords
    assert a.brstknn == b.brstknn


def assert_stats_equal(a, b):
    """Deterministic stats counters only — timings legitimately differ."""
    assert_selection_stats_equal(a, b)
    assert a.io_node_visits == b.io_node_visits
    assert a.io_invfile_blocks == b.io_invfile_blocks


def assert_selection_stats_equal(a, b):
    assert a.users_total == b.users_total
    assert a.locations_pruned == b.locations_pruned
    assert a.keyword_combinations_scored == b.keyword_combinations_scored
    assert a.users_pruned == b.users_pruned


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", ["joint", "baseline"])
def test_batch_equals_sequential(backend, mode):
    engine, rng, vocab = build_engine()
    queries = make_queries(rng, vocab, 6, ks=(3, 5))  # mixed k values
    sequential = [engine.query(q, mode=mode, backend="python") for q in queries]
    batched = engine.query_batch(queries, mode=mode, backend=backend)
    assert len(batched) == len(sequential)
    for solo, bat in zip(sequential, batched):
        assert_result_equal(solo, bat)
        assert_selection_stats_equal(solo.stats, bat.stats)
        if mode == "baseline":
            # Baseline phase 1 runs per distinct k: exact sequential trace.
            assert_stats_equal(solo.stats, bat.stats)
    if mode == "joint":
        # Cross-k pool sharing: every query reports the one shared walk,
        # whose I/O is the sequential k_max (= 5 here) traversal's.
        kmax_solo = next(
            s for q, s in zip(queries, sequential) if q.k == 5
        )
        for bat in batched:
            assert bat.stats.io_node_visits == kmax_solo.stats.io_node_visits
            assert (
                bat.stats.io_invfile_blocks == kmax_solo.stats.io_invfile_blocks
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_equals_sequential_indexed(backend):
    engine, rng, vocab = build_engine(index_users=True)
    queries = make_queries(rng, vocab, 3)
    sequential = [
        engine.query(q, mode="indexed", backend="python") for q in queries
    ]
    batched = engine.query_batch(queries, mode="indexed", backend=backend)
    for solo, bat in zip(sequential, batched):
        assert_result_equal(solo, bat)
        assert_stats_equal(solo.stats, bat.stats)


def test_empty_batch():
    engine, _, _ = build_engine()
    assert engine.query_batch([]) == []


def test_duplicate_queries_get_identical_results():
    engine, rng, vocab = build_engine(seed=5)
    query = make_queries(rng, vocab, 1)[0]
    batched = engine.query_batch([query, query, query], backend="python")
    assert len(batched) == 3
    for other in batched[1:]:
        assert_result_equal(batched[0], other)
        assert_stats_equal(batched[0].stats, other.stats)
    # ...and they match a sequential call too.
    solo = engine.query(query, backend="python")
    assert_result_equal(solo, batched[0])


def test_traversal_pool_shared_across_ks_and_batches():
    """Joint batches: ONE tree walk at k_max serves every k, memoized."""
    engine, rng, vocab = build_engine(seed=7)
    queries = make_queries(rng, vocab, 4, ks=(2, 4))
    assert engine.traversal_runs == 0
    engine.query_batch(queries)
    pool = engine._traversal_pool
    assert pool is not None
    assert pool.k == 4  # walked once, at k_max
    assert set(pool.by_k) == {2, 4}
    assert engine.traversal_runs == 1
    assert pool.hits == 4
    hits = {k: entry.hits for k, entry in pool.by_k.items()}
    assert hits == {2: 2, 4: 2}
    engine.query_batch(queries)  # same ks: no new walk, no new derivation
    assert engine._traversal_pool is pool
    assert engine.traversal_runs == 1
    assert {k: e.hits for k, e in pool.by_k.items()} == {2: 4, 4: 4}
    # A smaller new k derives from the existing pool without a walk...
    engine.query_batch(make_queries(rng, vocab, 1, ks=(3,)))
    assert engine.traversal_runs == 1
    assert set(engine._traversal_pool.by_k) == {2, 3, 4}
    # ...while a larger k forces one fresh walk that replaces the pool.
    engine.query_batch(make_queries(rng, vocab, 2, ks=(6, 2)))
    assert engine.traversal_runs == 2
    assert engine._traversal_pool.k == 6
    assert set(engine._traversal_pool.by_k) == {2, 6}
    engine.clear_topk_cache()
    assert engine._traversal_pool is None
    assert engine._shared_topk_cache == {}


def test_warm_pool_plan_and_stats_name_the_walk_actually_used():
    """A smaller-k batch after a bigger-k one reuses the k=5 walk — and
    both the plan and the per-query top-k I/O stats must say so."""
    from repro import QueryOptions

    engine, rng, vocab = build_engine(seed=21)
    big = make_queries(rng, vocab, 2, ks=(5,))
    small = make_queries(rng, vocab, 2, ks=(2,))
    [big_result, _] = engine.query_batch(big, QueryOptions())
    assert engine.plan(QueryOptions(), ks=[5]).shared_traversal_k == 5
    # The engine's pool (walked at 5) serves the k=2 batch: no re-walk,
    # and the plan reports the k=5 walk, not a fictional k=2 one.
    plan = engine.plan(QueryOptions(), ks=[2])
    assert plan.shared_traversal_k == 5
    assert "walk at k=5" in plan.explain()
    runs = engine.traversal_runs
    batched = engine.query_batch(small, QueryOptions())
    assert engine.traversal_runs == runs  # reused, not re-walked
    for result in batched:
        # Top-k I/O stats describe the k=5 walk the thresholds came from.
        assert result.stats.io_node_visits == big_result.stats.io_node_visits
        assert (
            result.stats.io_invfile_blocks == big_result.stats.io_invfile_blocks
        )
    # A fresh engine's k=2 batch still matches sequential exactly.
    fresh, _, _ = build_engine(seed=21)
    cold = fresh.query_batch(small, QueryOptions())
    for warm, ref in zip(batched, cold):
        assert_result_equal(warm, ref)
        assert_selection_stats_equal(warm.stats, ref.stats)


def test_baseline_shared_topk_cache_reused_across_batches():
    engine, rng, vocab = build_engine(seed=7)
    queries = make_queries(rng, vocab, 4, ks=(2, 4))
    engine.query_batch(queries, mode="baseline")
    cache = engine._shared_topk_cache
    assert set(cache) == {("baseline", 2), ("baseline", 4)}
    hits = {key: entry.hits for key, entry in cache.items()}
    engine.query_batch(queries, mode="baseline")  # no phase-1 recompute
    assert set(cache) == {("baseline", 2), ("baseline", 4)}
    for key, entry in cache.items():
        assert entry.hits == hits[key] + 2
    engine.clear_topk_cache()
    assert engine._shared_topk_cache == {}


def test_batch_workers_match_inprocess():
    engine, rng, vocab = build_engine(seed=9)
    queries = make_queries(rng, vocab, 5)
    inprocess = engine.query_batch(queries, workers=1)
    fanned = engine.query_batch(queries, workers=2)
    for a, b in zip(inprocess, fanned):
        assert_result_equal(a, b)
        assert_stats_equal(a.stats, b.stats)


def test_batch_rejects_unknown_mode():
    engine, rng, vocab = build_engine()
    queries = make_queries(rng, vocab, 1)
    with pytest.raises(ValueError):
        engine.query_batch(queries, mode="warp")


def test_indexed_batch_shares_one_kmax_root_traversal():
    """mode="indexed" batches share ONE MIUR-root walk at k_max across
    every k in the batch (cross-k pool sharing, PR 5)."""
    from repro import QueryOptions
    from repro.core.indexed_users import RootTraversal

    engine, rng, vocab = build_engine(seed=13, index_users=True)
    queries = make_queries(rng, vocab, 4, ks=(3, 5))
    assert engine.traversal_runs == 0
    before_first = engine.io.snapshot()
    engine.query_batch(queries, QueryOptions(mode="indexed"))
    first_io = (engine.io.snapshot() - before_first).total
    pool = engine._root_pool
    assert isinstance(pool, RootTraversal)
    assert pool.k == 5  # walked once, at k_max
    assert engine.traversal_runs == 1
    assert pool.hits == 4
    # A second identical batch reuses phase 1 entirely and pays
    # strictly less real I/O: only the per-query searches remain.
    before_second = engine.io.snapshot()
    engine.query_batch(queries, QueryOptions(mode="indexed"))
    second_io = (engine.io.snapshot() - before_second).total
    assert engine.traversal_runs == 1
    assert pool.hits == 8
    traversal_io = pool.io_node_visits + pool.io_invfile_blocks
    assert traversal_io > 0
    assert second_io == first_io - traversal_io
    # A smaller new k derives from the existing pool without a walk...
    engine.query_batch(make_queries(rng, vocab, 1, ks=(2,)), QueryOptions(mode="indexed"))
    assert engine.traversal_runs == 1
    # ...while a larger k forces one fresh walk that replaces the pool.
    engine.query_batch(make_queries(rng, vocab, 2, ks=(7, 3)), QueryOptions(mode="indexed"))
    assert engine.traversal_runs == 2
    assert engine._root_pool.k == 7
    engine.clear_topk_cache()
    assert engine._root_pool is None


def test_indexed_mixed_k_batch_equals_sequential_results():
    """Mixed-k indexed batches: ONE walk, results bitwise-identical to
    cold sequential queries (the node-RSk reformulation at work), and
    search-phase I/O matching the sequential trace exactly — the top-k
    share reports the shared k_max walk, the same stats contract joint
    batches have had since PR 3."""
    from repro import QueryOptions
    from repro.core.indexed_users import compute_root_traversal

    engine, rng, vocab = build_engine(seed=23, index_users=True)
    queries = make_queries(rng, vocab, 6, ks=(2, 4, 5))
    fresh, _, _ = build_engine(seed=23, index_users=True)
    sequential = [
        fresh.query(q, QueryOptions(mode="indexed", backend="python"))
        for q in queries
    ]
    # Cold per-k walk I/O, to split the sequential stats into their
    # walk and search shares.
    walker, _, _ = build_engine(seed=23, index_users=True)
    walk_io = {}
    for k in (2, 4, 5):
        t = compute_root_traversal(
            walker.object_tree, walker.user_tree, walker.dataset, k,
            store=walker.store,
        )
        walk_io[k] = (t.io_node_visits, t.io_invfile_blocks)
    batched = engine.query_batch(queries, QueryOptions(mode="indexed", backend="python"))
    assert engine.traversal_runs == 1
    pool = engine._root_pool
    assert pool.k == 5
    for q, solo, bat in zip(queries, sequential, batched):
        assert_result_equal(solo, bat)
        assert_selection_stats_equal(solo.stats, bat.stats)
        # walk share: batched reports the k_max walk, uniform across
        # the batch; search share: identical MIUR page reads.
        solo_search = (
            solo.stats.io_node_visits - walk_io[q.k][0],
            solo.stats.io_invfile_blocks - walk_io[q.k][1],
        )
        bat_search = (
            bat.stats.io_node_visits - pool.io_node_visits,
            bat.stats.io_invfile_blocks - pool.io_invfile_blocks,
        )
        assert solo_search == bat_search


def test_indexed_batch_stats_match_sequential_per_phase():
    """Indexed stats now carry top-k I/O + per-phase timings, batch == solo."""
    from repro import QueryOptions

    engine, rng, vocab = build_engine(seed=15, index_users=True)
    queries = make_queries(rng, vocab, 3)
    sequential = [
        engine.query(q, QueryOptions(mode="indexed", backend="python"))
        for q in queries
    ]
    batched = engine.query_batch(queries, QueryOptions(mode="indexed"))
    for solo, bat in zip(sequential, batched):
        assert solo.stats.io_total > 0
        assert bat.stats.io_node_visits == solo.stats.io_node_visits
        assert bat.stats.io_invfile_blocks == solo.stats.io_invfile_blocks


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_batch_method_exact_matches_sequential():
    engine, rng, vocab = build_engine(seed=11)
    queries = make_queries(rng, vocab, 3)
    sequential = [
        engine.query(q, method="exact", backend="python") for q in queries
    ]
    batched = engine.query_batch(queries, method="exact", backend="numpy")
    for solo, bat in zip(sequential, batched):
        assert_result_equal(solo, bat)
        assert_stats_equal(solo.stats, bat.stats)
