"""Cross-method and cross-backend equivalence on random datasets.

Two families of guarantees:

* **Across modes** — ``joint``, ``baseline`` and ``indexed`` implement
  one problem definition, so with the exact keyword selector they must
  agree on the optimal cardinality (the baseline is the exhaustive
  oracle; locations/keyword sets may differ only between equal-quality
  ties).
* **Across backends** — ``backend="numpy"`` is a pure acceleration of
  ``backend="python"``: identical location, keyword set, BRSTkNN user
  set, and deterministic stats for every mode and method.
"""

import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.kernels import HAS_NUMPY
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build_case(seed, vocab=16, alpha=0.5, k=4, n_obj=60, n_users=12, measure="LM"):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    dataset = Dataset(objects, users, relevance=measure, alpha=alpha)
    engine = MaxBRSTkNNEngine(dataset, fanout=4, index_users=True)
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=-1, location=Point(5, 5), terms={0: 1}),
        locations=[Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(4)],
        keywords=sorted(rng.sample(range(vocab), min(5, vocab))),
        ws=2,
        k=k,
    )
    return engine, query


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("k", [1, 4])
@pytest.mark.parametrize("alpha", [0.3, 0.7])
def test_modes_agree_on_optimal_cardinality(seed, k, alpha):
    engine, query = build_case(seed, k=k, alpha=alpha)
    results = {
        mode: engine.query(query, method="exact", mode=mode)
        for mode in ("joint", "baseline", "indexed")
    }
    cards = {mode: r.cardinality for mode, r in results.items()}
    assert len(set(cards.values())) == 1, cards
    # joint and indexed run the same Algorithm 3+4; their chosen
    # keyword sets must also win the same number of users when the
    # baseline re-scores them (sanity against degenerate winners).
    assert results["joint"].keywords <= set(query.keywords)
    assert results["indexed"].keywords <= set(query.keywords)


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("vocab", [8, 32])
def test_modes_agree_across_vocab_sizes(seed, vocab):
    engine, query = build_case(seed + 100, vocab=vocab)
    cards = {
        mode: engine.query(query, method="exact", mode=mode).cardinality
        for mode in ("joint", "baseline", "indexed")
    }
    assert len(set(cards.values())) == 1, cards


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
@pytest.mark.parametrize("mode,method", [
    ("joint", "approx"),
    ("joint", "exact"),
    ("indexed", "approx"),
    ("indexed", "exact"),
])
def test_numpy_backend_identical_results(seed, measure, mode, method):
    engine, query = build_case(seed, measure=measure)
    py = engine.query(query, method=method, mode=mode, backend="python")
    np_ = engine.query(query, method=method, mode=mode, backend="numpy")
    assert py.location == np_.location
    assert py.keywords == np_.keywords
    assert py.brstknn == np_.brstknn
    assert py.stats.locations_pruned == np_.stats.locations_pruned
    assert py.stats.keyword_combinations_scored == np_.stats.keyword_combinations_scored
    assert py.stats.users_pruned == np_.stats.users_pruned


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
@pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("k", [1, 3, 8])
def test_numpy_backend_identical_across_k_and_alpha(alpha, k):
    """Parametrized over k and alpha, including the pure-spatial and
    pure-textual corners where scores tie heavily."""
    engine, query = build_case(42, alpha=alpha, k=k)
    py = engine.query(query, method="approx", mode="joint", backend="python")
    np_ = engine.query(query, method="approx", mode="joint", backend="numpy")
    assert (py.location, py.keywords, py.brstknn) == (
        np_.location,
        np_.keywords,
        np_.brstknn,
    )
