"""Vectorized ``_node_rsk``: bitwise identity with the scalar path."""

import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine
from repro.core.bounds import BoundCalculator
from repro.core.indexed_users import _node_rsk, compute_root_traversal
from repro.core.kernels import HAS_NUMPY

from ..conftest import make_random_objects, make_random_users

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy kernels")


def walk_summaries(user_tree):
    """Every node summary of the MIUR-tree (root to leaves)."""
    stack = [user_tree.root]
    while stack:
        node = stack.pop()
        yield node.summary
        children, _ = user_tree.read_children(node, None)
        stack.extend(children)


@pytest.mark.parametrize("seed", range(8))
def test_node_rsk_bitwise_identical_on_random_trees(seed):
    rng = random.Random(seed)
    measure = ["LM", "TF", "KO"][seed % 3]
    dataset = Dataset(
        make_random_objects(50 + 10 * (seed % 3), 18, rng),
        make_random_users(18 + seed, 18, rng),
        relevance=measure,
        alpha=0.3 + 0.2 * (seed % 3),
    )
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
    bounds = BoundCalculator(dataset)
    from repro.core.kernels import CandidatePoolArrays

    for k in (1, 2, 5, 9):
        shared = compute_root_traversal(
            engine.object_tree, engine.user_tree, dataset, k, store=engine.store
        )
        arrays = CandidatePoolArrays(dataset, shared.traversal.all_candidates())
        checked = 0
        for summary in walk_summaries(engine.user_tree):
            scalar = _node_rsk(shared.traversal, bounds, summary, k)
            vectorized = _node_rsk(
                shared.traversal, bounds, summary, k, pool_arrays=arrays
            )
            assert scalar == vectorized  # bitwise, not approx
            checked += 1
        assert checked >= 1


def test_empty_pool_returns_zero():
    rng = random.Random(1)
    dataset = Dataset(
        make_random_objects(20, 10, rng),
        make_random_users(6, 10, rng),
        relevance="LM",
    )
    from repro.core.kernels import CandidatePoolArrays

    arrays = CandidatePoolArrays(dataset, [])
    assert arrays.node_rsk(dataset.super_user, 1) == 0.0


def test_pool_smaller_than_k_matches_scalar():
    rng = random.Random(2)
    dataset = Dataset(
        make_random_objects(25, 10, rng),
        make_random_users(8, 10, rng),
        relevance="LM",
    )
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
    shared = compute_root_traversal(
        engine.object_tree, engine.user_tree, dataset, 2, store=engine.store
    )
    from repro.core.kernels import CandidatePoolArrays

    arrays = CandidatePoolArrays(dataset, shared.traversal.all_candidates())
    big_k = len(shared.traversal.all_candidates()) + 1
    bounds = BoundCalculator(dataset)
    assert _node_rsk(shared.traversal, bounds, dataset.super_user, big_k) == 0.0
    assert arrays.node_rsk(dataset.super_user, big_k) == 0.0
