"""Vectorized ``_node_rsk``: bitwise identity with the scalar path —
plus the PR 5 pool-independence property that unlocks cross-k sharing."""

import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine
from repro.core.bounds import BoundCalculator
from repro.core.indexed_users import _node_rsk, compute_root_traversal
from repro.core.joint_topk import canonical_candidates, derive_rsk_group
from repro.core.kernels import HAS_NUMPY

from ..conftest import make_random_objects, make_random_users


def walk_summaries(user_tree):
    """Every node summary of the MIUR-tree (root to leaves)."""
    stack = [user_tree.root]
    while stack:
        node = stack.pop()
        yield node.summary
        children, _ = user_tree.read_children(node, None)
        stack.extend(children)


def build_engine(seed):
    rng = random.Random(seed)
    measure = ["LM", "TF", "KO"][seed % 3]
    dataset = Dataset(
        make_random_objects(50 + 10 * (seed % 3), 18, rng),
        make_random_users(18 + seed, 18, rng),
        relevance=measure,
        alpha=0.3 + 0.2 * (seed % 3),
    )
    return dataset, MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy kernels")
@pytest.mark.parametrize("seed", range(8))
def test_node_rsk_bitwise_identical_on_random_trees(seed):
    dataset, engine = build_engine(seed)
    bounds = BoundCalculator(dataset)
    from repro.core.kernels import CandidatePoolArrays

    for k in (1, 2, 5, 9):
        shared = compute_root_traversal(
            engine.object_tree, engine.user_tree, dataset, k, store=engine.store
        )
        canonical = shared.canonical_for(k)
        arrays = CandidatePoolArrays(dataset, canonical)
        checked = 0
        for summary in walk_summaries(engine.user_tree):
            scalar = _node_rsk(canonical, bounds, summary, k)
            vectorized = _node_rsk(
                canonical, bounds, summary, k, pool_arrays=arrays
            )
            assert scalar == vectorized  # bitwise, not approx
            checked += 1
        assert checked >= 1


@pytest.mark.parametrize("seed", range(6))
def test_node_rsk_pool_independent_under_kmax_walk(seed):
    """The PR 5 keystone: ``RSk(node)`` derived from a shared ``k_max``
    walk is bitwise-equal to the dedicated ``k``-walk's value, for every
    node and every smaller k — so indexed cross-k sharing (and sharded
    indexed execution) cannot change a single pruning decision."""
    dataset, engine = build_engine(seed)
    bounds = BoundCalculator(dataset)
    k_max = 7
    shared = compute_root_traversal(
        engine.object_tree, engine.user_tree, dataset, k_max, store=engine.store
    )
    for k in (1, 2, 4, k_max):
        dedicated = compute_root_traversal(
            engine.object_tree, engine.user_tree, dataset, k, store=engine.store
        )
        # Group threshold derives identically...
        assert shared.rsk_group_for(k) == dedicated.traversal.rsk_group
        # ...and the canonical candidate sets are the same objects with
        # the same bounds, in the same total order.
        shared_pool = shared.canonical_for(k)
        dedicated_pool = canonical_candidates(
            dedicated.traversal, dedicated.traversal.rsk_group
        )
        assert [c.obj.item_id for c in shared_pool] == [
            c.obj.item_id for c in dedicated_pool
        ]
        assert [c.lower for c in shared_pool] == [c.lower for c in dedicated_pool]
        checked = 0
        for summary in walk_summaries(engine.user_tree):
            assert _node_rsk(shared_pool, bounds, summary, k) == _node_rsk(
                dedicated_pool, bounds, summary, k
            )
            checked += 1
        assert checked >= 1


@pytest.mark.parametrize("seed", range(4))
def test_derive_rsk_group_matches_dedicated_walks(seed):
    dataset, engine = build_engine(seed)
    k_max = 8
    shared = compute_root_traversal(
        engine.object_tree, engine.user_tree, dataset, k_max, store=engine.store
    )
    for k in range(1, k_max + 1):
        dedicated = compute_root_traversal(
            engine.object_tree, engine.user_tree, dataset, k, store=engine.store
        )
        assert (
            derive_rsk_group(shared.traversal, k_max, k)
            == dedicated.traversal.rsk_group
        )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy kernels")
def test_empty_pool_returns_zero():
    rng = random.Random(1)
    dataset = Dataset(
        make_random_objects(20, 10, rng),
        make_random_users(6, 10, rng),
        relevance="LM",
    )
    from repro.core.kernels import CandidatePoolArrays

    arrays = CandidatePoolArrays(dataset, [])
    assert arrays.node_rsk(dataset.super_user, 1) == 0.0


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy kernels")
def test_pool_smaller_than_k_matches_scalar():
    rng = random.Random(2)
    dataset = Dataset(
        make_random_objects(25, 10, rng),
        make_random_users(8, 10, rng),
        relevance="LM",
    )
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
    shared = compute_root_traversal(
        engine.object_tree, engine.user_tree, dataset, 2, store=engine.store
    )
    from repro.core.kernels import CandidatePoolArrays

    canonical = shared.canonical_for(2)
    arrays = CandidatePoolArrays(dataset, canonical)
    big_k = len(canonical) + 1
    bounds = BoundCalculator(dataset)
    assert _node_rsk(canonical, bounds, dataset.super_user, big_k) == 0.0
    assert arrays.node_rsk(dataset.super_user, big_k) == 0.0
