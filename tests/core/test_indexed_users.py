"""Tests for the MIUR-tree query mode (Section 7)."""

import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.indexed_users import indexed_users_maxbrstknn
from repro.index.irtree import MIRTree
from repro.index.miurtree import MIURTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point
from repro.storage.iostats import IOCounter
from repro.storage.pager import PageStore

from ..conftest import make_random_objects, make_random_users


def build(seed, n_obj=80, n_users=40, vocab=14, n_locs=5):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance="LM", alpha=0.5)
    obj_tree = MIRTree(objects, ds.relevance, fanout=4)
    user_tree = MIURTree(users, ds.relevance, fanout=4)
    locations = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n_locs)]
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=-1, location=Point(5, 5), terms={}),
        locations=locations,
        keywords=sorted(rng.sample(range(vocab), 6)),
        ws=2,
        k=5,
    )
    return ds, obj_tree, user_tree, query


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_cardinality_matches_flat_mode(self, seed):
        ds, obj_tree, user_tree, query = build(seed)
        engine = MaxBRSTkNNEngine(ds)
        flat = engine.query(query, method="exact", mode="joint")
        indexed = indexed_users_maxbrstknn(
            obj_tree, user_tree, ds, query, method="exact"
        )
        assert indexed.cardinality == flat.cardinality

    @pytest.mark.parametrize("seed", range(3))
    def test_approx_mode_runs_and_is_bounded(self, seed):
        ds, obj_tree, user_tree, query = build(seed)
        exact = indexed_users_maxbrstknn(obj_tree, user_tree, ds, query, method="exact")
        approx = indexed_users_maxbrstknn(
            obj_tree, user_tree, ds, query, method="approx"
        )
        assert approx.cardinality <= exact.cardinality

    def test_unknown_method_rejected(self):
        ds, obj_tree, user_tree, query = build(9)
        with pytest.raises(ValueError):
            indexed_users_maxbrstknn(obj_tree, user_tree, ds, query, method="nope")


class TestPruning:
    def test_users_pruned_metric_consistent(self):
        ds, obj_tree, user_tree, query = build(11, n_users=80)
        res = indexed_users_maxbrstknn(obj_tree, user_tree, ds, query, method="approx")
        assert res.stats.users_total == 80
        assert 0 <= res.stats.users_pruned <= 80

    def test_far_locations_prune_everything(self):
        """Spatial-dominant scoring: a remote location admits nobody."""
        ds, obj_tree, user_tree, query = build(12)
        spatial_ds = ds.with_alpha(1.0)
        obj_tree = MIRTree(spatial_ds.objects, spatial_ds.relevance, fanout=4)
        user_tree = MIURTree(spatial_ds.users, spatial_ds.relevance, fanout=4)
        query.locations = [Point(1e7, 1e7)]
        res = indexed_users_maxbrstknn(
            obj_tree, user_tree, spatial_ds, query, method="approx"
        )
        assert res.cardinality == 0
        # the far location admits no user nodes, so no user is resolved
        assert res.stats.users_pruned == res.stats.users_total

    def test_io_charged(self):
        ds, obj_tree, user_tree, query = build(13)
        counter = IOCounter()
        store = PageStore(counter=counter)
        indexed_users_maxbrstknn(
            obj_tree, user_tree, ds, query, method="approx", store=store
        )
        assert counter.total > 0
