"""Tests for query/result value types."""

import pytest

from repro.core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats
from repro.model.objects import STObject
from repro.spatial.geometry import Point


def ox():
    return STObject(item_id=-1, location=Point(0, 0), terms={})


class TestQueryValidation:
    def test_requires_locations(self):
        with pytest.raises(ValueError):
            MaxBRSTkNNQuery(ox=ox(), locations=[], keywords=[1], ws=1, k=1)

    def test_rejects_negative_ws(self):
        with pytest.raises(ValueError):
            MaxBRSTkNNQuery(ox=ox(), locations=[Point(0, 0)], keywords=[1], ws=-1, k=1)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            MaxBRSTkNNQuery(ox=ox(), locations=[Point(0, 0)], keywords=[1], ws=1, k=0)

    def test_clamps_ws_to_pool(self):
        q = MaxBRSTkNNQuery(
            ox=ox(), locations=[Point(0, 0)], keywords=[1, 2], ws=10, k=1
        )
        assert q.ws == 2

    def test_deduplicates_keywords(self):
        q = MaxBRSTkNNQuery(
            ox=ox(), locations=[Point(0, 0)], keywords=[3, 1, 3, 1], ws=1, k=1
        )
        assert q.keywords == [3, 1]


class TestResult:
    def test_cardinality_and_summary(self):
        r = MaxBRSTkNNResult(
            location=Point(1.0, 2.0),
            keywords=frozenset({4, 2}),
            brstknn=frozenset({10, 11, 12}),
        )
        assert r.cardinality == 3
        s = r.summary()
        assert "|BRSTkNN|=3" in s
        assert "[2, 4]" in s

    def test_summary_without_location(self):
        r = MaxBRSTkNNResult(location=None, keywords=frozenset(), brstknn=frozenset())
        assert "<none>" in r.summary()


class TestQueryStats:
    def test_io_total(self):
        s = QueryStats(io_node_visits=3, io_invfile_blocks=4)
        assert s.io_total == 7

    def test_users_pruned_pct(self):
        s = QueryStats(users_pruned=25, users_total=200)
        assert s.users_pruned_pct == pytest.approx(12.5)

    def test_users_pruned_pct_empty(self):
        assert QueryStats().users_pruned_pct == 0.0
