"""Deprecation shim: every legacy string-kwarg call form still works.

Contract (ISSUE 2 satellite): each legacy form returns results
identical to the typed-options call and emits *exactly one*
DeprecationWarning per call.
"""

import random
import warnings

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, MaxBRSTkNNQuery, QueryOptions
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(17)
    dataset = Dataset(
        make_random_objects(60, 16, rng),
        make_random_users(12, 16, rng),
        relevance="LM",
        alpha=0.5,
    )
    engine = MaxBRSTkNNEngine(
        dataset, EngineConfig(fanout=4, index_users=True)
    )
    queries = []
    for i in range(3):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(16), 5)),
                ws=2,
                k=3,
            )
        )
    return engine, queries


def call_and_capture(fn, *args, **kwargs):
    """Run fn and return (result, list of DeprecationWarnings raised)."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    return result, [w for w in record if issubclass(w.category, DeprecationWarning)]


def assert_result_equal(a, b):
    assert a.location == b.location
    assert a.keywords == b.keywords
    assert a.brstknn == b.brstknn


#: Legacy engine.query call forms -> the equivalent QueryOptions.
QUERY_FORMS = [
    (dict(method="exact"), QueryOptions(method="exact")),
    (dict(mode="baseline"), QueryOptions(mode="baseline")),
    (dict(mode="indexed"), QueryOptions(mode="indexed")),
    (dict(backend="python"), QueryOptions(backend="python")),
    (
        dict(method="exact", mode="joint", backend="auto"),
        QueryOptions(method="exact", mode="joint", backend="auto"),
    ),
]


class TestQueryShim:
    @pytest.mark.parametrize("legacy, options", QUERY_FORMS)
    def test_legacy_kwargs_warn_once_and_match(self, setup, legacy, options):
        engine, queries = setup
        query = queries[0]
        reference = engine.query(query, options)
        result, deprecations = call_and_capture(engine.query, query, **legacy)
        assert len(deprecations) == 1, [str(w.message) for w in deprecations]
        assert "QueryOptions" in str(deprecations[0].message)
        assert_result_equal(reference, result)

    def test_legacy_positional_method_string(self, setup):
        engine, queries = setup
        reference = engine.query(queries[0], QueryOptions(method="exact"))
        result, deprecations = call_and_capture(engine.query, queries[0], "exact")
        assert len(deprecations) == 1
        assert_result_equal(reference, result)

    def test_typed_options_do_not_warn(self, setup):
        engine, queries = setup
        _, deprecations = call_and_capture(
            engine.query, queries[0], QueryOptions(method="exact")
        )
        assert deprecations == []

    def test_no_kwargs_do_not_warn(self, setup):
        engine, queries = setup
        _, deprecations = call_and_capture(engine.query, queries[0])
        assert deprecations == []

    def test_options_plus_legacy_is_an_error(self, setup):
        engine, queries = setup
        with pytest.raises(TypeError):
            engine.query(queries[0], QueryOptions(), backend="python")


#: Legacy query_batch call forms -> the equivalent QueryOptions.
BATCH_FORMS = [
    (dict(method="exact"), QueryOptions(method="exact")),
    (dict(mode="baseline"), QueryOptions(mode="baseline")),
    (dict(mode="indexed"), QueryOptions(mode="indexed")),
    (dict(backend="python"), QueryOptions(backend="python")),
    (dict(workers=2), QueryOptions(workers=2)),
    (
        dict(method="approx", backend="auto", workers=2),
        QueryOptions(method="approx", backend="auto", workers=2),
    ),
]


class TestQueryBatchShim:
    @pytest.mark.parametrize("legacy, options", BATCH_FORMS)
    def test_legacy_kwargs_warn_once_and_match(self, setup, legacy, options):
        engine, queries = setup
        engine.clear_topk_cache()
        reference = engine.query_batch(queries, options)
        engine.clear_topk_cache()
        results, deprecations = call_and_capture(
            engine.query_batch, queries, **legacy
        )
        assert len(deprecations) == 1, [str(w.message) for w in deprecations]
        for ref, res in zip(reference, results):
            assert_result_equal(ref, res)

    def test_typed_options_do_not_warn(self, setup):
        engine, queries = setup
        _, deprecations = call_and_capture(
            engine.query_batch, queries, QueryOptions(backend="python")
        )
        assert deprecations == []

    def test_legacy_workers_zero_still_works(self, setup):
        """PR-1 treated workers=0 as in-process; the shim keeps that."""
        engine, queries = setup
        engine.clear_topk_cache()
        reference = engine.query_batch(queries, QueryOptions(workers=1))
        engine.clear_topk_cache()
        results, deprecations = call_and_capture(
            engine.query_batch, queries, workers=0
        )
        assert len(deprecations) == 1
        for ref, res in zip(reference, results):
            assert_result_equal(ref, res)

    def test_warning_points_at_the_call_site(self, setup):
        """stacklevel must attribute the warning to this test file."""
        engine, queries = setup
        _, deprecations = call_and_capture(engine.query, queries[0], mode="joint")
        assert deprecations[0].filename == __file__
        _, deprecations = call_and_capture(
            engine.query_batch, queries, backend="python"
        )
        assert deprecations[0].filename == __file__
