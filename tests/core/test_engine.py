"""Tests for the engine facade and mode/method agreement."""

import pytest

from repro import MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.query import QueryStats


def make_query(workload, ws=2, k=5):
    return MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=list(workload.locations),
        keywords=list(workload.candidate_keywords),
        ws=ws,
        k=k,
    )


class TestEngineModes:
    def test_all_modes_agree_on_cardinality(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds, index_users=True)
        q = make_query(workload)
        results = {
            mode: engine.query(q, method="exact", mode=mode)
            for mode in ("baseline", "joint", "indexed")
        }
        cards = {m: r.cardinality for m, r in results.items()}
        assert cards["baseline"] == cards["joint"] == cards["indexed"], cards

    def test_approx_close_to_exact(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds)
        q = make_query(workload)
        exact = engine.query(q, method="exact", mode="joint")
        approx = engine.query(q, method="approx", mode="joint")
        assert approx.cardinality <= exact.cardinality
        if exact.cardinality:
            assert approx.cardinality / exact.cardinality >= 0.6

    def test_indexed_mode_requires_user_tree(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds)
        with pytest.raises(ValueError):
            engine.query(make_query(workload), mode="indexed")

    def test_unknown_mode_rejected(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds)
        with pytest.raises(ValueError):
            engine.query(make_query(workload), mode="turbo")

    def test_stats_populated(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds)
        res = engine.query(make_query(workload), method="approx", mode="joint")
        assert isinstance(res.stats, QueryStats)
        assert res.stats.topk_time_s > 0
        assert res.stats.io_total > 0
        assert res.stats.users_total == len(ds.users)

    def test_indexed_mode_prunes_users(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds, index_users=True)
        res = engine.query(make_query(workload), method="approx", mode="indexed")
        assert 0 <= res.stats.users_pruned <= len(ds.users)
        assert res.stats.users_pruned_pct == pytest.approx(
            100.0 * res.stats.users_pruned / len(ds.users)
        )

    def test_reset_io(self, small_flickr):
        ds, workload = small_flickr
        engine = MaxBRSTkNNEngine(ds)
        engine.topk_joint(3)
        assert engine.io.total > 0
        engine.reset_io()
        assert engine.io.total == 0


class TestTopKEntryPoints:
    def test_joint_equals_baseline_thresholds(self, small_flickr):
        ds, _ = small_flickr
        engine = MaxBRSTkNNEngine(ds)
        joint = engine.topk_joint(5)
        base = engine.topk_baseline(5)
        for uid in joint:
            assert joint[uid].kth_score == pytest.approx(
                base[uid].kth_score, abs=1e-9
            )

    def test_buffered_engine_cheaper_io(self, small_flickr):
        ds, _ = small_flickr
        cold = MaxBRSTkNNEngine(ds)
        warm = MaxBRSTkNNEngine(ds, buffer_pages=10_000)
        cold.topk_baseline(5)
        warm.topk_baseline(5)
        assert warm.io.total < cold.io.total
