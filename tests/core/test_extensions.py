"""Tests for the ℓ-best and collective-placement extensions."""

import random

import pytest

from repro import Dataset
from repro.core.extensions import Placement, collective_placement, top_placements
from repro.core.joint_topk import joint_topk, joint_traversal
from repro.core.query import MaxBRSTkNNQuery
from repro.index.irtree import MIRTree
from repro.model.objects import STObject
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build(seed, n_obj=80, n_users=20, vocab=14, n_locs=6, k=5):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance="LM", alpha=0.5)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    trav = joint_traversal(tree, ds, k)
    topk = joint_topk(tree, ds, k)
    rsk = {uid: r.kth_score for uid, r in topk.items()}
    locations = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n_locs)]
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=-1, location=Point(5, 5), terms={}),
        locations=locations,
        keywords=sorted(rng.sample(range(vocab), 6)),
        ws=2,
        k=k,
    )
    return ds, query, rsk, trav.rsk_group


class TestTopPlacements:
    @pytest.mark.parametrize("seed", range(3))
    def test_sorted_and_bounded(self, seed):
        ds, query, rsk, rsk_group = build(seed)
        placements = top_placements(ds, query, rsk, limit=3, rsk_group=rsk_group)
        assert len(placements) <= 3
        cards = [p.cardinality for p in placements]
        assert cards == sorted(cards, reverse=True)

    def test_first_placement_is_the_query_optimum(self):
        from repro.core.candidate_selection import select_candidate

        ds, query, rsk, rsk_group = build(7)
        best = select_candidate(ds, query, rsk, rsk_group, method="exact")
        placements = top_placements(
            ds, query, rsk, limit=1, rsk_group=rsk_group, method="exact"
        )
        assert placements[0].cardinality == best.cardinality

    def test_distinct_locations(self):
        ds, query, rsk, rsk_group = build(8)
        placements = top_placements(ds, query, rsk, limit=4, rsk_group=rsk_group)
        locs = [(p.location.x, p.location.y) for p in placements]
        assert len(locs) == len(set(locs))

    def test_limit_zero(self):
        ds, query, rsk, rsk_group = build(9)
        assert top_placements(ds, query, rsk, limit=0) == []

    def test_unknown_method(self):
        ds, query, rsk, _ = build(10)
        with pytest.raises(ValueError):
            top_placements(ds, query, rsk, method="magic")

    def test_placements_report_real_winners(self):
        from repro.core.keyword_selection import compute_brstknn

        ds, query, rsk, rsk_group = build(11)
        for p in top_placements(ds, query, rsk, limit=3, rsk_group=rsk_group):
            actual = compute_brstknn(
                ds, query.ox, p.location, p.keywords, ds.users, rsk
            )
            assert p.brstknn <= actual


class TestCollectivePlacement:
    @pytest.mark.parametrize("seed", range(3))
    def test_coverage_monotone_in_m(self, seed):
        ds, query, rsk, rsk_group = build(seed, n_locs=8)
        _, cov1 = collective_placement(ds, query, rsk, 1, rsk_group)
        _, cov3 = collective_placement(ds, query, rsk, 3, rsk_group)
        assert cov1 <= cov3

    def test_covered_union_matches_placements(self):
        ds, query, rsk, rsk_group = build(13, n_locs=8)
        placements, covered = collective_placement(ds, query, rsk, 3, rsk_group)
        union = set()
        for p in placements:
            union |= p.brstknn
        assert union == set(covered)

    def test_locations_not_reused_by_default(self):
        ds, query, rsk, rsk_group = build(14, n_locs=8)
        placements, _ = collective_placement(ds, query, rsk, 4, rsk_group)
        locs = [(p.location.x, p.location.y) for p in placements]
        assert len(locs) == len(set(locs))

    def test_stops_when_everyone_covered(self):
        ds, query, rsk, rsk_group = build(15, n_locs=8)
        placements, covered = collective_placement(
            ds, query, rsk, len(query.locations), rsk_group
        )
        if len(covered) == len(ds.users):
            assert len(placements) <= len(query.locations)

    def test_zero_objects(self):
        ds, query, rsk, rsk_group = build(16)
        placements, covered = collective_placement(ds, query, rsk, 0, rsk_group)
        assert placements == [] and covered == frozenset()

    def test_greedy_first_step_equals_single_optimum(self):
        ds, query, rsk, rsk_group = build(17)
        single = top_placements(ds, query, rsk, limit=1, method="approx")
        placements, _ = collective_placement(ds, query, rsk, 1, method="approx")
        if single and placements:
            assert placements[0].cardinality == single[0].cardinality
