"""Query planner: options x capabilities -> executable QueryPlan."""

import pytest

from repro import Backend, EngineConfig, MaxBRSTkNNEngine, Method, Mode, QueryOptions
from repro.core.kernels import HAS_NUMPY
from repro.core.planner import EngineCapabilities, plan_batch, plan_query

CAPS = EngineCapabilities(
    has_user_tree=True, numpy_available=HAS_NUMPY, fork_available=True
)
CAPS_NO_TREE = EngineCapabilities(
    has_user_tree=False, numpy_available=HAS_NUMPY, fork_available=True
)


class TestPlanQuery:
    def test_resolves_auto_backend(self):
        plan = plan_query(QueryOptions(backend="auto"), CAPS)
        assert plan.backend == ("numpy" if HAS_NUMPY else "python")

    def test_single_query_never_shares_or_fans_out(self):
        plan = plan_query(QueryOptions(workers=8), CAPS, k=5)
        assert plan.batch_size == 1
        assert plan.shared_topk is False
        assert plan.shared_traversal is False
        assert plan.workers == 1

    def test_indexed_requires_user_tree(self):
        with pytest.raises(ValueError, match="index_users"):
            plan_query(QueryOptions(mode="indexed"), CAPS_NO_TREE)
        plan = plan_query(QueryOptions(mode="indexed"), CAPS)
        assert plan.mode is Mode.INDEXED

    @pytest.mark.skipif(HAS_NUMPY, reason="needs numpy to be absent")
    def test_numpy_backend_without_numpy_raises(self):  # pragma: no cover
        with pytest.raises(RuntimeError):
            plan_query(QueryOptions(backend="numpy"), CAPS)


class TestPlanBatch:
    def test_shares_topk_per_distinct_k(self):
        plan = plan_batch(QueryOptions(), CAPS, ks=[3, 5, 3, 5, 3])
        assert plan.batch_size == 5
        assert plan.distinct_ks == (3, 5)
        assert plan.shared_topk is True
        assert plan.shared_traversal is False

    def test_joint_batch_pools_across_k(self):
        """Joint batches share ONE traversal at k_max across all ks."""
        plan = plan_batch(QueryOptions(), CAPS, ks=[1, 5, 10, 5])
        assert plan.shared_traversal_k == 10
        # Baseline batches do not pool across k (no group traversal)...
        assert (
            plan_batch(QueryOptions(mode="baseline"), CAPS, ks=[1, 5])
            .shared_traversal_k
            is None
        )
        # ...but indexed batches do, since the node-RSk reformulation
        # made every per-k derivation pool-independent (PR 5).
        assert (
            plan_batch(QueryOptions(mode="indexed"), CAPS, ks=[1, 5])
            .shared_traversal_k
            == 5
        )
        # Single queries stay cold: no pool.
        assert plan_query(QueryOptions(), CAPS, k=7).shared_traversal_k is None

    def test_indexed_batch_shares_root_traversal(self):
        plan = plan_batch(QueryOptions(mode="indexed"), CAPS, ks=[3, 3, 7])
        assert plan.shared_traversal is True
        assert plan.shared_topk is False
        assert plan.distinct_ks == (3, 7)
        assert plan.shared_traversal_k == 7

    def test_indexed_batch_reuses_a_larger_existing_pool(self):
        from dataclasses import replace

        warm = replace(CAPS, root_pool_k=9)
        plan = plan_batch(QueryOptions(mode="indexed"), warm, ks=[3, 7])
        assert plan.shared_traversal_k == 9  # names the walk actually used

    def test_indexed_batch_keeps_selection_in_process(self):
        plan = plan_batch(QueryOptions(mode="indexed", workers=4), CAPS, ks=[3, 3])
        assert plan.workers == 1

    def test_workers_fan_out_when_possible(self):
        plan = plan_batch(QueryOptions(workers=4), CAPS, ks=[3, 3])
        assert plan.workers == 4

    def test_no_fan_out_without_fork(self):
        caps = EngineCapabilities(
            has_user_tree=False, numpy_available=HAS_NUMPY, fork_available=False
        )
        plan = plan_batch(QueryOptions(workers=4), caps, ks=[3, 3])
        assert plan.workers == 1

    def test_no_fan_out_for_single_query_batch(self):
        plan = plan_batch(QueryOptions(workers=4), CAPS, ks=[3])
        assert plan.workers == 1


class TestExplain:
    def test_single_query_explain(self):
        text = plan_query(QueryOptions(backend="python"), CAPS, k=7).explain()
        assert "single query" in text
        assert "backend=python" in text
        assert "cold per query" in text

    def test_batch_explain_mentions_sharing_and_fanout(self):
        text = plan_batch(
            QueryOptions(backend="python", workers=3), CAPS, ks=[3, 5, 3]
        ).explain()
        assert "batch of 3" in text
        assert "k=3,5" in text
        assert "fork pool x3" in text

    def test_joint_batch_explain_reports_cross_k_reuse(self):
        text = plan_batch(
            QueryOptions(backend="python"), CAPS, ks=[1, 5, 10]
        ).explain()
        assert "one MIR-tree walk at k=10" in text
        assert "reused for k=1,5,10" in text

    def test_indexed_batch_explain(self):
        text = plan_batch(
            QueryOptions(mode="indexed"), CAPS, ks=[4, 4]
        ).explain()
        assert "MIUR-root joint traversal" in text
        assert "in-process per query" in text


class TestObservedPlanning:
    """FlushHistory-driven decisions: observed costs vs static fallback."""

    @staticmethod
    def seasoned_history(signature, stage="select", per_item_ms=0.1, items=4,
                         flushes=3):
        from repro.core.history import FlushHistory
        from repro.core.pipeline import FlushReport, StageStats

        history = FlushHistory()
        for _ in range(flushes):
            history.record(signature, FlushReport(
                mode=signature.mode,
                batch_size=items,
                stages=[StageStats(
                    stage=stage, items=items,
                    time_s=per_item_ms * items / 1000.0,
                )],
            ))
        return history

    @staticmethod
    def local_signature(mode="joint"):
        from repro.core.history import FlushSignature

        return FlushSignature(mode=mode, backend="python", scatter_width=1)

    def test_sub_ms_selection_pulls_fanout_in_process(self):
        history = self.seasoned_history(self.local_signature(), per_item_ms=0.1)
        plan = plan_batch(
            QueryOptions(backend="python", workers=4), CAPS, ks=[3, 3],
            history=history,
        )
        assert plan.workers == 1
        assert plan.select_inprocess is True
        (decision,) = plan.decisions
        assert decision.source == "observed"
        assert decision.name == "select-fanout"
        assert decision.choice == "in-process"
        text = plan.explain()
        assert "observed: select-fanout -> in-process" in text
        assert "phase 2 (candidate selection): in-process" in text

    def test_heavy_selection_keeps_the_fork_pool(self):
        history = self.seasoned_history(self.local_signature(), per_item_ms=5.0)
        plan = plan_batch(
            QueryOptions(backend="python", workers=4), CAPS, ks=[3, 3],
            history=history,
        )
        assert plan.workers == 4
        assert plan.select_inprocess is False
        (decision,) = plan.decisions
        assert decision.source == "observed"
        assert "fork pool x4" in decision.choice

    def test_cold_engine_falls_back_to_static(self):
        from repro.core.history import FlushHistory

        plan = plan_batch(
            QueryOptions(backend="python", workers=4), CAPS, ks=[3, 3],
            history=FlushHistory(),
        )
        assert plan.workers == 4  # static plan untouched
        (decision,) = plan.decisions
        assert decision.source == "static"
        assert "cold engine" in decision.rationale
        assert "static: select-fanout" in plan.explain()

    def test_unseasoned_history_stays_static(self):
        history = self.seasoned_history(
            self.local_signature(), per_item_ms=0.1, flushes=2
        )
        plan = plan_batch(
            QueryOptions(backend="python", workers=4), CAPS, ks=[3, 3],
            history=history,
        )
        assert plan.workers == 4
        (decision,) = plan.decisions
        assert decision.source == "static"
        assert "need 3" in decision.rationale

    def test_no_history_no_decisions(self):
        plan = plan_batch(QueryOptions(backend="python"), CAPS, ks=[3, 3])
        assert plan.decisions == ()

    def test_indexed_local_search_reports_observed_but_stays_in_process(self):
        history = self.seasoned_history(
            self.local_signature(mode="indexed"),
            stage="indexed-search", per_item_ms=9.0,
        )
        plan = plan_batch(
            QueryOptions(mode="indexed", backend="python"), CAPS, ks=[3, 3],
            history=history,
        )
        (decision,) = plan.decisions
        assert decision.source == "observed"
        assert decision.name == "search-fanout"
        assert decision.choice == "in-process"

    @staticmethod
    def sharded_caps(search_workers=2):
        from dataclasses import replace

        return replace(
            CAPS,
            num_shards=2,
            partitioner="hash",
            shard_users=(6, 6),
            search_workers=search_workers,
        )

    @staticmethod
    def sharded_signature():
        from repro.core.history import FlushSignature

        return FlushSignature(mode="joint", backend="python", scatter_width=2)

    def test_sharded_sub_ms_search_goes_in_process(self):
        history = self.seasoned_history(
            self.sharded_signature(), stage="search", per_item_ms=0.2
        )
        plan = plan_batch(
            QueryOptions(backend="python"), self.sharded_caps(), ks=[3, 3],
            history=history,
        )
        assert plan.shard.search_inprocess is True
        by_name = {d.name: d for d in plan.decisions}
        assert by_name["search-fanout"].source == "observed"
        assert by_name["search-fanout"].choice == "in-process"
        # No shortlist timings recorded yet: the scatter stays static.
        assert by_name["scatter-dispatch"].source == "static"
        assert plan.shard.scatter_inprocess is False
        assert "per-query searches run in-process" in plan.explain()

    def test_sharded_low_queue_depth_drops_the_scatter_dispatch(self):
        from repro.core.history import FlushHistory
        from repro.core.pipeline import FlushReport, StageStats

        history = FlushHistory()
        for _ in range(3):
            history.record(self.sharded_signature(), FlushReport(
                mode="joint",
                batch_size=1,
                stages=[StageStats(stage="shortlist", items=1, time_s=0.0001)],
            ))
        plan = plan_batch(
            QueryOptions(backend="python"), self.sharded_caps(search_workers=0),
            ks=[3], history=history,
        )
        assert plan.shard.scatter_inprocess is True
        (decision,) = plan.decisions
        assert decision.name == "scatter-dispatch"
        assert decision.source == "observed"
        assert "dispatch in-process (observed low queue depth)" in plan.explain()

    def test_sharded_deep_queue_keeps_the_shard_pools(self):
        history = self.seasoned_history(
            self.sharded_signature(), stage="shortlist", per_item_ms=0.2,
            items=8,
        )
        plan = plan_batch(
            QueryOptions(backend="python"), self.sharded_caps(search_workers=0),
            ks=[3] * 8, history=history,
        )
        assert plan.shard.scatter_inprocess is False
        (decision,) = plan.decisions
        assert decision.source == "observed"
        assert "shard pools" in decision.choice

    def test_engine_records_history_and_plans_observed(self, tiny_dataset):
        """End to end: flushes season the engine's own history."""
        import random

        from repro import MaxBRSTkNNQuery
        from repro.model.objects import STObject
        from repro.spatial.geometry import Point

        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        rng = random.Random(5)
        queries = [
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[Point(rng.uniform(0, 10), rng.uniform(0, 10))],
                keywords=sorted(rng.sample(range(16), 4)),
                ws=1,
                k=3,
            )
            for i in range(4)
        ]
        options = QueryOptions(backend="python")
        cold = engine.plan(options, ks=[q.k for q in queries])
        assert all(d.source == "static" for d in cold.decisions)
        for _ in range(3):
            engine.query_batch(queries, options)
        assert len(engine.flush_history) >= 3
        warm = engine.plan(options, ks=[q.k for q in queries])
        assert any(d.source == "observed" for d in warm.decisions)
        assert "observed:" in warm.explain()


class TestEnginePlan:
    def test_engine_plan_wrapper(self, tiny_dataset):
        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        single = engine.plan(QueryOptions(backend="python"))
        assert single.batch_size == 1
        batch = engine.plan(QueryOptions(backend="python"), ks=[2, 2, 4])
        assert batch.batch_size == 3
        assert batch.distinct_ks == (2, 4)

    def test_engine_capabilities(self, tiny_dataset):
        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        caps = engine.capabilities()
        assert caps.has_user_tree is False
        assert caps.num_users == len(tiny_dataset.users)
        indexed = MaxBRSTkNNEngine(
            tiny_dataset, EngineConfig(fanout=4, index_users=True)
        )
        assert indexed.capabilities().has_user_tree is True

    def test_default_plan_uses_default_options(self, tiny_dataset):
        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        plan = engine.plan()
        assert plan.method is Method.APPROX
        assert plan.backend == Backend.AUTO.resolve()
