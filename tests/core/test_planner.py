"""Query planner: options x capabilities -> executable QueryPlan."""

import pytest

from repro import Backend, EngineConfig, MaxBRSTkNNEngine, Method, Mode, QueryOptions
from repro.core.kernels import HAS_NUMPY
from repro.core.planner import EngineCapabilities, plan_batch, plan_query

CAPS = EngineCapabilities(
    has_user_tree=True, numpy_available=HAS_NUMPY, fork_available=True
)
CAPS_NO_TREE = EngineCapabilities(
    has_user_tree=False, numpy_available=HAS_NUMPY, fork_available=True
)


class TestPlanQuery:
    def test_resolves_auto_backend(self):
        plan = plan_query(QueryOptions(backend="auto"), CAPS)
        assert plan.backend == ("numpy" if HAS_NUMPY else "python")

    def test_single_query_never_shares_or_fans_out(self):
        plan = plan_query(QueryOptions(workers=8), CAPS, k=5)
        assert plan.batch_size == 1
        assert plan.shared_topk is False
        assert plan.shared_traversal is False
        assert plan.workers == 1

    def test_indexed_requires_user_tree(self):
        with pytest.raises(ValueError, match="index_users"):
            plan_query(QueryOptions(mode="indexed"), CAPS_NO_TREE)
        plan = plan_query(QueryOptions(mode="indexed"), CAPS)
        assert plan.mode is Mode.INDEXED

    @pytest.mark.skipif(HAS_NUMPY, reason="needs numpy to be absent")
    def test_numpy_backend_without_numpy_raises(self):  # pragma: no cover
        with pytest.raises(RuntimeError):
            plan_query(QueryOptions(backend="numpy"), CAPS)


class TestPlanBatch:
    def test_shares_topk_per_distinct_k(self):
        plan = plan_batch(QueryOptions(), CAPS, ks=[3, 5, 3, 5, 3])
        assert plan.batch_size == 5
        assert plan.distinct_ks == (3, 5)
        assert plan.shared_topk is True
        assert plan.shared_traversal is False

    def test_joint_batch_pools_across_k(self):
        """Joint batches share ONE traversal at k_max across all ks."""
        plan = plan_batch(QueryOptions(), CAPS, ks=[1, 5, 10, 5])
        assert plan.shared_traversal_k == 10
        # Baseline batches do not pool across k (no group traversal)...
        assert (
            plan_batch(QueryOptions(mode="baseline"), CAPS, ks=[1, 5])
            .shared_traversal_k
            is None
        )
        # ...but indexed batches do, since the node-RSk reformulation
        # made every per-k derivation pool-independent (PR 5).
        assert (
            plan_batch(QueryOptions(mode="indexed"), CAPS, ks=[1, 5])
            .shared_traversal_k
            == 5
        )
        # Single queries stay cold: no pool.
        assert plan_query(QueryOptions(), CAPS, k=7).shared_traversal_k is None

    def test_indexed_batch_shares_root_traversal(self):
        plan = plan_batch(QueryOptions(mode="indexed"), CAPS, ks=[3, 3, 7])
        assert plan.shared_traversal is True
        assert plan.shared_topk is False
        assert plan.distinct_ks == (3, 7)
        assert plan.shared_traversal_k == 7

    def test_indexed_batch_reuses_a_larger_existing_pool(self):
        from dataclasses import replace

        warm = replace(CAPS, root_pool_k=9)
        plan = plan_batch(QueryOptions(mode="indexed"), warm, ks=[3, 7])
        assert plan.shared_traversal_k == 9  # names the walk actually used

    def test_indexed_batch_keeps_selection_in_process(self):
        plan = plan_batch(QueryOptions(mode="indexed", workers=4), CAPS, ks=[3, 3])
        assert plan.workers == 1

    def test_workers_fan_out_when_possible(self):
        plan = plan_batch(QueryOptions(workers=4), CAPS, ks=[3, 3])
        assert plan.workers == 4

    def test_no_fan_out_without_fork(self):
        caps = EngineCapabilities(
            has_user_tree=False, numpy_available=HAS_NUMPY, fork_available=False
        )
        plan = plan_batch(QueryOptions(workers=4), caps, ks=[3, 3])
        assert plan.workers == 1

    def test_no_fan_out_for_single_query_batch(self):
        plan = plan_batch(QueryOptions(workers=4), CAPS, ks=[3])
        assert plan.workers == 1


class TestExplain:
    def test_single_query_explain(self):
        text = plan_query(QueryOptions(backend="python"), CAPS, k=7).explain()
        assert "single query" in text
        assert "backend=python" in text
        assert "cold per query" in text

    def test_batch_explain_mentions_sharing_and_fanout(self):
        text = plan_batch(
            QueryOptions(backend="python", workers=3), CAPS, ks=[3, 5, 3]
        ).explain()
        assert "batch of 3" in text
        assert "k=3,5" in text
        assert "fork pool x3" in text

    def test_joint_batch_explain_reports_cross_k_reuse(self):
        text = plan_batch(
            QueryOptions(backend="python"), CAPS, ks=[1, 5, 10]
        ).explain()
        assert "one MIR-tree walk at k=10" in text
        assert "reused for k=1,5,10" in text

    def test_indexed_batch_explain(self):
        text = plan_batch(
            QueryOptions(mode="indexed"), CAPS, ks=[4, 4]
        ).explain()
        assert "MIUR-root joint traversal" in text
        assert "in-process per query" in text


class TestEnginePlan:
    def test_engine_plan_wrapper(self, tiny_dataset):
        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        single = engine.plan(QueryOptions(backend="python"))
        assert single.batch_size == 1
        batch = engine.plan(QueryOptions(backend="python"), ks=[2, 2, 4])
        assert batch.batch_size == 3
        assert batch.distinct_ks == (2, 4)

    def test_engine_capabilities(self, tiny_dataset):
        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        caps = engine.capabilities()
        assert caps.has_user_tree is False
        assert caps.num_users == len(tiny_dataset.users)
        indexed = MaxBRSTkNNEngine(
            tiny_dataset, EngineConfig(fanout=4, index_users=True)
        )
        assert indexed.capabilities().has_user_tree is True

    def test_default_plan_uses_default_options(self, tiny_dataset):
        engine = MaxBRSTkNNEngine(tiny_dataset, EngineConfig(fanout=4))
        plan = engine.plan()
        assert plan.method is Method.APPROX
        assert plan.backend == Backend.AUTO.resolve()
