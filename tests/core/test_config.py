"""Typed configuration layer: enums, QueryOptions, EngineConfig."""

import pytest

from repro import Backend, EngineConfig, Method, Mode, QueryOptions
from repro.core.config import coerce_options
from repro.core.kernels import HAS_NUMPY


class TestEnums:
    def test_string_coercion(self):
        assert Method.coerce("exact") is Method.EXACT
        assert Mode.coerce("indexed") is Mode.INDEXED
        assert Backend.coerce("numpy") is Backend.NUMPY

    def test_coercion_is_case_insensitive(self):
        assert Method.coerce("EXACT") is Method.EXACT
        assert Mode.coerce("Joint") is Mode.JOINT

    def test_enum_passthrough(self):
        assert Method.coerce(Method.APPROX) is Method.APPROX

    def test_unknown_values_rejected(self):
        with pytest.raises(ValueError):
            Method.coerce("fuzzy")
        with pytest.raises(ValueError):
            Mode.coerce("turbo")
        with pytest.raises(ValueError):
            Backend.coerce("cuda")

    def test_str_mixin(self):
        # Enums render as their value (log/CLI friendly) and compare to it.
        assert str(Mode.JOINT) == "joint"
        assert Backend.PYTHON == "python"

    def test_backend_resolve(self):
        assert Backend.PYTHON.resolve() == "python"
        expected = "numpy" if HAS_NUMPY else "python"
        assert Backend.AUTO.resolve() == expected


class TestQueryOptions:
    def test_defaults(self):
        opts = QueryOptions()
        assert opts.method is Method.APPROX
        assert opts.mode is Mode.JOINT
        assert opts.backend is Backend.AUTO
        assert opts.workers == 1

    def test_strings_coerce_in_constructor(self):
        opts = QueryOptions(method="exact", mode="baseline", backend="python")
        assert opts.method is Method.EXACT
        assert opts.mode is Mode.BASELINE
        assert opts.backend is Backend.PYTHON

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(method="fuzzy")
        with pytest.raises(ValueError):
            QueryOptions(mode="turbo")
        with pytest.raises(ValueError):
            QueryOptions(backend="cuda")

    @pytest.mark.parametrize("workers", [0, -1, 1.5, "2", True])
    def test_invalid_workers_rejected(self, workers):
        with pytest.raises(ValueError):
            QueryOptions(workers=workers)

    def test_frozen(self):
        opts = QueryOptions()
        with pytest.raises(AttributeError):
            opts.workers = 4

    def test_with_(self):
        opts = QueryOptions().with_(method="exact", workers=3)
        assert opts.method is Method.EXACT
        assert opts.workers == 3
        assert QueryOptions().workers == 1  # original untouched

    def test_shared_default_is_auto_backend(self):
        """Regression: query defaulted "python", query_batch None.

        Both entry points now resolve through this one default; pinning
        it here keeps them from drifting apart again.
        """
        default = QueryOptions.default()
        assert default == QueryOptions()
        assert default.backend is Backend.AUTO


class TestSharedDefaultAcrossEntryPoints:
    def test_query_and_query_batch_use_the_same_default(self, monkeypatch):
        """Both kwarg-less entry points must plan with QueryOptions.default()."""
        import random

        import repro.core.batch as batch_mod
        import repro.core.engine as engine_mod
        from repro import Dataset, MaxBRSTkNNEngine

        from ..conftest import make_random_objects, make_random_users

        rng = random.Random(3)
        dataset = Dataset(
            make_random_objects(40, 12, rng),
            make_random_users(8, 12, rng),
            relevance="LM",
            alpha=0.5,
        )
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        from repro.core.query import MaxBRSTkNNQuery
        from repro.model.objects import STObject
        from repro.spatial.geometry import Point

        query = MaxBRSTkNNQuery(
            ox=STObject(item_id=-1, location=Point(1.0, 1.0), terms={}),
            locations=[Point(2.0, 2.0)],
            keywords=[0, 1, 2],
            ws=1,
            k=2,
        )

        seen = []
        real_plan_query = engine_mod.plan_query
        real_plan_batch = batch_mod.plan_batch
        monkeypatch.setattr(
            engine_mod, "plan_query",
            lambda opts, caps, k=0, **kw: (
                seen.append(opts) or real_plan_query(opts, caps, k, **kw)
            ),
        )
        monkeypatch.setattr(
            batch_mod, "plan_batch",
            lambda opts, caps, ks, **kw: (
                seen.append(opts) or real_plan_batch(opts, caps, ks, **kw)
            ),
        )
        engine.query(query)
        engine.query_batch([query])
        assert seen == [QueryOptions.default(), QueryOptions.default()]


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.index_users is False
        assert config.buffer_pages == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(fanout=1)
        with pytest.raises(ValueError):
            EngineConfig(buffer_pages=-1)

    @pytest.mark.parametrize("kwargs", [
        # bool is an int subclass: EngineConfig(fanout=True) would
        # otherwise sail through as fanout=1's neighbor.
        {"fanout": True},
        {"buffer_pages": True},
        {"num_shards": True},
        {"index_users": 1},
    ])
    def test_bools_are_not_ints(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_engine_accepts_config(self, tiny_dataset):
        from repro import MaxBRSTkNNEngine

        engine = MaxBRSTkNNEngine(
            tiny_dataset, EngineConfig(fanout=4, index_users=True)
        )
        assert engine.config.fanout == 4
        assert engine.user_tree is not None

    def test_engine_rejects_config_plus_legacy_kwargs(self, tiny_dataset):
        from repro import MaxBRSTkNNEngine

        with pytest.raises(TypeError):
            MaxBRSTkNNEngine(tiny_dataset, EngineConfig(), fanout=8)

    def test_engine_legacy_kwargs_map_to_config(self, tiny_dataset):
        from repro import MaxBRSTkNNEngine

        engine = MaxBRSTkNNEngine(tiny_dataset, fanout=4, index_users=True)
        assert engine.config == EngineConfig(fanout=4, index_users=True)

    def test_engine_legacy_positional_fanout(self, tiny_dataset):
        from repro import MaxBRSTkNNEngine

        engine = MaxBRSTkNNEngine(tiny_dataset, 4)
        assert engine.config == EngineConfig(fanout=4)
        with pytest.raises(TypeError):
            MaxBRSTkNNEngine(tiny_dataset, 4, fanout=8)

    def test_engine_rejects_wrong_config_type(self, tiny_dataset):
        from repro import MaxBRSTkNNEngine

        with pytest.raises(TypeError):
            MaxBRSTkNNEngine(tiny_dataset, "fast")


class TestCoerceOptions:
    def test_none_yields_default(self):
        assert coerce_options(None) == QueryOptions.default()

    def test_options_passthrough(self):
        opts = QueryOptions(method="exact")
        assert coerce_options(opts) is opts

    def test_options_plus_legacy_rejected(self):
        with pytest.raises(TypeError):
            coerce_options(QueryOptions(), backend="python")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            coerce_options(42)

    def test_legacy_positional_method_string(self):
        with pytest.warns(DeprecationWarning):
            opts = coerce_options("exact")
        assert opts.method is Method.EXACT

    def test_positional_string_plus_method_kwarg_rejected(self):
        with pytest.raises(TypeError):
            coerce_options("exact", method="approx")
