"""Tests for the spatial-only MaxBRkNN baseline."""

import random

import pytest

from repro import Dataset
from repro.maxbrknn import (
    NLC,
    best_candidate_location,
    build_nlcs,
    count_brknn,
    grid_maxbrknn,
)
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build(seed, n_fac=50, n_users=20):
    rng = random.Random(seed)
    facilities = make_random_objects(n_fac, 10, rng)
    users = make_random_users(n_users, 10, rng)
    return facilities, users, rng


class TestNLCConstruction:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_radius_is_kth_distance(self, k):
        facilities, users, _ = build(1)
        nlcs = build_nlcs(facilities, users, k)
        by_id = {c.user_id: c for c in nlcs}
        for u in users:
            dists = sorted(o.location.distance_to(u.location) for o in facilities)
            assert by_id[u.item_id].radius == pytest.approx(dists[k - 1])

    def test_k_validation(self):
        facilities, users, _ = build(2)
        with pytest.raises(ValueError):
            build_nlcs(facilities, users, 0)

    def test_contains_is_inclusive(self):
        c = NLC(user_id=0, center=Point(0, 0), radius=1.0)
        assert c.contains(Point(1.0, 0.0))
        assert not c.contains(Point(1.001, 0.0))


class TestCounting:
    def test_count_matches_manual(self):
        facilities, users, rng = build(3)
        nlcs = build_nlcs(facilities, users, 2)
        for _ in range(10):
            p = Point(rng.uniform(0, 10), rng.uniform(0, 10))
            manual = sum(
                1 for c in nlcs if c.center.distance_to(p) <= c.radius + 1e-12
            )
            assert count_brknn(nlcs, p) == manual

    def test_best_candidate(self):
        facilities, users, rng = build(4)
        nlcs = build_nlcs(facilities, users, 2)
        candidates = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(8)]
        best, n = best_candidate_location(nlcs, candidates)
        assert best in candidates
        assert n == max(count_brknn(nlcs, p) for p in candidates)


class TestGrid:
    def test_grid_count_is_achievable(self):
        facilities, users, _ = build(5)
        nlcs = build_nlcs(facilities, users, 3)
        center, count = grid_maxbrknn(nlcs, resolution=48)
        assert count == count_brknn(nlcs, center)

    def test_resolution_monotone_quality(self):
        """Finer grids never find a worse cell (statistically; we check
        one seed deterministically)."""
        facilities, users, _ = build(6)
        nlcs = build_nlcs(facilities, users, 3)
        _, coarse = grid_maxbrknn(nlcs, resolution=8)
        _, fine = grid_maxbrknn(nlcs, resolution=64)
        assert fine >= coarse - 1  # allow one-off due to cell alignment

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_maxbrknn([], resolution=8)
        facilities, users, _ = build(7)
        nlcs = build_nlcs(facilities, users, 1)
        with pytest.raises(ValueError):
            grid_maxbrknn(nlcs, resolution=0)


class TestCrossCheckWithEngine:
    """alpha = 1 reduces MaxBRSTkNN to MaxBRkNN: counts must agree."""

    @pytest.mark.parametrize("seed", range(3))
    def test_alpha_one_equivalence(self, seed):
        from repro import MaxBRSTkNNEngine, MaxBRSTkNNQuery, STObject

        facilities, users, rng = build(seed, n_fac=60, n_users=15)
        ds = Dataset(facilities, users, relevance="LM", alpha=1.0)
        engine = MaxBRSTkNNEngine(ds)
        k = 4
        nlcs = build_nlcs(facilities, users, k)
        candidates = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(6)]
        query = MaxBRSTkNNQuery(
            ox=STObject(item_id=-1, location=candidates[0], terms={}),
            locations=candidates,
            keywords=[],
            ws=0,
            k=k,
        )
        result = engine.query(query, method="exact")
        _, gold = best_candidate_location(nlcs, candidates)
        assert result.cardinality == gold
