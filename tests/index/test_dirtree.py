"""Tests for the min-max DIR-tree variant (text-aware construction)."""

import random

import pytest

from repro import Dataset, STObject
from repro.core.joint_topk import joint_topk
from repro.index.dirtree import MDIRTree, leaf_cohesion
from repro.index.irtree import MIRTree
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def topic_clustered_objects(n, num_topics, rng, space=10.0):
    """Objects whose vocabulary is topical but whose locations are not:
    each topic owns a disjoint term block; locations are uniform."""
    objects = []
    for i in range(n):
        topic = rng.randrange(num_topics)
        base = topic * 10
        terms = {base + t: 1 for t in rng.sample(range(10), 4)}
        objects.append(
            STObject(
                item_id=i,
                location=Point(rng.uniform(0, space), rng.uniform(0, space)),
                terms=terms,
            )
        )
    return objects


@pytest.fixture(scope="module")
def world():
    rng = random.Random(31)
    objects = make_random_objects(120, 18, rng)
    users = make_random_users(12, 18, rng)
    ds = Dataset(objects, users, relevance="LM")
    return ds


class TestConstruction:
    def test_invariants(self, world):
        tree = MDIRTree(world.objects, world.relevance, fanout=8, beta=0.4)
        tree.check_invariants()
        assert len(tree) == len(world.objects)

    def test_parameter_validation(self, world):
        with pytest.raises(ValueError):
            MDIRTree(world.objects, world.relevance, beta=1.5)
        with pytest.raises(ValueError):
            MDIRTree(world.objects, world.relevance, refinement_passes=-1)

    def test_zero_passes_equals_str_packing(self, world):
        plain = MIRTree(world.objects, world.relevance, fanout=8)
        zero = MDIRTree(
            world.objects, world.relevance, fanout=8, refinement_passes=0
        )
        a = sorted(
            tuple(sorted(e.item for e in n.entries))
            for n in plain.rtree.iter_nodes()
            if n.is_leaf
        )
        b = sorted(
            tuple(sorted(e.item for e in n.entries))
            for n in zero.rtree.iter_nodes()
            if n.is_leaf
        )
        assert a == b

    def test_small_collection(self, world):
        tree = MDIRTree(world.objects[:5], world.relevance, fanout=8)
        tree.check_invariants()


class TestQueryEquivalence:
    """Grouping changes I/O, never answers (bounds stay sound)."""

    @pytest.mark.parametrize("beta", [0.1, 0.5, 0.9])
    def test_joint_topk_identical_to_mir(self, world, beta):
        mir = MIRTree(world.objects, world.relevance, fanout=8)
        mdir = MDIRTree(world.objects, world.relevance, fanout=8, beta=beta)
        a = joint_topk(mir, world, 5)
        b = joint_topk(mdir, world, 5)
        for uid in a:
            assert a[uid].kth_score == pytest.approx(b[uid].kth_score, abs=1e-12)

    def test_engine_accepts_mdir(self, world):
        from repro.topk.single import topk_single_user

        mdir = MDIRTree(world.objects, world.relevance, fanout=8)
        u = world.users[0]
        got = topk_single_user(mdir, world, u, 4)
        gold = sorted((world.sts(o, u) for o in world.objects), reverse=True)[3]
        assert got.kth_score == pytest.approx(gold, abs=1e-9)


class TestCohesion:
    def test_dir_grouping_improves_cohesion_on_topical_text(self):
        rng = random.Random(41)
        objects = topic_clustered_objects(160, 4, rng)
        users = make_random_users(8, 40, rng)
        ds = Dataset(objects, users, relevance="LM")
        by_id = {o.item_id: o for o in objects}
        plain = MIRTree(objects, ds.relevance, fanout=8)
        textual = MDIRTree(
            objects, ds.relevance, fanout=8, beta=0.05, refinement_passes=3
        )
        assert textual.textual_cohesion() == pytest.approx(
            leaf_cohesion(textual, by_id)
        )
        assert leaf_cohesion(textual, by_id) > leaf_cohesion(plain, by_id)

    def test_beta_one_changes_little(self, world):
        by_id = {o.item_id: o for o in world.objects}
        plain = MIRTree(world.objects, world.relevance, fanout=8)
        spatial = MDIRTree(world.objects, world.relevance, fanout=8, beta=1.0)
        # With beta = 1 the cost is purely spatial; cohesion should not
        # move meaningfully from the STR packing.
        assert abs(leaf_cohesion(spatial, by_id) - leaf_cohesion(plain, by_id)) < 0.2
