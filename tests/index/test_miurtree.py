"""Tests for the MIUR-tree over users (Section 7's index)."""

import random

import pytest

from repro.index.miurtree import MIURTree
from repro.storage.iostats import IOCounter
from repro.storage.pager import PageStore
from repro.text.relevance import make_relevance

from ..conftest import make_random_objects, make_random_users


@pytest.fixture(scope="module")
def built():
    rng = random.Random(123)
    objects = make_random_objects(40, 15, rng)
    users = make_random_users(60, 15, rng)
    rel = make_relevance("LM").fit([o.terms for o in objects])
    tree = MIURTree(users, rel, fanout=4)
    return users, rel, tree


class TestConstruction:
    def test_invariants(self, built):
        _, _, tree = built
        tree.check_invariants()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MIURTree([], make_relevance("LM"))

    def test_duplicate_user_ids_rejected(self):
        rng = random.Random(1)
        objects = make_random_objects(5, 10, rng)
        users = make_random_users(4, 10, rng)
        users[2].item_id = users[0].item_id
        rel = make_relevance("LM").fit([o.terms for o in objects])
        with pytest.raises(ValueError):
            MIURTree(users, rel)

    def test_root_count_is_total_users(self, built):
        users, _, tree = built
        assert tree.root.user_count == len(users)


class TestRootEqualsSuperUser:
    def test_root_summary_matches_flat_super_user(self, built):
        """Section 7: the MIUR-tree root is exactly the super-user."""
        users, rel, tree = built
        from repro.model.objects import SuperUser

        flat = SuperUser.from_users(users, rel)
        root = tree.root.summary
        assert root.union_terms == flat.union_terms
        assert root.intersection_terms == flat.intersection_terms
        assert root.count == flat.count
        assert root.min_normalizer == pytest.approx(flat.min_normalizer)
        assert root.max_normalizer == pytest.approx(flat.max_normalizer)
        assert root.mbr == flat.mbr


class TestNodeSummaries:
    def test_every_node_summarizes_its_users(self, built):
        users, rel, tree = built
        by_id = {u.item_id: u for u in users}

        def collect(node):
            if node.is_leaf:
                return [by_id[e.item] for e in node.entries]
            return [u for c in node.children for u in collect(c)]

        for node in tree.rtree.iter_nodes():
            group = collect(node)
            summary = tree.summary_of(node)
            union = set()
            inter = None
            for u in group:
                union |= u.keyword_set
                inter = set(u.keyword_set) if inter is None else inter & u.keyword_set
            assert summary.union_terms == frozenset(union)
            assert summary.intersection_terms == frozenset(inter or set())
            assert summary.count == len(group)
            zs = [rel.user_normalizer(u.keyword_set) for u in group]
            assert summary.min_normalizer == pytest.approx(min(zs))
            assert summary.max_normalizer == pytest.approx(max(zs))


class TestReadChildren:
    def test_internal_read(self, built):
        _, _, tree = built
        root = tree.root
        if root.is_leaf:
            pytest.skip("tree too small")
        views, leaf_users = tree.read_children(root)
        assert leaf_users == []
        assert sum(v.user_count for v in views) == root.user_count

    def test_leaf_read_returns_users(self, built):
        users, _, tree = built
        view = tree.root
        while not view.is_leaf:
            view = tree.read_children(view)[0][0]
        _, leaf_users = tree.read_children(view)
        assert leaf_users
        assert all(u.item_id in {x.item_id for x in users} for u in leaf_users)

    def test_io_charged(self, built):
        _, _, tree = built
        counter = IOCounter()
        store = PageStore(counter=counter)
        tree.read_children(tree.root, store)
        assert counter.node_visits == 1
