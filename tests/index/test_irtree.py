"""Tests for the IR-tree / MIR-tree: structure, summaries, I/O charging."""

import random

import pytest

from repro.index.irtree import IRTree, MIRTree
from repro.storage.iostats import IOCounter
from repro.storage.pager import PageStore
from repro.text.relevance import make_relevance

from ..conftest import make_random_objects


@pytest.fixture(scope="module")
def built():
    rng = random.Random(99)
    objects = make_random_objects(120, 25, rng)
    rel = make_relevance("LM").fit([o.terms for o in objects])
    tree = MIRTree(objects, rel, fanout=8)
    return objects, rel, tree


class TestConstruction:
    def test_invariants(self, built):
        _, _, tree = built
        tree.check_invariants()

    def test_empty_rejected(self):
        rel = make_relevance("LM")
        with pytest.raises(ValueError):
            MIRTree([], rel)

    def test_duplicate_ids_rejected(self):
        rng = random.Random(1)
        objects = make_random_objects(4, 10, rng)
        objects[3].item_id = objects[0].item_id
        rel = make_relevance("LM").fit([o.terms for o in objects])
        with pytest.raises(ValueError):
            MIRTree(objects, rel)

    def test_single_object_tree(self):
        rng = random.Random(2)
        objects = make_random_objects(1, 10, rng)
        rel = make_relevance("LM").fit([o.terms for o in objects])
        tree = MIRTree(objects, rel)
        tree.check_invariants()
        assert tree.root.is_leaf

    def test_minmax_flag(self, built):
        _, _, tree = built
        assert tree.minmax
        assert tree.invfile_of(tree.root).minmax

    @pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
    def test_all_measures_build(self, measure):
        rng = random.Random(3)
        objects = make_random_objects(60, 15, rng)
        rel = make_relevance(measure).fit([o.terms for o in objects])
        MIRTree(objects, rel, fanout=8).check_invariants()


class TestSummaries:
    def test_root_summary_bounds_every_document(self, built):
        objects, rel, tree = built
        max_w, min_w = tree.subtree_summary(tree.root)
        for o in objects:
            for tid, w in rel.document_weights(o.terms).items():
                assert w <= max_w[tid] + 1e-12
        # Min weights only for terms in *every* document.
        inter = set(objects[0].terms)
        for o in objects[1:]:
            inter &= set(o.terms)
        assert set(min_w) == inter

    def test_leaf_postings_are_actual_weights(self, built):
        objects, rel, tree = built
        node = tree.root
        while not node.is_leaf:
            node = node.children[0]
        inv = tree.invfile_of(node)
        for entry in node.entries:
            weights = rel.document_weights(tree.object_by_id(entry.item).terms)
            for tid, w in weights.items():
                posting = [p for p in inv.postings(tid) if p.entry_key == entry.item]
                assert len(posting) == 1
                assert posting[0].max_weight == pytest.approx(w)
                assert posting[0].min_weight == pytest.approx(w)


class TestReadNode:
    def test_read_internal_returns_children(self, built):
        _, _, tree = built
        terms = set(range(25))
        children, objects = tree.read_node(tree.root, terms)
        assert objects == []
        assert {c.node.page_id for c in children} == {
            ch.page_id for ch in tree.root.children
        }

    def test_read_leaf_returns_objects(self, built):
        _, _, tree = built
        node = tree.root
        while not node.is_leaf:
            node = node.children[0]
        children, objects = tree.read_node(node, set(range(25)))
        assert children == []
        assert {o.obj.item_id for o in objects} == {e.item for e in node.entries}

    def test_weights_restricted_to_requested_terms(self, built):
        _, _, tree = built
        children, _ = tree.read_node(tree.root, {0, 1})
        for cv in children:
            assert set(cv.weights) <= {0, 1}

    def test_io_charging(self, built):
        _, _, tree = built
        counter = IOCounter()
        store = PageStore(counter=counter)
        tree.read_node(tree.root, {0, 1, 2}, store)
        assert counter.node_visits == 1
        assert counter.invfile_blocks >= 1

    def test_no_store_is_free(self, built):
        _, _, tree = built
        tree.read_node(tree.root, {0})  # must not raise


class TestIRvsMIRSize:
    def test_mir_tree_larger_on_disk(self):
        """The MIR-tree pays exactly the extra min-weight per posting."""
        rng = random.Random(5)
        objects = make_random_objects(100, 20, rng)
        rel = make_relevance("LM").fit([o.terms for o in objects])
        ir = IRTree(objects, rel, fanout=8, minmax=False)
        mir = MIRTree(objects, rel, fanout=8)
        assert mir.total_inverted_bytes() > ir.total_inverted_bytes()
