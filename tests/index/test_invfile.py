"""Tests for inverted files and the min/max merge rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.invfile import InvertedFile, Posting, merge_minmax
from repro.storage.pager import POSTING_ENTRY_BYTES_IR, POSTING_ENTRY_BYTES_MIR


class TestPosting:
    def test_rejects_min_above_max(self):
        with pytest.raises(ValueError):
            Posting(entry_key=1, max_weight=1.0, min_weight=2.0)

    def test_equal_min_max_ok(self):
        p = Posting(entry_key=1, max_weight=0.5, min_weight=0.5)
        assert p.max_weight == p.min_weight


class TestInvertedFile:
    def test_add_document_min_equals_max(self):
        inv = InvertedFile()
        inv.add_document(7, {0: 0.4, 1: 0.2})
        (p,) = inv.postings(0)
        assert p.entry_key == 7
        assert p.max_weight == p.min_weight == 0.4

    def test_add_summary_defaults_min_to_zero(self):
        inv = InvertedFile()
        inv.add_summary(3, {0: 0.9, 1: 0.5}, {0: 0.1})
        assert inv.postings(0)[0].min_weight == pytest.approx(0.1)
        assert inv.postings(1)[0].min_weight == 0.0

    def test_missing_term_empty(self):
        inv = InvertedFile()
        assert inv.postings(42) == []
        assert 42 not in inv

    def test_entry_weights_groups_by_entry(self):
        inv = InvertedFile()
        inv.add_document(1, {0: 0.5, 1: 0.3})
        inv.add_document(2, {0: 0.7})
        view = inv.entry_weights([0, 1, 9])
        assert view[1] == {0: (0.5, 0.5), 1: (0.3, 0.3)}
        assert view[2] == {0: (0.7, 0.7)}
        assert 9 not in view.get(1, {})

    def test_counts(self):
        inv = InvertedFile()
        inv.add_document(1, {0: 0.5, 1: 0.3})
        inv.add_document(2, {0: 0.7})
        assert len(inv) == 2
        assert inv.num_postings() == 3

    def test_size_model_minmax_vs_plain(self):
        minmax = InvertedFile(minmax=True)
        plain = InvertedFile(minmax=False)
        for inv in (minmax, plain):
            inv.add_document(1, {0: 0.5})
        assert minmax.posting_entry_bytes == POSTING_ENTRY_BYTES_MIR
        assert plain.posting_entry_bytes == POSTING_ENTRY_BYTES_IR
        assert minmax.list_bytes(0) > plain.list_bytes(0)
        assert minmax.list_bytes(99) == 0

    def test_total_bytes_sums_lists(self):
        inv = InvertedFile()
        inv.add_document(1, {0: 0.5, 1: 0.3})
        assert inv.total_bytes() == inv.list_bytes(0) + inv.list_bytes(1)


class TestMergeMinMax:
    def test_paper_example_r4(self):
        """Table 2: node R4 over (o6, o7) for term t1 -> max 2, min 1."""
        o6 = {1: 1.0, 3: 1.0}          # t1:1, t3:1
        o7 = {1: 2.0, 4: 3.0}          # t1:2, t4:3
        max_w, min_w = merge_minmax([o6, o7])
        assert max_w[1] == 2.0
        assert min_w[1] == 1.0
        # t3 and t4 are not in the intersection -> absent from min.
        assert 3 not in min_w and 4 not in min_w
        assert max_w[3] == 1.0 and max_w[4] == 3.0

    def test_single_document(self):
        max_w, min_w = merge_minmax([{0: 0.5}])
        assert max_w == min_w == {0: 0.5}

    def test_empty_input(self):
        max_w, min_w = merge_minmax([])
        assert max_w == {} and min_w == {}

    @given(st.lists(
        st.dictionaries(st.integers(0, 6), st.floats(0, 10, allow_nan=False),
                        min_size=1, max_size=5),
        min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_property_bounds_every_document(self, docs):
        max_w, min_w = merge_minmax(docs)
        all_terms = {t for d in docs for t in d}
        assert set(max_w) == all_terms
        for d in docs:
            for t, w in d.items():
                assert w <= max_w[t] + 1e-12
        inter = set(docs[0])
        for d in docs[1:]:
            inter &= set(d)
        assert set(min_w) == inter
        for t in inter:
            assert min_w[t] == pytest.approx(min(d[t] for d in docs))
            assert min_w[t] <= max_w[t] + 1e-12
