"""Shared fixtures: small deterministic datasets for the whole suite."""

from __future__ import annotations

import random

import pytest

from repro import Dataset, STObject, User
from repro.datagen import candidate_locations, flickr_like, generate_users
from repro.spatial.geometry import Point


def make_random_objects(n, vocab_size, rng, tf_max=3, space=10.0):
    """Hand-rolled random objects (independent of the datagen package)."""
    objects = []
    for i in range(n):
        num_terms = rng.randint(1, min(6, vocab_size))
        terms = {
            t: rng.randint(1, tf_max)
            for t in rng.sample(range(vocab_size), num_terms)
        }
        objects.append(
            STObject(
                item_id=i,
                location=Point(rng.uniform(0, space), rng.uniform(0, space)),
                terms=terms,
            )
        )
    return objects


def make_random_users(n, vocab_size, rng, space=10.0, start_id=0):
    users = []
    for i in range(n):
        num_terms = rng.randint(1, min(4, vocab_size))
        terms = {t: 1 for t in rng.sample(range(vocab_size), num_terms)}
        users.append(
            User(
                item_id=start_id + i,
                location=Point(rng.uniform(0, space), rng.uniform(0, space)),
                terms=terms,
            )
        )
    return users


@pytest.fixture(scope="session")
def tiny_dataset():
    """60 objects / 12 users, LM relevance — fast unit-test workhorse."""
    rng = random.Random(42)
    objects = make_random_objects(60, 20, rng)
    users = make_random_users(12, 20, rng)
    return Dataset(objects, users, relevance="LM", alpha=0.5)


@pytest.fixture(scope="session")
def small_flickr():
    """Generated Flickr-like workload with query ingredients."""
    objects, vocab = flickr_like(num_objects=250, vocab_size=150, seed=11)
    workload = generate_users(
        objects, num_users=30, keywords_per_user=3, unique_keywords=12, seed=11
    )
    candidate_locations(workload, num_locations=5, seed=11)
    dataset = Dataset(objects, workload.users, relevance="LM", alpha=0.5, vocabulary=vocab)
    return dataset, workload


@pytest.fixture(params=["LM", "TF", "KO"])
def measure_name(request):
    return request.param
