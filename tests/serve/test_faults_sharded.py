"""Sharded engine under injected faults: re-scatter identity, per-shard
degradation, and aggregated pool teardown.

Faults are scoped per pool (shard pools carry their shard id, the root
search pool ``SEARCH_POOL_ID``), so these tests can break exactly one
failure domain and assert the others kept their pooled fast path.
"""

import multiprocessing
import warnings

import pytest

from repro import EngineConfig, QueryOptions
from repro.serve import DeadlinePolicy, FaultPlan, RetryPolicy, ShardedEngine

from .conftest import assert_results_equal, build_dataset, make_queries

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard pools require the fork start method",
)

FAST_RETRY = RetryPolicy(max_retries=1, backoff_base_s=0.0)
FAST_DEADLINE = DeadlinePolicy(flush_deadline_s=10.0, poll_interval_s=0.01)
OPTIONS = QueryOptions(backend="python")


def build_pair(seed=0, **config_kwargs):
    """Two engines over one dataset: the in-process reference and the
    pooled engine under test."""
    dataset, rng, vocab = build_dataset(seed, n_obj=70, n_users=24, vocab=18)
    config = EngineConfig(fanout=4, num_shards=2, **config_kwargs)
    return ShardedEngine(dataset, config), ShardedEngine(dataset, config), rng, vocab


def test_shard_worker_kill_recovers_identity():
    pooled, inproc, rng, vocab = build_pair()
    queries = make_queries(rng, vocab, 8)
    reference = inproc.query_batch(queries, OPTIONS)
    pooled.start_pools(
        1, search_workers=1,
        retry=FAST_RETRY, deadline=FAST_DEADLINE,
        faults=FaultPlan.kill_worker(),
    )
    try:
        results = pooled.query_batch(queries, OPTIONS)
    finally:
        pooled.close_pools(timeout_s=10.0)
    assert_results_equal(results, reference)
    # fault_counters() reads the banked totals: closing the pools must
    # not lose the recovery history.
    totals = pooled.fault_counters()
    assert totals["worker_deaths"] >= 1
    assert totals["respawns"] == totals["worker_deaths"]
    assert totals["retries"] == totals["worker_deaths"]
    assert totals["deadline_hits"] == 0


def test_shard_exception_retries_then_degrades_only_that_shard():
    pooled, inproc, rng, vocab = build_pair(seed=1)
    queries = make_queries(rng, vocab, 8)
    reference = inproc.query_batch(queries, OPTIONS)
    pooled.start_pools(
        1, search_workers=1,
        retry=FAST_RETRY, deadline=FAST_DEADLINE,
        faults=FaultPlan.shard_exception(0),
    )
    try:
        results = pooled.query_batch(queries, OPTIONS)
        rows = {row["shard"]: row for row in pooled.shard_stats()}
    finally:
        pooled.close_pools(timeout_s=10.0)
    assert_results_equal(results, reference)
    # Shard 0's rounds raised, were retried, then ran in-process; the
    # workers never died, and shard 1 stayed on its pooled fast path.
    totals = pooled.fault_counters()
    assert totals["retries"] >= 1
    assert totals["respawns"] == 0
    assert totals["worker_deaths"] == 0
    assert rows[0]["degraded_rounds"] >= 1
    assert rows[1]["degraded_rounds"] == 0


def test_search_pool_kill_recovers_in_indexed_mode():
    pooled, inproc, rng, vocab = build_pair(seed=2, index_users=True)
    options = QueryOptions(mode="indexed", backend="python")
    queries = make_queries(rng, vocab, 8)
    reference = inproc.query_batch(queries, options)
    pooled.start_pools(
        1, search_workers=2,
        retry=FAST_RETRY, deadline=FAST_DEADLINE,
        faults=FaultPlan.kill_worker(),
    )
    try:
        results = pooled.query_batch(queries, options)
    finally:
        pooled.close_pools(timeout_s=10.0)
    assert_results_equal(results, reference)
    totals = pooled.fault_counters()
    assert totals["worker_deaths"] >= 1
    assert totals["retries"] == totals["worker_deaths"]


def test_pool_loss_breaks_pools_and_degrades_in_process():
    pooled, inproc, rng, vocab = build_pair(seed=3)
    queries = make_queries(rng, vocab, 8)
    reference = inproc.query_batch(queries, OPTIONS)
    pooled.start_pools(
        1, search_workers=1,
        retry=FAST_RETRY, deadline=FAST_DEADLINE,
        faults=FaultPlan.pool_loss(),
    )
    try:
        results = pooled.query_batch(queries, OPTIONS)
        health = pooled.pool_health()
        rows = {row["shard"]: row for row in pooled.shard_stats()}
    finally:
        pooled.close_pools(timeout_s=10.0)
    assert_results_equal(results, reference)
    assert health, "expected live pools in the health report"
    assert all(row["state"] == "broken" for row in health)
    assert all(row["degraded_rounds"] >= 1 for row in rows.values())
    # No round was ever re-dispatched: respawn itself is what failed.
    assert pooled.fault_counters()["retries"] == 0


def test_close_pools_aggregates_failures_into_one_warning():
    pooled, _, _, _ = build_pair(seed=4)
    pooled.start_pools(1, search_workers=1)

    def sabotage(pool):
        real_close = pool.close

        def bad_close(timeout_s=None):
            real_close(timeout_s=timeout_s)  # actually release the workers
            raise RuntimeError("injected close failure")

        pool.close = bad_close

    sabotaged = [shard for shard in pooled._shards if shard.pool is not None]
    assert len(sabotaged) == 2
    for shard in sabotaged:
        sabotage(shard.pool)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        pooled.close_pools(timeout_s=10.0)
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime) == 1, "close errors must aggregate into ONE warning"
    message = str(runtime[0].message)
    assert "2 worker pool(s) failed to close cleanly" in message
    assert "shard 0" in message and "shard 1" in message
    # The sweep still completed: every slot cleared, search pool included.
    assert all(shard.pool is None for shard in pooled._shards)
    assert pooled._search_pool is None
    # Idempotent second close: silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        pooled.close_pools()
