"""PersistentWorkerPool: workers must *inherit* the kernel arrays.

The pool's whole point is forking after ``DatasetArrays`` is built so
workers share it through copy-on-write.  PR 2 accidentally passed the
dataset through Pool ``initargs`` — which pickles it per worker, and a
pickled dataset drops its arrays (``Dataset.__getstate__``), so every
worker silently rebuilt them.  These are the assertion-backed
regression tests: the build counter must not move inside a worker, and
the arrays must refuse pickling outright so the waste can never come
back quietly.
"""

import multiprocessing
import pickle
import random

import pytest

from repro import Dataset, MaxBRSTkNNEngine, QueryOptions
from repro.core.kernels import HAS_NUMPY, DatasetArrays, arrays_for
from repro.serve import pool as pool_mod
from repro.serve.pool import PersistentWorkerPool

from ..conftest import make_random_objects, make_random_users

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="PersistentWorkerPool requires the fork start method",
)


def make_dataset(seed=0):
    rng = random.Random(seed)
    objects = make_random_objects(50, 15, rng)
    users = make_random_users(10, 15, rng)
    return Dataset(objects, users, relevance="LM", alpha=0.5), rng


def _probe_worker(_):
    """Runs inside a forked worker: report its view of the arrays."""
    ds = pool_mod._WORKER_DATASET
    return (
        DatasetArrays.build_count if HAS_NUMPY else 0,
        ds is not None,
        getattr(ds, "_kernel_arrays", None) is not None if ds is not None else False,
    )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_workers_inherit_prebuilt_arrays_without_rebuilding():
    dataset, _ = make_dataset()
    with PersistentWorkerPool(dataset, workers=2) as pool:
        # The pool pre-builds the arrays in the parent, pre-fork.
        assert getattr(dataset, "_kernel_arrays", None) is not None
        parent_builds = DatasetArrays.build_count
        probes = pool._pool.map(_probe_worker, range(4), chunksize=1)
    for worker_builds, has_dataset, has_arrays in probes:
        assert has_dataset, "worker lost the fork-inherited dataset"
        assert has_arrays, "worker dataset arrived without its arrays"
        # The counter a worker sees is the parent's value snapshotted at
        # fork: any rebuild inside the worker would push it past that.
        assert worker_builds == parent_builds


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_arrays_for_memoizes_and_dataset_pickles_without_arrays():
    dataset, _ = make_dataset(seed=1)
    arrays = arrays_for(dataset)
    assert arrays_for(dataset) is arrays  # memoized per dataset
    # The arrays themselves must never cross a process boundary...
    with pytest.raises(TypeError, match="copy-on-write"):
        pickle.dumps(arrays)
    # ...but the dataset stays picklable: it sheds the arrays and the
    # far side rebuilds lazily on first vectorized use.
    clone = pickle.loads(pickle.dumps(dataset))
    assert getattr(clone, "_kernel_arrays", None) is None
    assert getattr(dataset, "_kernel_arrays", None) is arrays


def test_pool_results_match_inprocess_batches():
    dataset, rng = make_dataset(seed=2)
    engine = MaxBRSTkNNEngine(dataset, fanout=4)
    from repro.core.query import MaxBRSTkNNQuery
    from repro.model.objects import STObject
    from repro.spatial.geometry import Point

    queries = [
        MaxBRSTkNNQuery(
            ox=STObject(
                item_id=-(i + 1),
                location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                terms={},
            ),
            locations=[Point(rng.uniform(0, 10), rng.uniform(0, 10))],
            keywords=sorted(rng.sample(range(15), 4)),
            ws=2,
            k=2 + (i % 2),
        )
        for i in range(4)
    ]
    inprocess = engine.query_batch(queries, QueryOptions())
    engine.clear_topk_cache()
    with PersistentWorkerPool(dataset, workers=2) as pool:
        pooled = engine.query_batch(queries, QueryOptions(), pool=pool)
    for a, b in zip(inprocess, pooled):
        assert a.location == b.location
        assert a.keywords == b.keywords
        assert a.brstknn == b.brstknn


def _arena_probe_worker(_):
    """Runs inside a forked worker: its arena attachment + build view."""
    return (
        pool_mod._WORKER_ARENA_NAME,
        pool_mod._WORKER_GENERATION,
        DatasetArrays.build_count if HAS_NUMPY else 0,
    )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
class TestArenaReattach:
    """The zero-copy respawn contract: a generation-N+1 worker maps the
    arena *by name* (its fork happened after SIGKILL recovery, so it
    cannot rely on inherited state being the published state) and must
    not rebuild any kernel arrays doing so."""

    def test_respawned_workers_reattach_arena_by_name(self):
        from repro.storage.shm import ShmArena

        dataset, _ = make_dataset(seed=6)
        with ShmArena() as arena:
            with PersistentWorkerPool(
                dataset, workers=2, arena_name=arena.name
            ) as pool:
                parent_builds = DatasetArrays.build_count
                probes = pool._pool.map(_arena_probe_worker, range(4), chunksize=1)
                for name, generation, builds in probes:
                    assert name == arena.name  # generation 0: initial attach
                    assert generation == 0
                    assert builds == parent_builds

                pool.respawn()
                assert pool.health.generation == 1
                probes = pool._pool.map(_arena_probe_worker, range(4), chunksize=1)
                for name, generation, builds in probes:
                    # The initializer re-ran in the fresh worker set and
                    # proved attach-by-name against the live arena.
                    assert name == arena.name
                    assert generation == 1
                    # Flat build counter: re-attach maps existing
                    # segments, it never reconstructs DatasetArrays.
                    assert builds == parent_builds

    def test_pool_without_arena_leaves_workers_unattached(self):
        dataset, _ = make_dataset(seed=7)
        with PersistentWorkerPool(dataset, workers=1) as pool:
            (name, generation, _), = pool._pool.map(
                _arena_probe_worker, range(1), chunksize=1
            )
            assert name is None
            assert generation == 0


class TestBoundedShutdown:
    """close(timeout_s=...) must survive workers that will never exit.

    ``Pool.join`` waits for every worker to read its close sentinel; a
    worker SIGSTOPped (or SIGKILLed) mid-task leaves the sentinel
    unread and the pre-PR-6 ``close()`` hung the server's ``stop()``
    forever.  A stopped worker is the harshest case: SIGTERM parks as
    pending (so ``Pool.terminate()`` hangs too) and only SIGKILL fells
    it — which is exactly the escalation ``_join_bounded`` implements.
    """

    def test_close_with_stopped_worker_warns_and_returns(self):
        import contextlib
        import os
        import signal
        import time

        dataset, _ = make_dataset(seed=3)
        pool = PersistentWorkerPool(dataset, workers=1)
        victim = pool._pool._pool[0]
        os.kill(victim.pid, signal.SIGSTOP)
        try:
            t0 = time.monotonic()
            with pytest.warns(RuntimeWarning, match="did not shut down"):
                pool.close(timeout_s=0.5)
            # Bounded: a few escalation joins, nowhere near unbounded.
            assert time.monotonic() - t0 < 10.0
            deadline = time.monotonic() + 5.0
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not victim.is_alive(), "SIGKILL escalation missed the worker"
        finally:
            # Harmless if the worker is already gone.
            with contextlib.suppress(ProcessLookupError, PermissionError):
                os.kill(victim.pid, signal.SIGCONT)

    def test_close_without_timeout_still_waits_unbounded_when_healthy(self):
        dataset, _ = make_dataset(seed=4)
        pool = PersistentWorkerPool(dataset, workers=1)
        pool.close()  # healthy workers: the unbounded join returns promptly
        with pytest.raises(RuntimeError):
            pool.run_selection([])

    def test_close_with_timeout_on_healthy_pool_does_not_warn(self):
        import warnings as warnings_mod

        dataset, _ = make_dataset(seed=5)
        pool = PersistentWorkerPool(dataset, workers=2)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            pool.close(timeout_s=30.0)
