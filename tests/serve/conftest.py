"""Shared builders for the serving suites (dataset, queries, identity).

The fault suites (``test_faults_*``) all need the same scaffolding: a
small randomized dataset, a batch of mixed-k queries, and a bitwise
result-identity assertion against in-process sequential execution —
the acceptance bar every recovery path must clear.
"""

import random

from repro import (
    Dataset,
    EngineConfig,
    MaxBRSTkNNEngine,
    MaxBRSTkNNQuery,
    STObject,
)
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users


def build_dataset(seed=0, n_obj=60, n_users=16, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    return Dataset(objects, users, relevance="LM", alpha=0.5), rng, vocab


def build_engine(seed=0, **dataset_kwargs):
    dataset, rng, vocab = build_dataset(seed, **dataset_kwargs)
    return MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4)), rng, vocab


def make_queries(rng, vocab, count, ks=(3, 5)):
    queries = []
    for i in range(count):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(vocab), 5)),
                ws=2,
                k=ks[i % len(ks)],
            )
        )
    return queries


def assert_results_equal(served, reference):
    """Bitwise identity: location, keywords and BRSTkNN set must match."""
    assert len(served) == len(reference)
    for got, want in zip(served, reference):
        assert got.location == want.location
        assert got.keywords == want.keywords
        assert got.brstknn == want.brstknn
