"""MaxBRSTkNNServer: micro-batching, equivalence, lifecycle, stats."""

import asyncio
import multiprocessing
import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, MaxBRSTkNNQuery, QueryOptions
from repro.model.objects import STObject
from repro.serve import MaxBRSTkNNServer, PersistentWorkerPool, ServerConfig
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def build_engine(seed=0, n_obj=60, n_users=12, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    dataset = Dataset(objects, users, relevance="LM", alpha=0.5)
    return MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4)), rng, vocab


def make_queries(rng, vocab, count, ks=(3,)):
    queries = []
    for i in range(count):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(vocab), 5)),
                ws=2,
                k=ks[i % len(ks)],
            )
        )
    return queries


def assert_result_equal(a, b):
    assert a.location == b.location
    assert a.keywords == b.keywords
    assert a.brstknn == b.brstknn


def serve_all(engine, queries, config):
    """Start a server, submit everything concurrently, return results+stats."""

    async def run():
        async with MaxBRSTkNNServer(engine, config) as server:
            results = await server.submit_many(queries)
        return results, server.stats

    return asyncio.run(run())


class TestEquivalence:
    def test_concurrent_submissions_match_sequential(self):
        engine, rng, vocab = build_engine()
        queries = make_queries(rng, vocab, 8, ks=(3, 5))
        results, stats = serve_all(
            engine, queries, ServerConfig(max_batch=4, max_wait_ms=2.0)
        )
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)
        assert stats.queries_submitted == 8
        assert stats.queries_completed == 8
        assert stats.queries_failed == 0
        assert stats.in_flight == 0

    def test_interleaved_waves_match_sequential(self):
        engine, rng, vocab = build_engine(seed=4)
        queries = make_queries(rng, vocab, 9, ks=(2, 4, 6))

        async def run():
            async with MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms=1.0)
            ) as server:
                first = await server.submit_many(queries[:3])
                second = await server.submit_many(queries[3:])
            return first + second

        results = asyncio.run(run())
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)


class TestMicroBatching:
    def test_burst_collapses_into_one_batch(self):
        engine, rng, vocab = build_engine(seed=1)
        queries = make_queries(rng, vocab, 16)
        _, stats = serve_all(
            engine, queries, ServerConfig(max_batch=32, max_wait_ms=50.0)
        )
        assert stats.batches_executed == 1
        assert stats.largest_batch == 16

    def test_flush_on_max_batch(self):
        engine, rng, vocab = build_engine(seed=2)
        queries = make_queries(rng, vocab, 8)
        _, stats = serve_all(
            engine, queries, ServerConfig(max_batch=1, max_wait_ms=50.0)
        )
        assert stats.batches_executed == 8
        assert stats.full_flushes == 8
        assert stats.avg_batch_size == 1.0

    def test_flush_on_timeout(self):
        engine, rng, vocab = build_engine(seed=3)
        queries = make_queries(rng, vocab, 3)
        _, stats = serve_all(
            engine, queries, ServerConfig(max_batch=100, max_wait_ms=5.0)
        )
        assert stats.batches_executed >= 1
        assert stats.timeout_flushes >= 1
        assert stats.full_flushes == 0

    def test_zero_wait_still_batches_the_pending_burst(self):
        engine, rng, vocab = build_engine(seed=5)
        queries = make_queries(rng, vocab, 6)
        results, stats = serve_all(
            engine, queries, ServerConfig(max_batch=32, max_wait_ms=0.0)
        )
        assert len(results) == 6
        assert stats.queries_completed == 6
        # The gather enqueues all six before the flusher wakes: one batch.
        assert stats.batches_executed == 1


class TestLifecycle:
    def test_submit_before_start_raises(self):
        engine, rng, vocab = build_engine()
        server = MaxBRSTkNNServer(engine)
        query = make_queries(rng, vocab, 1)[0]
        with pytest.raises(RuntimeError):
            asyncio.run(server.submit(query))

    def test_double_start_raises(self):
        engine, _, _ = build_engine()

        async def run():
            async with MaxBRSTkNNServer(engine) as server:
                with pytest.raises(RuntimeError):
                    await server.start()

        asyncio.run(run())

    def test_stop_drains_pending_queries(self):
        engine, rng, vocab = build_engine(seed=6)
        queries = make_queries(rng, vocab, 4)

        async def run():
            # A huge window: only the shutdown drain can flush in time.
            server = await MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=100, max_wait_ms=10_000.0)
            ).start()
            tasks = [asyncio.create_task(server.submit(q)) for q in queries]
            await asyncio.sleep(0.01)  # let submissions enqueue
            await server.stop()
            return await asyncio.gather(*tasks), server.stats

        results, stats = asyncio.run(run())
        assert len(results) == 4
        assert stats.drain_flushes >= 1
        assert stats.queries_completed == 4
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)

    def test_submit_after_stop_raises(self):
        engine, rng, vocab = build_engine()
        query = make_queries(rng, vocab, 1)[0]

        async def run():
            server = await MaxBRSTkNNServer(engine).start()
            await server.stop()
            with pytest.raises(RuntimeError):
                await server.submit(query)

        asyncio.run(run())

    def test_stop_without_start_is_a_noop(self):
        engine, _, _ = build_engine()
        asyncio.run(MaxBRSTkNNServer(engine).stop())


class TestErrors:
    def test_failing_batch_fails_the_futures_and_keeps_serving(self):
        engine, rng, vocab = build_engine(seed=7)  # no user tree
        queries = make_queries(rng, vocab, 2)
        bad = ServerConfig(
            max_batch=4, max_wait_ms=1.0, options=QueryOptions(mode="indexed")
        )

        async def run():
            async with MaxBRSTkNNServer(engine, bad) as server:
                with pytest.raises(ValueError, match="index_users"):
                    await asyncio.gather(*(server.submit(q) for q in queries))
                return server.stats

        stats = asyncio.run(run())
        assert stats.queries_failed >= 1
        assert stats.in_flight == 0

    def test_invalid_server_config(self):
        with pytest.raises(ValueError):
            ServerConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServerConfig(max_wait_ms=-1)
        with pytest.raises(ValueError):
            ServerConfig(pool_workers=-1)
        with pytest.raises(ValueError):
            ServerConfig(options="approx")

    @pytest.mark.parametrize("kwargs", [
        # bool is an int subclass: every integer knob must reject it
        # explicitly or True silently means 1.
        {"max_batch": True},
        {"pool_workers": True},
        {"max_wait_ms": True},
        {"auto_wait_ceiling_ms": True},
        {"shutdown_timeout_s": True},
        {"shutdown_timeout_s": 0},
        {"shutdown_timeout_s": float("nan")},
        {"cache": "yes"},
    ])
    def test_bool_and_invalid_scalars_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)

    def test_cache_flag_normalizes_to_policy(self):
        from repro.core.config import CachePolicy

        assert ServerConfig(cache=None).cache is None
        assert ServerConfig(cache=False).cache is None
        assert ServerConfig(cache=True).cache == CachePolicy()
        policy = CachePolicy(max_entries=7)
        assert ServerConfig(cache=policy).cache is policy


class TestCancellation:
    def test_cancelled_before_flush_dropped_unexecuted(self):
        engine, rng, vocab = build_engine(seed=10)
        queries = make_queries(rng, vocab, 6)
        executed = []
        real = engine.query_batch

        def spy(batch, *a, **kw):
            executed.append(len(batch))
            return real(batch, *a, **kw)

        engine.query_batch = spy

        async def run():
            # A huge window: nothing flushes before the cancellations land.
            server = await MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=100, max_wait_ms=10_000.0)
            ).start()
            tasks = [asyncio.create_task(server.submit(q)) for q in queries]
            await asyncio.sleep(0.01)  # let submissions enqueue
            for task in tasks[::2]:
                task.cancel()
            await server.stop()  # drain flush runs only the survivors
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return outcomes, server.stats

        outcomes, stats = asyncio.run(run())
        assert stats.queries_cancelled == 3
        assert stats.queries_completed == 3
        assert stats.queries_failed == 0
        assert stats.in_flight == 0
        assert executed == [3]  # cancelled queries never reached the engine
        reference = QueryOptions(backend="python")
        for i, (query, out) in enumerate(zip(queries, outcomes)):
            if i % 2 == 0:
                assert isinstance(out, asyncio.CancelledError)
            else:
                assert_result_equal(engine.query(query, reference), out)

    def test_fully_cancelled_batch_executes_nothing(self):
        engine, rng, vocab = build_engine(seed=11)
        queries = make_queries(rng, vocab, 3)
        engine.query_batch = lambda *a, **kw: pytest.fail(
            "a fully-cancelled batch must not execute"
        )

        async def run():
            server = await MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=100, max_wait_ms=10_000.0)
            ).start()
            tasks = [asyncio.create_task(server.submit(q)) for q in queries]
            await asyncio.sleep(0.01)
            for task in tasks:
                task.cancel()
            await server.stop()
            await asyncio.gather(*tasks, return_exceptions=True)
            return server.stats

        stats = asyncio.run(run())
        assert stats.queries_cancelled == 3
        assert stats.batches_executed == 0
        assert stats.in_flight == 0

    def test_cancelled_while_executing_counts_cancelled(self):
        import threading
        import time

        engine, rng, vocab = build_engine(seed=12)
        queries = make_queries(rng, vocab, 2)
        started = threading.Event()
        real = engine.query_batch

        def slow(batch, *a, **kw):
            started.set()
            time.sleep(0.05)  # hold the flush so the cancel lands mid-execute
            return real(batch, *a, **kw)

        engine.query_batch = slow

        async def run():
            server = await MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=2, max_wait_ms=0.0)
            ).start()
            tasks = [asyncio.create_task(server.submit(q)) for q in queries]
            while not started.is_set():
                await asyncio.sleep(0.001)
            tasks[0].cancel()
            await server.stop()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return outcomes, server.stats

        outcomes, stats = asyncio.run(run())
        assert stats.queries_cancelled == 1
        assert stats.queries_completed == 1
        assert stats.in_flight == 0
        assert isinstance(outcomes[0], asyncio.CancelledError)
        assert_result_equal(
            engine.query(queries[1], QueryOptions(backend="python")), outcomes[1]
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_cancellation_never_drifts_in_flight(self, seed):
        """Property: submitted == completed + failed + cancelled, always."""
        engine, rng, vocab = build_engine(seed=13)
        queries = make_queries(rng, vocab, 16, ks=(2, 3))
        decider = random.Random(200 + seed)
        cancel_mask = [decider.random() < 0.4 for _ in queries]

        async def run():
            server = await MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms=2.0)
            ).start()
            tasks = [asyncio.create_task(server.submit(q)) for q in queries]
            await asyncio.sleep(0)  # let submissions enqueue
            for task, cancel in zip(tasks, cancel_mask):
                if cancel:
                    task.cancel()
            await server.stop()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return outcomes, server.stats

        outcomes, stats = asyncio.run(run())
        assert stats.queries_submitted == len(queries)
        assert stats.queries_submitted == (
            stats.queries_completed
            + stats.queries_failed
            + stats.queries_cancelled
        )
        assert stats.in_flight == 0
        assert stats.queries_failed == 0
        reference = QueryOptions(backend="python")
        for query, cancelled, out in zip(queries, cancel_mask, outcomes):
            if not isinstance(out, asyncio.CancelledError):
                # Either never cancelled, or the cancel lost the race to
                # the flush — the answer must be right in both cases.
                assert_result_equal(engine.query(query, reference), out)
            else:
                assert cancelled


@pytest.mark.skipif(not HAS_FORK, reason="persistent pool requires fork")
class TestPersistentPool:
    def test_server_with_pool_matches_sequential(self):
        engine, rng, vocab = build_engine(seed=8)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        results, stats = serve_all(
            engine,
            queries,
            ServerConfig(max_batch=6, max_wait_ms=2.0, pool_workers=2),
        )
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)
        assert stats.queries_completed == 6

    def test_pool_direct_usage_and_close(self):
        engine, rng, vocab = build_engine(seed=9)
        pool = PersistentWorkerPool(engine.dataset, workers=2)
        try:
            queries = make_queries(rng, vocab, 4)
            batched = engine.query_batch(
                queries, QueryOptions(backend="python"), pool=pool
            )
            engine.clear_topk_cache()
            inprocess = engine.query_batch(queries, QueryOptions(backend="python"))
            for a, b in zip(inprocess, batched):
                assert_result_equal(a, b)
        finally:
            pool.close()
        with pytest.raises(RuntimeError):
            pool.run_selection([])

    def test_pool_rejects_bad_worker_count(self):
        engine, _, _ = build_engine()
        with pytest.raises(ValueError):
            PersistentWorkerPool(engine.dataset, workers=0)

    def test_stop_with_dead_worker_is_bounded(self):
        """A worker killed mid-life must not hang server.stop() forever."""
        import os
        import signal
        import time

        engine, _, _ = build_engine(seed=14)
        config = ServerConfig(
            pool_workers=1, max_wait_ms=0.0, shutdown_timeout_s=0.5
        )

        async def run():
            server = await MaxBRSTkNNServer(engine, config).start()
            victim = server._pool._pool._pool[0]
            # SIGSTOP is the harshest case: the worker never reads the
            # close sentinel AND leaves SIGTERM pending, so only the
            # SIGKILL escalation inside the bounded close can reap it.
            os.kill(victim.pid, signal.SIGSTOP)
            t0 = time.monotonic()
            with pytest.warns(RuntimeWarning, match="did not shut down"):
                await server.stop()
            assert time.monotonic() - t0 < 10.0

        asyncio.run(run())
