"""MaxBRSTkNNServer: micro-batching, equivalence, lifecycle, stats."""

import asyncio
import multiprocessing
import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, MaxBRSTkNNQuery, QueryOptions
from repro.model.objects import STObject
from repro.serve import MaxBRSTkNNServer, PersistentWorkerPool, ServerConfig
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def build_engine(seed=0, n_obj=60, n_users=12, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    dataset = Dataset(objects, users, relevance="LM", alpha=0.5)
    return MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4)), rng, vocab


def make_queries(rng, vocab, count, ks=(3,)):
    queries = []
    for i in range(count):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3)
                ],
                keywords=sorted(rng.sample(range(vocab), 5)),
                ws=2,
                k=ks[i % len(ks)],
            )
        )
    return queries


def assert_result_equal(a, b):
    assert a.location == b.location
    assert a.keywords == b.keywords
    assert a.brstknn == b.brstknn


def serve_all(engine, queries, config):
    """Start a server, submit everything concurrently, return results+stats."""

    async def run():
        async with MaxBRSTkNNServer(engine, config) as server:
            results = await server.submit_many(queries)
        return results, server.stats

    return asyncio.run(run())


class TestEquivalence:
    def test_concurrent_submissions_match_sequential(self):
        engine, rng, vocab = build_engine()
        queries = make_queries(rng, vocab, 8, ks=(3, 5))
        results, stats = serve_all(
            engine, queries, ServerConfig(max_batch=4, max_wait_ms=2.0)
        )
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)
        assert stats.queries_submitted == 8
        assert stats.queries_completed == 8
        assert stats.queries_failed == 0
        assert stats.in_flight == 0

    def test_interleaved_waves_match_sequential(self):
        engine, rng, vocab = build_engine(seed=4)
        queries = make_queries(rng, vocab, 9, ks=(2, 4, 6))

        async def run():
            async with MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms=1.0)
            ) as server:
                first = await server.submit_many(queries[:3])
                second = await server.submit_many(queries[3:])
            return first + second

        results = asyncio.run(run())
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)


class TestMicroBatching:
    def test_burst_collapses_into_one_batch(self):
        engine, rng, vocab = build_engine(seed=1)
        queries = make_queries(rng, vocab, 16)
        _, stats = serve_all(
            engine, queries, ServerConfig(max_batch=32, max_wait_ms=50.0)
        )
        assert stats.batches_executed == 1
        assert stats.largest_batch == 16

    def test_flush_on_max_batch(self):
        engine, rng, vocab = build_engine(seed=2)
        queries = make_queries(rng, vocab, 8)
        _, stats = serve_all(
            engine, queries, ServerConfig(max_batch=1, max_wait_ms=50.0)
        )
        assert stats.batches_executed == 8
        assert stats.full_flushes == 8
        assert stats.avg_batch_size == 1.0

    def test_flush_on_timeout(self):
        engine, rng, vocab = build_engine(seed=3)
        queries = make_queries(rng, vocab, 3)
        _, stats = serve_all(
            engine, queries, ServerConfig(max_batch=100, max_wait_ms=5.0)
        )
        assert stats.batches_executed >= 1
        assert stats.timeout_flushes >= 1
        assert stats.full_flushes == 0

    def test_zero_wait_still_batches_the_pending_burst(self):
        engine, rng, vocab = build_engine(seed=5)
        queries = make_queries(rng, vocab, 6)
        results, stats = serve_all(
            engine, queries, ServerConfig(max_batch=32, max_wait_ms=0.0)
        )
        assert len(results) == 6
        assert stats.queries_completed == 6
        # The gather enqueues all six before the flusher wakes: one batch.
        assert stats.batches_executed == 1


class TestLifecycle:
    def test_submit_before_start_raises(self):
        engine, rng, vocab = build_engine()
        server = MaxBRSTkNNServer(engine)
        query = make_queries(rng, vocab, 1)[0]
        with pytest.raises(RuntimeError):
            asyncio.run(server.submit(query))

    def test_double_start_raises(self):
        engine, _, _ = build_engine()

        async def run():
            async with MaxBRSTkNNServer(engine) as server:
                with pytest.raises(RuntimeError):
                    await server.start()

        asyncio.run(run())

    def test_stop_drains_pending_queries(self):
        engine, rng, vocab = build_engine(seed=6)
        queries = make_queries(rng, vocab, 4)

        async def run():
            # A huge window: only the shutdown drain can flush in time.
            server = await MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=100, max_wait_ms=10_000.0)
            ).start()
            tasks = [asyncio.create_task(server.submit(q)) for q in queries]
            await asyncio.sleep(0.01)  # let submissions enqueue
            await server.stop()
            return await asyncio.gather(*tasks), server.stats

        results, stats = asyncio.run(run())
        assert len(results) == 4
        assert stats.drain_flushes >= 1
        assert stats.queries_completed == 4
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)

    def test_submit_after_stop_raises(self):
        engine, rng, vocab = build_engine()
        query = make_queries(rng, vocab, 1)[0]

        async def run():
            server = await MaxBRSTkNNServer(engine).start()
            await server.stop()
            with pytest.raises(RuntimeError):
                await server.submit(query)

        asyncio.run(run())

    def test_stop_without_start_is_a_noop(self):
        engine, _, _ = build_engine()
        asyncio.run(MaxBRSTkNNServer(engine).stop())


class TestErrors:
    def test_failing_batch_fails_the_futures_and_keeps_serving(self):
        engine, rng, vocab = build_engine(seed=7)  # no user tree
        queries = make_queries(rng, vocab, 2)
        bad = ServerConfig(
            max_batch=4, max_wait_ms=1.0, options=QueryOptions(mode="indexed")
        )

        async def run():
            async with MaxBRSTkNNServer(engine, bad) as server:
                with pytest.raises(ValueError, match="index_users"):
                    await asyncio.gather(*(server.submit(q) for q in queries))
                return server.stats

        stats = asyncio.run(run())
        assert stats.queries_failed >= 1
        assert stats.in_flight == 0

    def test_invalid_server_config(self):
        with pytest.raises(ValueError):
            ServerConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServerConfig(max_wait_ms=-1)
        with pytest.raises(ValueError):
            ServerConfig(pool_workers=-1)
        with pytest.raises(ValueError):
            ServerConfig(options="approx")


@pytest.mark.skipif(not HAS_FORK, reason="persistent pool requires fork")
class TestPersistentPool:
    def test_server_with_pool_matches_sequential(self):
        engine, rng, vocab = build_engine(seed=8)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        results, stats = serve_all(
            engine,
            queries,
            ServerConfig(max_batch=6, max_wait_ms=2.0, pool_workers=2),
        )
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            assert_result_equal(engine.query(query, reference), served)
        assert stats.queries_completed == 6

    def test_pool_direct_usage_and_close(self):
        engine, rng, vocab = build_engine(seed=9)
        pool = PersistentWorkerPool(engine.dataset, workers=2)
        try:
            queries = make_queries(rng, vocab, 4)
            batched = engine.query_batch(
                queries, QueryOptions(backend="python"), pool=pool
            )
            engine.clear_topk_cache()
            inprocess = engine.query_batch(queries, QueryOptions(backend="python"))
            for a, b in zip(inprocess, batched):
                assert_result_equal(a, b)
        finally:
            pool.close()
        with pytest.raises(RuntimeError):
            pool.run_selection([])

    def test_pool_rejects_bad_worker_count(self):
        engine, _, _ = build_engine()
        with pytest.raises(ValueError):
            PersistentWorkerPool(engine.dataset, workers=0)
