"""Supervised pool recovery: every injected fault, deterministically.

The recovery ladder under test (:class:`PersistentWorkerPool`):

* worker death   -> ``WorkerCrashed``        -> respawn (new generation) + retry
* round hang     -> ``FlushDeadlineExceeded`` -> respawn + retry
* task exception -> ``ScatterTaskError``      -> plain retry (workers are fine)
* retries exhausted / pool broken -> a ``ScatterFailure`` the executor
  catches to run the round in-process (degraded, identical results)

Determinism comes from generation gating: worker-side faults are armed
only in generation 0 by default, so "fault -> respawn -> retry
succeeds" is a sequence, not a race.  Every recovery test asserts exact
health-counter values *and* bitwise result identity with in-process
execution.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro import QueryOptions
from repro.serve import (
    DeadlinePolicy,
    FaultPlan,
    FlushDeadlineExceeded,
    PersistentWorkerPool,
    PoolState,
    PoolUnavailable,
    RetryPolicy,
    WorkerCrashed,
)
from repro.serve.pool import PoolDispatch

from .conftest import assert_results_equal, build_dataset, build_engine, make_queries

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="PersistentWorkerPool requires the fork start method",
)

#: Fast supervision for tests: retry once, no backoff sleep, tight polls.
FAST_RETRY = RetryPolicy(max_retries=1, backoff_base_s=0.0)
FAST_DEADLINE = DeadlinePolicy(flush_deadline_s=10.0, poll_interval_s=0.01)
OPTIONS = QueryOptions(backend="python")


def run_identity(faults, *, deadline=FAST_DEADLINE, workers=2, seed=0):
    """One pooled batch under ``faults``; asserts identity with the
    in-process answer and returns (health, state-before-close, report)."""
    engine, rng, vocab = build_engine(seed=seed)
    queries = make_queries(rng, vocab, 8)
    reference = engine.query_batch(queries, OPTIONS)
    engine.clear_topk_cache()
    with PersistentWorkerPool(
        engine.dataset, workers,
        retry=FAST_RETRY, deadline=deadline, faults=faults,
    ) as pool:
        faulted = engine.query_batch(queries, OPTIONS, pool=pool)
        state = pool.health.state
        health = pool.health
    assert_results_equal(faulted, reference)
    return health, state, engine.last_flush_report


class TestRecoveryLadder:
    def test_worker_kill_respawns_and_retries_to_identity(self):
        health, state, report = run_identity(FaultPlan.kill_worker())
        assert state is PoolState.HEALTHY
        assert health.worker_deaths == 1
        assert health.respawns == 1
        assert health.retries == 1
        assert health.generation == 1
        assert health.deadline_hits == 0
        assert health.consecutive_failures == 0  # reset by the clean retry
        assert report.degraded_partitions == 0

    def test_hung_round_hits_deadline_then_recovers(self):
        health, state, report = run_identity(
            FaultPlan.hang_task(hang_s=30.0),
            deadline=DeadlinePolicy(flush_deadline_s=0.3, poll_interval_s=0.01),
        )
        assert state is PoolState.HEALTHY
        assert health.deadline_hits == 1
        assert health.respawns == 1
        assert health.retries == 1
        assert health.worker_deaths == 0
        assert report.degraded_partitions == 0

    def test_task_exception_retries_without_respawn(self):
        # One worker, so its task counter is deterministic: task 0
        # raises, the retry re-runs every chunk at indices >= 1.
        health, state, report = run_identity(
            FaultPlan(exception_on_task=0), workers=1
        )
        assert state is PoolState.HEALTHY
        assert health.retries == 1
        assert health.respawns == 0
        assert health.worker_deaths == 0
        assert health.generation == 0  # the workers were never torn down
        assert report.degraded_partitions == 0

    def test_persistent_dispatch_failure_degrades_round_in_process(self):
        # Dispatch fails in every generation: retry ladder exhausts
        # (respawn succeeds, re-dispatch fails again) and the executor
        # runs the round in-process — results still identical.
        health, state, report = run_identity(
            FaultPlan(break_dispatch=True, generations=None)
        )
        assert state is PoolState.HEALTHY  # the respawn itself worked
        assert health.respawns == 1
        assert health.retries == 1
        assert report.degraded_partitions == 1

    def test_broken_pool_is_terminal_and_skipped(self):
        engine, rng, vocab = build_engine(seed=1)
        queries = make_queries(rng, vocab, 8)
        reference = engine.query_batch(queries, OPTIONS)
        engine.clear_topk_cache()
        with PersistentWorkerPool(
            engine.dataset, 2,
            retry=FAST_RETRY, deadline=FAST_DEADLINE,
            faults=FaultPlan.pool_loss(),
        ) as pool:
            # Dispatch fails, then the respawn fails too: BROKEN.
            first = engine.query_batch(queries, OPTIONS, pool=pool)
            assert engine.last_flush_report.degraded_partitions == 1
            assert pool.health.state is PoolState.BROKEN
            assert not pool.available
            with pytest.raises(PoolUnavailable):
                pool.respawn()
            # A broken pool is skipped outright on later flushes
            # (degraded before any dispatch), never revived.
            engine.clear_topk_cache()
            second = engine.query_batch(queries, OPTIONS, pool=pool)
        assert_results_equal(first, reference)
        assert_results_equal(second, reference)


class TestBackoff:
    def test_backoff_is_capped_exponential(self):
        retry = RetryPolicy(max_retries=2, backoff_base_s=0.1, backoff_cap_s=0.4)
        assert retry.backoff_s(0) == pytest.approx(0.1)
        assert retry.backoff_s(1) == pytest.approx(0.1)
        assert retry.backoff_s(2) == pytest.approx(0.2)
        assert retry.backoff_s(3) == pytest.approx(0.4)
        assert retry.backoff_s(10) == pytest.approx(0.4)  # capped


class _NeverReady:
    """Stand-in async result that never completes: the pre-supervision
    pool would block on it forever; collect() must not."""

    def ready(self):
        return False

    def wait(self, timeout):
        time.sleep(min(timeout, 0.001))


def _ticket(pool, deadline_s=None, generation=None):
    return PoolDispatch(
        async_result=_NeverReady(),
        payloads=[],
        kind="shard",
        generation=pool.health.generation if generation is None else generation,
        deadline_s=deadline_s,
    )


class TestCollectSupervision:
    """collect() raises typed failures instead of hanging."""

    def test_worker_death_is_detected_not_waited_out(self):
        dataset, _, _ = build_dataset(seed=2)
        with PersistentWorkerPool(
            dataset, 2, retry=FAST_RETRY, deadline=FAST_DEADLINE
        ) as pool:
            victim = pool._pool._pool[0]
            os.kill(victim.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashed):
                pool.collect(_ticket(pool, deadline_s=10.0))
            assert pool.health.worker_deaths == 1
            # Recovery: a respawn leaves the pool dispatchable again.
            pool.respawn()
            assert pool.health.state is PoolState.HEALTHY
            assert pool.available

    def test_deadline_is_typed_and_counted(self):
        dataset, _, _ = build_dataset(seed=2)
        with PersistentWorkerPool(
            dataset, 1, retry=FAST_RETRY, deadline=FAST_DEADLINE
        ) as pool:
            with pytest.raises(FlushDeadlineExceeded):
                pool.collect(_ticket(pool, deadline_s=0.05))
            assert pool.health.deadline_hits == 1

    def test_stale_generation_raises_pool_unavailable(self):
        dataset, _, _ = build_dataset(seed=2)
        with PersistentWorkerPool(
            dataset, 1, retry=FAST_RETRY, deadline=FAST_DEADLINE
        ) as pool:
            stale = _ticket(pool)
            pool.respawn()  # the round's workers are gone with its generation
            with pytest.raises(PoolUnavailable):
                pool.collect(stale)


class TestCloseLifecycle:
    def test_double_close_is_a_noop(self):
        dataset, _, _ = build_dataset(seed=3)
        pool = PersistentWorkerPool(dataset, 1)
        pool.close(timeout_s=10.0)
        pool.close(timeout_s=10.0)  # must not raise
        assert pool.health.state is PoolState.CLOSED

    def test_close_during_respawn_window_does_not_raise(self):
        # Mid-respawn the worker set is torn down (_pool is None);
        # close() arriving in that window must still succeed.
        dataset, _, _ = build_dataset(seed=3)
        pool = PersistentWorkerPool(dataset, 1)
        raw, pool._pool = pool._pool, None
        pool.health.state = PoolState.RESPAWNING
        pool.close(timeout_s=1.0)
        assert pool.health.state is PoolState.CLOSED
        raw.terminate()
        raw.join()

    def test_after_close_every_entry_point_is_typed_unavailable(self):
        dataset, _, _ = build_dataset(seed=3)
        pool = PersistentWorkerPool(dataset, 1)
        pool.close(timeout_s=10.0)
        with pytest.raises(PoolUnavailable):
            pool.dispatch([])
        with pytest.raises(PoolUnavailable):
            pool.run_selection([])
        with pytest.raises(PoolUnavailable):
            pool.run_shard_tasks_async([])
        with pytest.raises(PoolUnavailable):
            pool.respawn()
        assert not pool.available
