"""Adaptive micro-batching: the EWMA wait controller (fake clock)."""

import asyncio
import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, QueryOptions
from repro.serve import (
    AdaptiveWaitController,
    MaxBRSTkNNServer,
    ServerConfig,
)

from ..conftest import make_random_objects, make_random_users
from .test_server import make_queries


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def tick(self, seconds):
        self.now += seconds
        return self.now


class TestController:
    def test_no_signal_waits_the_full_ceiling(self):
        ctl = AdaptiveWaitController(ceiling_ms=10.0, max_batch=8)
        assert ctl.window_ms() == 10.0
        ctl.observe(1.0)  # a single arrival still gives no inter-arrival
        assert ctl.window_ms() == 10.0

    def test_fast_arrivals_shrink_the_window(self):
        clock = FakeClock()
        ctl = AdaptiveWaitController(ceiling_ms=10.0, max_batch=4)
        ctl.observe(clock.now)
        for _ in range(50):
            ctl.observe(clock.tick(0.001))  # 1 ms apart
        assert ctl.ewma_ms == pytest.approx(1.0, rel=0.05)
        # time to fill the batch: ~ (max_batch - 1) * ewma
        assert ctl.window_ms() == pytest.approx(3.0, rel=0.1)

    def test_sparse_arrivals_collapse_to_zero(self):
        clock = FakeClock()
        ctl = AdaptiveWaitController(ceiling_ms=10.0, max_batch=8)
        ctl.observe(clock.now)
        for _ in range(10):
            ctl.observe(clock.tick(1.0))  # 1 s apart >> 10 ms budget
        assert ctl.window_ms() == 0.0

    def test_window_clamped_to_ceiling(self):
        clock = FakeClock()
        ctl = AdaptiveWaitController(ceiling_ms=10.0, max_batch=1000)
        ctl.observe(clock.now)
        for _ in range(20):
            ctl.observe(clock.tick(0.005))  # 5 ms * 999 would be ~5 s
        assert ctl.window_ms() == 10.0

    def test_idle_gap_does_not_poison_the_next_burst(self):
        clock = FakeClock()
        ctl = AdaptiveWaitController(ceiling_ms=10.0, max_batch=32)
        ctl.observe(clock.now)
        for _ in range(20):
            ctl.observe(clock.tick(0.001))  # steady 1 ms stream
        ctl.observe(clock.tick(5.0))  # 5 s idle gap (capped at ceiling)
        assert ctl.ewma_ms <= 10.0
        for _ in range(3):
            ctl.observe(clock.tick(0.001))
        # a few post-gap arrivals restore a useful window
        assert 0.0 < ctl.window_ms() <= 10.0

    def test_ewma_tracks_rate_changes(self):
        clock = FakeClock()
        ctl = AdaptiveWaitController(ceiling_ms=50.0, max_batch=4, smoothing=0.5)
        ctl.observe(clock.now)
        for _ in range(20):
            ctl.observe(clock.tick(0.020))  # 20 ms apart
        slow = ctl.window_ms()
        for _ in range(20):
            ctl.observe(clock.tick(0.001))  # burst at 1 ms
        assert ctl.window_ms() < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWaitController(-1.0, 4)
        with pytest.raises(ValueError):
            AdaptiveWaitController(1.0, 0)
        with pytest.raises(ValueError):
            AdaptiveWaitController(1.0, 4, smoothing=0.0)


class TestConfig:
    def test_auto_accepted_and_fixed_numbers_still_work(self):
        assert ServerConfig(max_wait_ms="auto").adaptive
        assert not ServerConfig(max_wait_ms=2.0).adaptive
        ctl = ServerConfig(max_wait_ms="auto", auto_wait_ceiling_ms=7.5,
                           max_batch=16).make_wait_controller()
        assert ctl.ceiling_ms == 7.5
        assert ctl.max_batch == 16

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            ServerConfig(max_wait_ms="soon")
        with pytest.raises(ValueError):
            ServerConfig(max_wait_ms=-1.0)
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="finite"):
                ServerConfig(max_wait_ms=bad)
            with pytest.raises(ValueError, match="finite"):
                ServerConfig(max_wait_ms="auto", auto_wait_ceiling_ms=bad)
            with pytest.raises(ValueError, match="finite"):
                AdaptiveWaitController(bad, 4)
        with pytest.raises(ValueError):
            ServerConfig(max_wait_ms="auto", auto_wait_ceiling_ms=-1.0)
        with pytest.raises(ValueError, match="fixed"):
            ServerConfig(max_wait_ms=2.0).make_wait_controller()


class TestServerAutoMode:
    def test_auto_server_serves_and_reports_window(self):
        rng = random.Random(11)
        dataset = Dataset(
            make_random_objects(60, 16, rng),
            make_random_users(12, 16, rng),
            relevance="LM",
            alpha=0.5,
        )
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        queries = make_queries(rng, 16, 8, ks=(3,))

        async def run():
            async with MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms="auto")
            ) as server:
                results = await server.submit_many(queries)
                return results, server.stats_snapshot()

        results, snapshot = asyncio.run(run())
        assert len(results) == 8
        assert "adaptive_wait_ms" in snapshot
        reference = QueryOptions(backend="python")
        for query, served in zip(queries, results):
            solo = engine.query(query, reference)
            assert solo.location == served.location
            assert solo.keywords == served.keywords
            assert solo.brstknn == served.brstknn
