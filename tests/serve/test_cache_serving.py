"""Cross-flush result cache behind the server: identity + accounting.

The headline property: with the cache on, repeated traffic is answered
from the LRU — and every answer (hit or miss) is *identical* to a
fresh sequential engine's, across modes and shard counts.  A cache
keying bug (missing an answer-relevant field) would surface here as a
wrong cached answer; an invalidation bug as a hit after an epoch bump.
"""

import asyncio
import random

import pytest

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, QueryOptions
from repro.core.config import CachePolicy
from repro.serve import MaxBRSTkNNServer, ServerConfig, make_engine

from ..conftest import make_random_objects, make_random_users
from .test_server import assert_result_equal, make_queries


def build_dataset(seed=0, n_obj=60, n_users=16, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    return Dataset(objects, users, relevance="LM", alpha=0.5), rng, vocab


def serve_waves(engine, config, waves, between=None):
    """Serve each wave through one server; ``between`` runs after wave 1."""

    async def run():
        outs = []
        async with MaxBRSTkNNServer(engine, config) as server:
            for i, wave in enumerate(waves):
                outs.append(await server.submit_many(wave))
                if between is not None and i == 0:
                    between()
            return outs, server.stats, server.stats_snapshot()

    return asyncio.run(run())


class TestCachedServingIdentity:
    @pytest.mark.parametrize("mode", ["joint", "indexed"])
    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_repeat_wave_hits_and_stays_identical(self, mode, num_shards):
        dataset, rng, vocab = build_dataset(seed=num_shards)
        engine = make_engine(
            dataset,
            EngineConfig(
                fanout=4,
                index_users=(mode == "indexed"),
                num_shards=num_shards,
            ),
        )
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        config = ServerConfig(
            max_batch=32,
            max_wait_ms=2.0,
            options=QueryOptions(mode=mode),
            cache=True,
        )
        (first, second), stats, snap = serve_waves(
            engine, config, [queries, queries]
        )
        assert stats.cache_misses == len(queries)
        assert stats.cache_hits == len(queries)
        assert snap["cache_entries"] == len(queries)
        # Fresh sequential reference: no pools, caches or memos shared
        # with the served engine.
        ref = MaxBRSTkNNEngine(
            dataset, EngineConfig(fanout=4, index_users=(mode == "indexed"))
        )
        reference = QueryOptions(mode=mode, backend="python")
        for query, a, b in zip(queries, first, second):
            solo = ref.query(query, reference)
            assert_result_equal(solo, a)
            assert_result_equal(solo, b)

    def test_epoch_bump_invalidates_between_waves(self):
        dataset, rng, vocab = build_dataset(seed=5)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        queries = make_queries(rng, vocab, 4)
        (first, second), stats, _ = serve_waves(
            engine,
            ServerConfig(max_wait_ms=2.0, cache=True),
            [queries, queries],
            between=dataset.bump_epoch,
        )
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2 * len(queries)
        reference = QueryOptions(backend="python")
        for query, a, b in zip(queries, first, second):
            solo = engine.query(query, reference)
            assert_result_equal(solo, a)
            assert_result_equal(solo, b)

    def test_lru_evictions_are_counted(self):
        dataset, rng, vocab = build_dataset(seed=6)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        queries = make_queries(rng, vocab, 6)
        _, stats, snap = serve_waves(
            engine,
            ServerConfig(max_wait_ms=2.0, cache=CachePolicy(max_entries=2)),
            [queries],
        )
        assert stats.cache_evictions == len(queries) - 2
        assert snap["cache_entries"] == 2

    def test_threshold_warm_tier_counts_already_walked_ks(self):
        dataset, rng, vocab = build_dataset(seed=7)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        wave1 = make_queries(rng, vocab, 4, ks=(5,))
        wave2 = make_queries(rng, vocab, 4, ks=(3,))  # distinct; k under 5
        _, stats, _ = serve_waves(
            engine,
            ServerConfig(max_batch=32, max_wait_ms=2.0, cache=True),
            [wave1, wave2],
        )
        # Wave 1 flushed against a cold engine (no memoized pool yet);
        # wave 2's misses all land under the k=5 walk it left behind.
        assert stats.cache_misses == 8
        assert stats.cache_threshold_hits == len(wave2)

    def test_threshold_tracking_can_be_disabled(self):
        dataset, rng, vocab = build_dataset(seed=8)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        wave1 = make_queries(rng, vocab, 3, ks=(5,))
        wave2 = make_queries(rng, vocab, 3, ks=(3,))
        _, stats, _ = serve_waves(
            engine,
            ServerConfig(
                max_wait_ms=2.0, cache=CachePolicy(track_thresholds=False)
            ),
            [wave1, wave2],
        )
        assert stats.cache_threshold_hits == 0

    def test_uncached_server_reports_no_cache_entries(self):
        dataset, rng, vocab = build_dataset(seed=9)
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        queries = make_queries(rng, vocab, 3)
        _, stats, snap = serve_waves(
            engine, ServerConfig(max_wait_ms=2.0), [queries, queries]
        )
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0
        assert "cache_entries" not in snap
