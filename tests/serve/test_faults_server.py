"""Server-level fault recovery: identity under injected faults, typed
admission/shutdown failures, exact recovery counters.

The acceptance bar: under every injected fault the server keeps
answering, the answers are bitwise-identical to a fresh sequential
engine, and ``ServerStats`` reports exactly what recovery work was done
(respawns, retries, degraded flushes, shed requests).
"""

import asyncio
import multiprocessing

import pytest

from repro import EngineConfig, MaxBRSTkNNEngine, QueryOptions
from repro.serve import (
    DeadlinePolicy,
    FaultPlan,
    MaxBRSTkNNServer,
    RetryPolicy,
    ServerConfig,
    ServerOverloaded,
    ServerStopped,
)

from .conftest import assert_results_equal, build_engine, make_queries

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

FAST_RETRY = RetryPolicy(max_retries=1, backoff_base_s=0.0)
FAST_DEADLINE = DeadlinePolicy(flush_deadline_s=10.0, poll_interval_s=0.01)


def serve_all(engine, queries, config):
    """Start a server, submit everything concurrently, return
    (results, stats, snapshot-taken-while-running)."""

    async def run():
        async with MaxBRSTkNNServer(engine, config) as server:
            results = await server.submit_many(queries)
            snap = server.stats_snapshot()
        return results, server.stats, snap

    return asyncio.run(run())


def reference_results(engine, queries):
    """A fresh sequential engine over the same dataset: the identity bar."""
    fresh = MaxBRSTkNNEngine(engine.dataset, EngineConfig(fanout=4))
    options = QueryOptions(backend="python")
    return [fresh.query(query, options) for query in queries]


@pytest.mark.skipif(not HAS_FORK, reason="persistent pool requires fork")
class TestPooledRecovery:
    def test_worker_kill_recovers_with_identity_and_exact_counts(self):
        engine, rng, vocab = build_engine()
        queries = make_queries(rng, vocab, 8)
        reference = reference_results(engine, queries)
        results, stats, snap = serve_all(
            engine, queries,
            ServerConfig(
                max_batch=8, max_wait_ms=5.0, pool_workers=2,
                retry=FAST_RETRY, deadline=FAST_DEADLINE,
                faults=FaultPlan.kill_worker(),
            ),
        )
        assert_results_equal(results, reference)
        assert stats.queries_completed == 8
        assert stats.queries_failed == 0
        assert stats.in_flight == 0
        # Exactly one round was killed, respawned and retried; nothing
        # was degraded — the retry answered on the fresh generation.
        assert stats.worker_deaths == 1
        assert stats.pool_respawns == 1
        assert stats.flush_retries == 1
        assert stats.degraded_flushes == 0
        assert snap["pool_health"][0]["pool"] == "selection"
        assert snap["pool_health"][0]["state"] == "healthy"

    def test_hung_flush_recovers_via_deadline(self):
        engine, rng, vocab = build_engine(seed=1)
        queries = make_queries(rng, vocab, 8)
        reference = reference_results(engine, queries)
        results, stats, _ = serve_all(
            engine, queries,
            ServerConfig(
                max_batch=8, max_wait_ms=5.0, pool_workers=2,
                retry=FAST_RETRY,
                deadline=DeadlinePolicy(
                    flush_deadline_s=0.3, poll_interval_s=0.01
                ),
                faults=FaultPlan.hang_task(hang_s=30.0),
            ),
        )
        assert_results_equal(results, reference)
        assert stats.queries_failed == 0
        assert stats.deadline_hits == 1
        assert stats.pool_respawns == 1
        assert stats.flush_retries == 1
        assert stats.degraded_flushes == 0

    def test_pool_loss_degrades_flushes_but_keeps_identity(self):
        engine, rng, vocab = build_engine(seed=2)
        queries = make_queries(rng, vocab, 8)
        reference = reference_results(engine, queries)
        results, stats, snap = serve_all(
            engine, queries,
            ServerConfig(
                max_batch=8, max_wait_ms=5.0, pool_workers=2,
                retry=FAST_RETRY, deadline=FAST_DEADLINE,
                faults=FaultPlan.pool_loss(),
            ),
        )
        assert_results_equal(results, reference)
        assert stats.queries_failed == 0
        assert stats.degraded_flushes >= 1
        assert snap["pool_health"][0]["state"] == "broken"


class TestDegradedStart:
    def test_pool_startup_failure_degrades_to_in_process(self, monkeypatch):
        engine, rng, vocab = build_engine(seed=3)
        queries = make_queries(rng, vocab, 6)
        reference = reference_results(engine, queries)

        def boom(*args, **kwargs):
            raise RuntimeError("fork refused")

        monkeypatch.setattr("repro.serve.server.PersistentWorkerPool", boom)

        async def run():
            server = MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms=2.0, pool_workers=2)
            )
            with pytest.warns(RuntimeWarning, match="degrades to in-process"):
                await server.start()
            try:
                results = await server.submit_many(queries)
            finally:
                await server.stop()
            return results, server.stats

        results, stats = asyncio.run(run())
        assert_results_equal(results, reference)
        assert stats.queries_completed == 6
        assert stats.queries_failed == 0
        # Pools never came up: every executed flush counts as degraded.
        assert stats.batches_executed >= 1
        assert stats.degraded_flushes == stats.batches_executed


class TestAdmissionControl:
    def test_overflow_sheds_typed_with_exact_counters(self):
        engine, rng, vocab = build_engine(seed=4)
        queries = make_queries(rng, vocab, 5)
        reference = reference_results(engine, queries)

        async def run():
            async with MaxBRSTkNNServer(
                engine,
                ServerConfig(max_batch=8, max_wait_ms=100.0, max_pending=3),
            ) as server:
                tasks = [
                    asyncio.create_task(server.submit(query))
                    for query in queries[:3]
                ]
                await asyncio.sleep(0.01)  # let the three enqueue
                with pytest.raises(ServerOverloaded):
                    await server.submit(queries[3])
                assert server.stats.queries_shed == 1
                first = await asyncio.gather(*tasks)
                # The queue drained: admission opens again.
                extra = await server.submit(queries[4])
            return first, extra, server.stats

        first, extra, stats = asyncio.run(run())
        assert_results_equal(first, reference[:3])
        assert_results_equal([extra], [reference[4]])
        assert stats.queries_shed == 1
        assert stats.queries_submitted == 4  # the shed one never entered
        assert stats.queries_completed == 4
        assert stats.queries_failed == 0
        assert stats.in_flight == 0


class _FlusherCrash(BaseException):
    """A non-Exception failure (like KeyboardInterrupt) that kills the
    flusher task outright instead of failing one batch.  Deliberately
    NOT KeyboardInterrupt itself: asyncio re-raises that one out of the
    running event loop, which would abort the test session rather than
    exercise the server's crash handling."""


class TestStopSemantics:
    def test_crashed_flusher_strands_no_futures(self):
        # A flusher killed by a BaseException pops its batch off the
        # queue before dying; stop() must still fail both that batch's
        # futures and everything queued afterwards — typed, not hung.
        engine, rng, vocab = build_engine(seed=5)
        first, second = make_queries(rng, vocab, 2)

        async def run():
            server = MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=2, max_wait_ms=0.0)
            )
            await server.start()

            def boom(*args, **kwargs):
                raise _FlusherCrash("injected flusher crash")

            server.engine.query_batch = boom
            in_flush = asyncio.create_task(server.submit(first))
            await asyncio.sleep(0.05)  # flusher flushes and dies
            queued = asyncio.create_task(server.submit(second))
            await asyncio.sleep(0.01)
            with pytest.raises(_FlusherCrash):
                await server.stop()
            with pytest.raises(ServerStopped):
                await in_flush
            with pytest.raises(ServerStopped):
                await queued
            return server.stats

        stats = asyncio.run(run())
        assert stats.queries_failed == 2
        assert stats.in_flight == 0

    def test_submit_while_stopping_is_typed(self):
        engine, rng, vocab = build_engine(seed=6)
        (query,) = make_queries(rng, vocab, 1)

        async def run():
            server = MaxBRSTkNNServer(
                engine, ServerConfig(max_wait_ms=0.0)
            )
            await server.start()
            stopping = asyncio.create_task(server.stop())
            await asyncio.sleep(0)
            with pytest.raises(ServerStopped):
                await server.submit(query)
            await stopping

        asyncio.run(run())
