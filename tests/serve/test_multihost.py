"""Multi-host scatter: identity and fault recovery over real sockets.

Shard hosts run as embedded asyncio servers on background threads —
real TCP, real frames, real failure modes (a stopped thread looks like
a killed host process to the coordinator) — with the same shard
dataset replicas the engine holds, which is exactly what a spawned
``repro shard-host`` process reconstructs from the workload spec.

The acceptance bar everywhere: results bitwise-identical to a fresh
sequential engine, whatever the transport did to get there.
"""

import asyncio
import threading

import pytest

from repro import EngineConfig, MaxBRSTkNNEngine
from repro.core.config import QueryOptions
from repro.serve import (
    DeadlinePolicy,
    FaultPlan,
    MaxBRSTkNNServer,
    RetryPolicy,
    ServerConfig,
    ShardHost,
    ShardedEngine,
)

from .conftest import assert_results_equal, build_dataset, make_queries

OPTS = QueryOptions(method="approx", mode="joint", backend="python")
FAST = DeadlinePolicy(flush_deadline_s=5.0, poll_interval_s=0.01)


class HostThread:
    """One embedded shard host on its own thread + event loop."""

    def __init__(self, host: ShardHost):
        self.host = host
        self.loop = None
        self.port = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "shard host failed to bind"

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.port = self.loop.run_until_complete(self.host.start())
        self._ready.set()
        try:
            self.loop.run_until_complete(self.host.serve_forever())
        except (asyncio.CancelledError, RuntimeError):
            pass  # cancelled at stop()
        finally:
            self.loop.close()

    def stop(self):
        """Kill the host: every handler dies, connections reset."""
        if self.loop.is_closed():
            return

        def _cancel():
            for task in asyncio.all_tasks(self.loop):
                task.cancel()

        self.loop.call_soon_threadsafe(_cancel)
        self.thread.join(10)


def sharded_with_hosts(num_shards, num_hosts, seed=0, fault_on_host=None,
                       **dataset_kwargs):
    """A ShardedEngine plus ``num_hosts`` embedded hosts over its shards.

    The hosts hold the engine's own shard datasets — byte-identical
    replicas, the in-process analog of a shard-host process rebuilding
    them from the workload spec.
    """
    dataset, rng, vocab = build_dataset(seed, **dataset_kwargs)
    engine = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=num_shards))
    replicas = {
        shard.shard_id: shard.engine.dataset for shard in engine.shards
    }
    hosts = []
    for i in range(num_hosts):
        fault = fault_on_host.get(i) if fault_on_host else None
        hosts.append(HostThread(ShardHost(replicas, dataset, fault=fault)))
    return engine, hosts, rng, vocab


def connect(engine, hosts, retry=None, deadline=FAST):
    engine.connect_hosts(
        [f"127.0.0.1:{h.port}" for h in hosts],
        retry=retry if retry is not None else RetryPolicy(max_retries=2),
        deadline=deadline,
    )


def teardown(engine, hosts):
    engine.close_hosts()
    for h in hosts:
        h.stop()


def reference_results(dataset, queries, engine, mode="joint"):
    ref = MaxBRSTkNNEngine(
        dataset,
        EngineConfig(fanout=4, index_users=(mode == "indexed")),
        object_tree=engine.object_tree,
    )
    opts = QueryOptions(method="approx", mode=mode, backend="python")
    return [ref.query(q, opts) for q in queries]


# ----------------------------------------------------------------------
# Identity: shard counts x host counts x modes x mixed k
# ----------------------------------------------------------------------

@pytest.mark.parametrize("num_shards,num_hosts", [(2, 2), (4, 4), (4, 2)])
def test_socket_scatter_matches_sequential(num_shards, num_hosts):
    engine, hosts, rng, vocab = sharded_with_hosts(num_shards, num_hosts)
    try:
        connect(engine, hosts)
        queries = make_queries(rng, vocab, 8, ks=(3, 5))
        served = engine.query_batch(queries, OPTS)
        report = engine.last_flush_report
        assert report.degraded_partitions == 0
        assert report.total_retries == 0
        scatter = {s.stage: s for s in report.stages}
        assert scatter["refine"].scatter_width == num_shards
        assert scatter["refine"].payload_bytes_out > 0
        assert scatter["refine"].payload_bytes_in > 0
        assert_results_equal(
            served, reference_results(engine.dataset, queries, engine)
        )
    finally:
        teardown(engine, hosts)


def test_socket_scatter_indexed_mode_matches_sequential():
    dataset, rng, vocab = build_dataset(3)
    engine = ShardedEngine(
        dataset, EngineConfig(fanout=4, num_shards=2, index_users=True)
    )
    replicas = {s.shard_id: s.engine.dataset for s in engine.shards}
    hosts = [HostThread(ShardHost(replicas, dataset)) for _ in range(2)]
    try:
        connect(engine, hosts)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        opts = QueryOptions(method="approx", mode="indexed", backend="python")
        served = engine.query_batch(queries, opts)
        assert_results_equal(
            served,
            reference_results(engine.dataset, queries, engine, mode="indexed"),
        )
    finally:
        teardown(engine, hosts)


def test_socket_scatter_memoizes_refine_across_flushes():
    engine, hosts, rng, vocab = sharded_with_hosts(2, 2, seed=5)
    try:
        connect(engine, hosts)
        first = make_queries(rng, vocab, 4, ks=(3,))
        second = make_queries(rng, vocab, 4, ks=(3,))
        engine.query_batch(first, OPTS)
        engine.query_batch(second, OPTS)
        report = engine.last_flush_report
        refine = next(s for s in report.stages if s.stage == "refine")
        # k=3 was merged on the first flush; the second ships nothing.
        assert refine.scatter_width == 0
        assert refine.payload_bytes_out == 0
    finally:
        teardown(engine, hosts)


def test_host_death_rescatters_to_survivor():
    engine, hosts, rng, vocab = sharded_with_hosts(2, 2, seed=1)
    try:
        connect(engine, hosts)
        warm = make_queries(rng, vocab, 4, ks=(3,))
        engine.query_batch(warm, OPTS)
        hosts[0].stop()  # killed host: connections reset mid-round
        queries = make_queries(rng, vocab, 4, ks=(5,))
        served = engine.query_batch(queries, OPTS)
        report = engine.last_flush_report
        assert report.total_retries >= 1
        assert report.degraded_partitions == 0
        counters = engine.fault_counters()
        assert counters["worker_deaths"] == 1
        assert counters["retries"] >= 1
        assert_results_equal(
            served, reference_results(engine.dataset, queries, engine)
        )
    finally:
        teardown(engine, hosts)


def test_all_hosts_dead_degrades_in_process():
    engine, hosts, rng, vocab = sharded_with_hosts(2, 2, seed=2)
    try:
        connect(engine, hosts)
        for h in hosts:
            h.stop()
        queries = make_queries(rng, vocab, 4, ks=(3, 5))
        served = engine.query_batch(queries, OPTS)
        report = engine.last_flush_report
        assert report.degraded_partitions > 0
        assert engine.fault_counters()["worker_deaths"] == 2
        assert_results_equal(
            served, reference_results(engine.dataset, queries, engine)
        )
    finally:
        teardown(engine, hosts)


def test_heartbeat_marks_dead_and_resurrects():
    engine, hosts, rng, vocab = sharded_with_hosts(2, 2, seed=4)
    try:
        connect(engine, hosts)
        registry = engine._registry
        assert all(registry.ping_all().values())
        hosts[1].stop()
        sweep = registry.ping_all()
        assert sweep[f"127.0.0.1:{hosts[1].port}"] is False
        assert len(registry.alive_hosts()) == 1
        assert registry.counters["worker_deaths"] == 1
    finally:
        teardown(engine, hosts)


def test_connect_hosts_excludes_fork_pools():
    engine, hosts, rng, vocab = sharded_with_hosts(2, 1, seed=6)
    try:
        connect(engine, hosts)
        with pytest.raises(RuntimeError, match="hosts are connected"):
            engine.start_pools(1)
        engine.close_hosts()
        engine.start_pools(1)
        with pytest.raises(RuntimeError, match="pools are running"):
            engine.connect_hosts([f"127.0.0.1:{hosts[0].port}"])
        engine.close_pools()
    finally:
        engine.close_pools()
        engine.close_hosts()
        for h in hosts:
            h.stop()


# ----------------------------------------------------------------------
# Socket faults through the server (exact ServerStats counters)
# ----------------------------------------------------------------------

def serve_over_sockets(engine, hosts, queries, retry=None):
    """Run one served batch over the socket transport; returns
    ``(results, stats_snapshot)``."""
    connect(engine, hosts, retry=retry)
    config = ServerConfig(
        max_batch=len(queries), max_wait_ms=50.0, pool_workers=0,
        options=OPTS, deadline=FAST,
    )

    async def run():
        async with MaxBRSTkNNServer(engine, config) as server:
            results = await server.submit_many(queries)
            return results, server.stats_snapshot()

    return asyncio.run(run())


def test_drop_connection_fault_recovers_via_rescatter():
    engine, hosts, rng, vocab = sharded_with_hosts(
        2, 2, seed=7, fault_on_host={0: FaultPlan.drop_connection(0)}
    )
    try:
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        served, stats = serve_over_sockets(engine, hosts, queries)
        assert stats["worker_deaths"] == 1
        assert stats["flush_retries"] >= 1
        assert stats["degraded_flushes"] == 0
        assert stats["deadline_hits"] == 0
        assert stats["bytes_shipped"] > 0
        assert_results_equal(
            served, reference_results(engine.dataset, queries, engine)
        )
    finally:
        teardown(engine, hosts)


def test_stall_read_fault_hits_deadline_then_recovers():
    engine, hosts, rng, vocab = sharded_with_hosts(
        2, 2, seed=8,
        fault_on_host={0: FaultPlan.stall_read(0, stall_s=30.0)},
    )
    try:
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        engine.connect_hosts(
            [f"127.0.0.1:{h.port}" for h in hosts],
            retry=RetryPolicy(max_retries=2),
            deadline=DeadlinePolicy(flush_deadline_s=0.5, poll_interval_s=0.01),
        )
        config = ServerConfig(
            max_batch=len(queries), max_wait_ms=50.0, pool_workers=0,
            options=OPTS,
        )

        async def run():
            async with MaxBRSTkNNServer(engine, config) as server:
                results = await server.submit_many(queries)
                return results, server.stats_snapshot()

        served, stats = asyncio.run(run())
        assert stats["deadline_hits"] == 1
        assert stats["worker_deaths"] == 1  # the stalled host left rotation
        assert stats["flush_retries"] >= 1
        assert stats["degraded_flushes"] == 0
        assert_results_equal(
            served, reference_results(engine.dataset, queries, engine)
        )
    finally:
        teardown(engine, hosts)


def test_refuse_accept_fault_degrades_every_flush_in_process():
    engine, hosts, rng, vocab = sharded_with_hosts(
        2, 2, seed=9,
        fault_on_host={0: FaultPlan.refuse(), 1: FaultPlan.refuse()},
    )
    try:
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        served, stats = serve_over_sockets(engine, hosts, queries)
        assert stats["degraded_flushes"] >= 1
        assert stats["worker_deaths"] == 2  # both hosts refused service
        assert_results_equal(
            served, reference_results(engine.dataset, queries, engine)
        )
    finally:
        teardown(engine, hosts)
