"""ShardedEngine: result identity with a single engine, plus plumbing.

The headline property: for randomized datasets and mixed-k batches, a
``ShardedEngine`` returns *exactly* the single-engine answer — results
(location, keywords, BRSTkNN), I/O counters and selection stats — for
shards in {1, 2, 4}, both partitioners, both backends and both keyword
selectors.
"""

import asyncio
import multiprocessing
import random

import pytest

from repro import (
    Dataset,
    EngineConfig,
    MaxBRSTkNNEngine,
    MaxBRSTkNNQuery,
    QueryOptions,
    STObject,
)
from repro.core.kernels import HAS_NUMPY
from repro.serve import MaxBRSTkNNServer, ServerConfig, ShardedEngine, make_engine
from repro.spatial.geometry import Point

from ..conftest import make_random_objects, make_random_users

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def build_dataset(seed=0, n_obj=70, n_users=24, vocab=18):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    measure = ["LM", "TF", "KO"][seed % 3]
    return Dataset(objects, users, relevance=measure, alpha=0.5), rng, vocab


def make_queries(rng, vocab, count, ks=(3, 5)):
    queries = []
    for i in range(count):
        queries.append(
            MaxBRSTkNNQuery(
                ox=STObject(
                    item_id=-(i + 1),
                    location=Point(rng.uniform(0, 10), rng.uniform(0, 10)),
                    terms={},
                ),
                locations=[
                    Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(4)
                ],
                keywords=sorted(rng.sample(range(vocab), 6)),
                ws=2,
                k=ks[i % len(ks)],
            )
        )
    return queries


def assert_results_equal(a, b):
    assert a.location == b.location
    assert a.keywords == b.keywords
    assert a.brstknn == b.brstknn


def assert_stats_equal(a, b):
    """Non-time stats must match the single-engine batch exactly."""
    assert a.stats.users_total == b.stats.users_total
    assert a.stats.io_node_visits == b.stats.io_node_visits
    assert a.stats.io_invfile_blocks == b.stats.io_invfile_blocks
    assert a.stats.locations_pruned == b.stats.locations_pruned
    assert a.stats.keyword_combinations_scored == b.stats.keyword_combinations_scored


class TestEquivalenceProperty:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("partitioner", ["hash", "grid"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_equals_single_engine_batch(self, seed, partitioner, num_shards):
        dataset, rng, vocab = build_dataset(seed=seed)
        queries = make_queries(rng, vocab, 6, ks=(2, 4, 6))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        options = QueryOptions(backend="python")
        reference = single.query_batch(queries, options)

        sharded = ShardedEngine(
            dataset,
            EngineConfig(fanout=4, num_shards=num_shards, partitioner=partitioner),
        )
        results = sharded.query_batch(queries, options)
        assert sharded.traversal_runs == 1  # one walk, like the single engine
        for a, b in zip(reference, results):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    @pytest.mark.parametrize("method", ["approx", "exact"])
    def test_both_selectors(self, method):
        dataset, rng, vocab = build_dataset(seed=7)
        queries = make_queries(rng, vocab, 4, ks=(3,))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        options = QueryOptions(method=method, backend="python")
        reference = single.query_batch(queries, options)
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=3))
        for a, b in zip(reference, sharded.query_batch(queries, options)):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend")
    def test_numpy_backend_matches_python_reference(self):
        dataset, rng, vocab = build_dataset(seed=4)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        reference = single.query_batch(queries, QueryOptions(backend="python"))
        sharded = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=2, partitioner="grid")
        )
        for a, b in zip(
            reference, sharded.query_batch(queries, QueryOptions(backend="numpy"))
        ):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    def test_single_query_matches_sequential(self):
        dataset, rng, vocab = build_dataset(seed=2)
        query = make_queries(rng, vocab, 1, ks=(4,))[0]
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        solo = single.query(query, QueryOptions(backend="python"))
        # num_shards=1 included: query() must work on the degenerate
        # sharded layout too (it plans as a batch of one either way).
        for num_shards in (1, 2):
            sharded = ShardedEngine(
                dataset, EngineConfig(fanout=4, num_shards=num_shards)
            )
            assert_results_equal(
                solo, sharded.query(query, QueryOptions(backend="python"))
            )

    def test_consecutive_batches_reuse_the_walk_and_thresholds(self):
        dataset, rng, vocab = build_dataset(seed=1)
        queries = make_queries(rng, vocab, 4, ks=(3,))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        reference = single.query_batch(queries, QueryOptions(backend="python"))
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        first = sharded.query_batch(queries, QueryOptions(backend="python"))
        second = sharded.query_batch(queries, QueryOptions(backend="python"))
        assert sharded.traversal_runs == 1
        for shard in sharded.shards:
            assert shard.stats.refine_tasks == 1  # memoized across batches
        for a, b, c in zip(reference, first, second):
            assert_results_equal(a, b)
            assert_results_equal(a, c)


class TestIndexedEquivalenceProperty:
    """PR 5 acceptance: ``Mode.INDEXED`` rides the same scatter — results,
    I/O traces and selection stats bitwise-identical to the single
    sequential engine, one k_max walk per flush."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("partitioner", ["hash", "grid"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_indexed_sharded_equals_single_engine_batch(
        self, seed, partitioner, num_shards
    ):
        dataset, rng, vocab = build_dataset(seed=seed)
        queries = make_queries(rng, vocab, 6, ks=(2, 4, 6))  # mixed k
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
        options = QueryOptions(mode="indexed", backend="python")
        reference = single.query_batch(queries, options)
        assert single.traversal_runs == 1  # indexed cross-k sharing

        sharded = ShardedEngine(
            dataset,
            EngineConfig(
                fanout=4, num_shards=num_shards, partitioner=partitioner,
                index_users=True,
            ),
        )
        results = sharded.query_batch(queries, options)
        assert sharded.traversal_runs == 1  # one k_max walk per flush
        for a, b in zip(reference, results):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)
            assert a.stats.users_pruned == b.stats.users_pruned
        # The shared I/O counter ends exactly where the single engine's
        # did (walk + every search's MIUR page reads).
        assert sharded.io.snapshot().total == single.io.snapshot().total

    def test_indexed_sharded_equals_cold_sequential_results(self):
        """Results (not just batch-vs-batch) match truly cold per-query
        sequential execution — the node-RSk reformulation guarantee."""
        dataset, rng, vocab = build_dataset(seed=11)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        options = QueryOptions(mode="indexed", backend="python")
        sequential = []
        for q in queries:
            fresh = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
            sequential.append(fresh.query(q, options))
        sharded = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=2, index_users=True)
        )
        for a, b in zip(sequential, sharded.query_batch(queries, options)):
            assert_results_equal(a, b)
            # Selection stats (pruning, combinations, users pruned) are
            # cold-identical; top-k I/O reports the shared walk instead.
            assert a.stats.locations_pruned == b.stats.locations_pruned
            assert (
                a.stats.keyword_combinations_scored
                == b.stats.keyword_combinations_scored
            )
            assert a.stats.users_pruned == b.stats.users_pruned

    @pytest.mark.parametrize("method", ["approx", "exact"])
    def test_indexed_both_selectors(self, method):
        dataset, rng, vocab = build_dataset(seed=12)
        queries = make_queries(rng, vocab, 4, ks=(3,))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
        options = QueryOptions(mode="indexed", method=method, backend="python")
        reference = single.query_batch(queries, options)
        sharded = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=3, index_users=True)
        )
        for a, b in zip(reference, sharded.query_batch(queries, options)):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend")
    def test_indexed_numpy_backend_matches_python_reference(self):
        dataset, rng, vocab = build_dataset(seed=13)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
        reference = single.query_batch(
            queries, QueryOptions(mode="indexed", backend="python")
        )
        sharded = ShardedEngine(
            dataset,
            EngineConfig(fanout=4, num_shards=2, partitioner="grid",
                         index_users=True),
        )
        for a, b in zip(
            reference,
            sharded.query_batch(queries, QueryOptions(mode="indexed", backend="numpy")),
        ):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    @pytest.mark.skipif(not HAS_FORK, reason="search pool requires fork")
    def test_indexed_search_pool_fanout_matches_in_process(self):
        """The per-query searches fan out over the root search pool with
        IOCharge ledgers — results AND the shared counter identical to
        the in-process path."""
        dataset, rng, vocab = build_dataset(seed=14)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        options = QueryOptions(mode="indexed", backend="python")
        inproc = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=2, index_users=True)
        )
        reference = inproc.query_batch(queries, options)
        pooled = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=2, index_users=True)
        )
        pooled.start_pools(1, search_workers=2)
        try:
            results = pooled.query_batch(queries, options)
        finally:
            pooled.close_pools()
        for a, b in zip(reference, results):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)
            assert a.stats.users_pruned == b.stats.users_pruned
        assert pooled.io.snapshot().total == inproc.io.snapshot().total

    def test_indexed_single_query_matches_sequential(self):
        dataset, rng, vocab = build_dataset(seed=15)
        query = make_queries(rng, vocab, 1, ks=(4,))[0]
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4, index_users=True))
        solo = single.query(query, QueryOptions(mode="indexed", backend="python"))
        for num_shards in (1, 2):
            sharded = ShardedEngine(
                dataset,
                EngineConfig(fanout=4, num_shards=num_shards, index_users=True),
            )
            assert_results_equal(
                solo,
                sharded.query(query, QueryOptions(mode="indexed", backend="python")),
            )

    def test_indexed_plan_reports_pooling_and_fanout(self):
        dataset, _, _ = build_dataset(seed=16)
        sharded = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=2, index_users=True)
        )
        text = sharded.plan(QueryOptions(mode="indexed"), ks=[3, 5]).explain()
        assert "MIUR-root joint traversal" in text
        assert "one walk at k=5" in text
        assert "in-process per query" in text  # no search pool running
        sharded.start_pools(1, search_workers=2)
        try:
            text = sharded.plan(QueryOptions(mode="indexed"), ks=[3, 5]).explain()
            assert "root search pool x2" in text
            assert "ledger" in text
        finally:
            sharded.close_pools()


class TestEdgeCases:
    def test_more_shards_than_users(self):
        dataset, rng, vocab = build_dataset(seed=3, n_users=3)
        queries = make_queries(rng, vocab, 3, ks=(2,))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        reference = single.query_batch(queries, QueryOptions(backend="python"))
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=8))
        plan = sharded.plan(QueryOptions(), ks=[2])
        assert plan.shard is not None
        assert plan.shard.scatter_width <= 3  # empty shards never engaged
        for a, b in zip(
            reference, sharded.query_batch(queries, QueryOptions(backend="python"))
        ):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    def test_colocated_users_on_grid(self):
        rng = random.Random(9)
        from repro.model.objects import User

        objects = make_random_objects(50, 14, rng)
        users = [
            User(item_id=i, location=Point(3.0, 3.0), terms={t: 1})
            for i, t in enumerate(rng.choices(range(14), k=12))
        ]
        dataset = Dataset(objects, users, relevance="LM", alpha=0.5)
        queries = make_queries(rng, 14, 3, ks=(3,))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        reference = single.query_batch(queries, QueryOptions(backend="python"))
        # Skew guard satellite: one shard holding everything warns at
        # build time and is surfaced in stats and the plan.
        with pytest.warns(RuntimeWarning, match="unbalanced partition"):
            sharded = ShardedEngine(
                dataset, EngineConfig(fanout=4, num_shards=4, partitioner="grid")
            )
        # every user in one grid cell -> a single engaged shard
        assert sorted(sharded.assignment.counts()) == [0, 0, 0, 12]
        assert sharded.partition_skew == 4.0
        assert sharded.gather_stats()["partition_skew"] == 4.0
        plan_text = sharded.plan(QueryOptions(), ks=[3]).explain()
        assert "skew 4.00x ideal" in plan_text
        assert "UNBALANCED" in plan_text
        for a, b in zip(
            reference, sharded.query_batch(queries, QueryOptions(backend="python"))
        ):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)

    def test_empty_batch(self):
        dataset, _, _ = build_dataset(seed=5)
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        assert sharded.query_batch([]) == []


class TestValidation:
    def test_plain_engine_rejects_shard_config(self):
        dataset, _, _ = build_dataset()
        with pytest.raises(ValueError, match="ShardedEngine"):
            MaxBRSTkNNEngine(dataset, EngineConfig(num_shards=2))

    def test_sharded_rejects_baseline_mode(self):
        dataset, rng, vocab = build_dataset()
        query = make_queries(rng, vocab, 1)[0]
        # num_shards=1 included: the planner cannot tell a 1-shard
        # ShardedEngine apart, so the engine enforces the
        # group-traversal-only contract itself.
        for num_shards in (1, 2):
            sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=num_shards))
            with pytest.raises(ValueError, match="baseline|joint"):
                sharded.query(query, QueryOptions(mode="baseline"))

    def test_sharded_indexed_requires_user_tree(self):
        dataset, rng, vocab = build_dataset()
        query = make_queries(rng, vocab, 1)[0]
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        with pytest.raises(ValueError, match="index_users"):
            sharded.query(query, QueryOptions(mode="indexed"))

    def test_sharded_accepts_index_users(self):
        dataset, _, _ = build_dataset()
        sharded = ShardedEngine(dataset, EngineConfig(num_shards=2, index_users=True))
        assert sharded.user_tree is not None
        # Only the root engine carries an MIUR-tree; shard engines run
        # the per-user joint phases and never need one.
        assert all(shard.engine.user_tree is None for shard in sharded.shards)

    def test_sharded_rejects_external_pool(self):
        dataset, rng, vocab = build_dataset()
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        with pytest.raises(TypeError, match="per-shard pools"):
            sharded.query_batch(make_queries(rng, vocab, 2), pool=object())

    def test_make_engine_dispatch(self):
        dataset, _, _ = build_dataset()
        assert isinstance(make_engine(dataset, EngineConfig(fanout=4)), MaxBRSTkNNEngine)
        assert isinstance(
            make_engine(dataset, EngineConfig(fanout=4, num_shards=2)), ShardedEngine
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            EngineConfig(num_shards=0)
        with pytest.raises(ValueError, match="partitioner"):
            EngineConfig(partitioner="zorp")


@pytest.mark.skipif(not HAS_FORK, reason="shard pools require fork")
class TestPools:
    def test_pool_backed_scatter_matches_in_process(self):
        dataset, rng, vocab = build_dataset(seed=6)
        queries = make_queries(rng, vocab, 6, ks=(3, 5))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        reference = single.query_batch(queries, QueryOptions(backend="python"))
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        sharded.start_pools(1, search_workers=2)
        try:
            results = sharded.query_batch(queries, QueryOptions(backend="python"))
        finally:
            sharded.close_pools()
        for a, b in zip(reference, results):
            assert_results_equal(a, b)
            assert_stats_equal(a, b)
        for shard in sharded.shards:
            if shard.users:
                assert shard.stats.scatter_flushes >= 1

    def test_double_start_raises_and_close_is_idempotent(self):
        dataset, _, _ = build_dataset()
        sharded = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))
        sharded.start_pools(1, search_workers=0)
        with pytest.raises(RuntimeError):
            sharded.start_pools(1)
        sharded.close_pools()
        sharded.close_pools()


class TestServerIntegration:
    def test_server_takes_sharded_engine_unchanged(self):
        dataset, rng, vocab = build_dataset(seed=8)
        queries = make_queries(rng, vocab, 8, ks=(3, 5))
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        reference = [
            single.query(q, QueryOptions(backend="python")) for q in queries
        ]
        engine = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))

        async def run():
            async with MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms=2.0)
            ) as server:
                results = await server.submit_many(queries)
                snapshot = server.stats_snapshot()
            return results, snapshot

        results, snapshot = asyncio.run(run())
        for a, b in zip(reference, results):
            assert_results_equal(a, b)
        # satellite: per-shard queue depth / flush counters surfaced
        assert "shards" in snapshot
        assert len(snapshot["shards"]) == 2
        for row in snapshot["shards"]:
            assert row["scatter_flushes"] >= 1
            assert "queue_depth_peak" in row
        assert snapshot["queue_depth_peak"] >= 1

    @pytest.mark.skipif(not HAS_FORK, reason="shard pools require fork")
    def test_server_starts_and_stops_engine_pools(self):
        dataset, rng, vocab = build_dataset(seed=9)
        queries = make_queries(rng, vocab, 4, ks=(3,))
        engine = ShardedEngine(dataset, EngineConfig(fanout=4, num_shards=2))

        async def run():
            async with MaxBRSTkNNServer(
                engine, ServerConfig(max_batch=4, max_wait_ms=1.0, pool_workers=1)
            ) as server:
                assert engine._pools_started
                return await server.submit_many(queries)

        results = asyncio.run(run())
        assert len(results) == 4
        assert not engine._pools_started  # closed on server stop
        single = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        for q, served in zip(queries, results):
            assert_results_equal(single.query(q, QueryOptions(backend="python")), served)


@pytest.mark.skipif(not HAS_FORK, reason="shard pools require fork")
class TestStartPoolsFailure:
    """A construction failure mid-start must not leak forked pools."""

    def test_partial_failure_tears_down_and_reraises(self, monkeypatch):
        import repro.serve.sharded as sharded_mod

        dataset, rng, vocab = build_dataset(seed=3)
        engine = make_engine(dataset, EngineConfig(fanout=4, num_shards=2))
        real_pool = sharded_mod.PersistentWorkerPool
        created = []

        def flaky(*args, **kwargs):
            if created:  # first pool forks fine, second construction dies
                raise RuntimeError("boom: fork failed")
            pool = real_pool(*args, **kwargs)
            created.append(pool)
            return pool

        monkeypatch.setattr(sharded_mod, "PersistentWorkerPool", flaky)
        with pytest.raises(RuntimeError, match="boom"):
            engine.start_pools(1)
        # The pool forked before the failure was reaped, not leaked...
        assert created and all(pool._closed for pool in created)
        # ...and the engine is back in its clean in-process state.
        assert engine._pools_started is False
        assert all(shard.pool is None for shard in engine._shards)
        assert all(shard.stats.pool_workers == 0 for shard in engine._shards)
        assert engine._search_pool is None
        queries = make_queries(rng, vocab, 2, ks=(3,))
        assert len(engine.query_batch(queries, QueryOptions())) == 2
        # A later healthy start is not blocked by the failed one.
        monkeypatch.setattr(sharded_mod, "PersistentWorkerPool", real_pool)
        engine.start_pools(1)
        try:
            assert engine._pools_started is True
        finally:
            engine.close_pools()

    def test_search_pool_failure_reaps_every_shard_pool(self, monkeypatch):
        import repro.serve.sharded as sharded_mod

        dataset, _, _ = build_dataset(seed=4)
        engine = make_engine(dataset, EngineConfig(fanout=4, num_shards=2))
        real_pool = sharded_mod.PersistentWorkerPool
        created = []

        def flaky(*args, **kwargs):
            if "context" in kwargs:  # only the root search pool passes it
                raise RuntimeError("boom: search pool failed")
            pool = real_pool(*args, **kwargs)
            created.append(pool)
            return pool

        monkeypatch.setattr(sharded_mod, "PersistentWorkerPool", flaky)
        with pytest.raises(RuntimeError, match="boom"):
            # search_workers > 0: every shard pool forks, then the root
            # search pool construction fails last.
            engine.start_pools(1, search_workers=2)
        assert len(created) == 2
        assert all(pool._closed for pool in created)
        assert engine._pools_started is False


class TestPlanner:
    def test_plan_reports_scatter_and_merge(self):
        dataset, _, _ = build_dataset()
        sharded = ShardedEngine(
            dataset, EngineConfig(fanout=4, num_shards=4, partitioner="grid")
        )
        text = sharded.plan(QueryOptions(), ks=[3, 5]).explain()
        assert "scatter: width" in text
        assert "partitioner=grid" in text
        assert "merge=ordered-union" in text
        assert "k-sharing" in text

    def test_shard_plan_absent_on_single_engine(self):
        dataset, _, _ = build_dataset()
        engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
        assert engine.plan(QueryOptions(), ks=[3]).shard is None
