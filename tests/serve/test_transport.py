"""Unit tests for the socket transport wire layer.

Frame codec round trips, host-spec parsing, and the client's error
mapping (refused → PoolUnavailable, EOF → WorkerCrashed, timeout →
FlushDeadlineExceeded) against throwaway local sockets.  The full
scatter path over live shard hosts is ``test_multihost.py``.
"""

import socket
import struct
import threading

import pytest

from repro.serve.errors import (
    FlushDeadlineExceeded,
    PoolUnavailable,
    WorkerCrashed,
)
from repro.serve.transport import (
    FrameCodec,
    ShardHostClient,
    ShardRegistry,
    parse_host_specs,
)


# ----------------------------------------------------------------------
# FrameCodec
# ----------------------------------------------------------------------

def test_frame_round_trip():
    body = FrameCodec.encode_body([("refine", None, [3, 5], "python", 1)])
    frame = FrameCodec.pack(FrameCodec.SCATTER, 7, 1, 42, body)
    header, rest = frame[:FrameCodec.HEADER_SIZE], frame[FrameCodec.HEADER_SIZE:]
    kind, flush_seq, shard_id, epoch, length = FrameCodec.unpack_header(header)
    assert kind == FrameCodec.SCATTER
    assert flush_seq == 7
    assert shard_id == 1
    assert epoch == 42
    assert length == len(body)
    assert rest == body
    assert FrameCodec.decode_body(rest) == [("refine", None, [3, 5], "python", 1)]


def test_frame_header_is_21_bytes_and_supports_negative_shard():
    assert FrameCodec.HEADER_SIZE == 21
    frame = FrameCodec.pack(FrameCodec.PING, 0, -1, 0)
    kind, _, shard_id, _, length = FrameCodec.unpack_header(frame)
    assert kind == FrameCodec.PING
    assert shard_id == -1
    assert length == 0


def test_frame_rejects_bad_magic_and_kind():
    frame = FrameCodec.pack(FrameCodec.RESULT, 1, 0, 0, b"x")
    with pytest.raises(ValueError, match="magic"):
        FrameCodec.unpack_header(b"XXXX" + frame[4:FrameCodec.HEADER_SIZE])
    with pytest.raises(ValueError, match="kind"):
        FrameCodec.pack(99, 1, 0, 0)
    bad = struct.pack("<4sBIiII", b"RPF1", 99, 1, 0, 0, 0)
    with pytest.raises(ValueError, match="kind"):
        FrameCodec.unpack_header(bad)


# ----------------------------------------------------------------------
# Host specs
# ----------------------------------------------------------------------

def test_parse_host_specs_variants():
    assert parse_host_specs("a:1,b:2") == [("a", 1), ("b", 2)]
    assert parse_host_specs(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
    assert parse_host_specs("127.0.0.1:9000") == [("127.0.0.1", 9000)]


def test_parse_host_specs_rejects_garbage():
    with pytest.raises(ValueError):
        parse_host_specs("")
    with pytest.raises(ValueError):
        parse_host_specs("no-port")
    with pytest.raises(ValueError):
        parse_host_specs("h:0")
    with pytest.raises(ValueError):
        parse_host_specs("h:70000")


# ----------------------------------------------------------------------
# Client error mapping (the failure-ladder contract)
# ----------------------------------------------------------------------

def _listener():
    """A bound, listening socket on an ephemeral port."""
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    return srv, srv.getsockname()[1]


def test_connect_refused_maps_to_pool_unavailable():
    srv, port = _listener()
    srv.close()  # nothing listens on this port anymore
    client = ShardHostClient("127.0.0.1", port, connect_timeout_s=1.0)
    with pytest.raises(PoolUnavailable):
        client.connect()
    assert not client.alive


def test_eof_mid_frame_maps_to_worker_crashed():
    srv, port = _listener()

    def peer():
        conn, _ = srv.accept()
        conn.recv(64)      # swallow whatever arrives
        conn.close()       # EOF with the round in flight

    thread = threading.Thread(target=peer, daemon=True)
    thread.start()
    client = ShardHostClient("127.0.0.1", port)
    client.connect()
    client.send_frame(FrameCodec.pack(FrameCodec.PING, 0, -1, 0))
    with pytest.raises(WorkerCrashed):
        client.recv_frame(5.0)
    assert not client.alive
    thread.join(5)
    srv.close()


def test_read_timeout_maps_to_flush_deadline_exceeded():
    srv, port = _listener()

    def peer():
        conn, _ = srv.accept()
        conn.recv(64)
        # ... and never answer.
        threading.Event().wait(2.0)
        conn.close()

    thread = threading.Thread(target=peer, daemon=True)
    thread.start()
    client = ShardHostClient("127.0.0.1", port)
    client.connect()
    client.send_frame(FrameCodec.pack(FrameCodec.PING, 0, -1, 0))
    with pytest.raises(FlushDeadlineExceeded):
        client.recv_frame(0.2)
    thread.join(5)
    srv.close()


def test_client_counts_wire_bytes():
    srv, port = _listener()
    reply = FrameCodec.pack(FrameCodec.PONG, 0, -1, 0)

    def peer():
        conn, _ = srv.accept()
        conn.recv(FrameCodec.HEADER_SIZE)
        conn.sendall(reply)
        conn.close()

    thread = threading.Thread(target=peer, daemon=True)
    thread.start()
    client = ShardHostClient("127.0.0.1", port)
    client.connect()
    ping = FrameCodec.pack(FrameCodec.PING, 0, -1, 0)
    client.send_frame(ping)
    kind, *_ = client.recv_frame(5.0)
    assert kind == FrameCodec.PONG
    assert client.bytes_sent == len(ping)
    assert client.bytes_received == len(reply)
    assert client.rounds == 1
    thread.join(5)
    srv.close()
    client.close()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_assigns_shards_over_survivors():
    clients = [ShardHostClient("h", p) for p in (1, 2, 3)]
    for c in clients:
        c.alive = True  # pretend-connected; no I/O in this test
    registry = ShardRegistry(clients)
    assert registry.host_for(0) is clients[0]
    assert registry.host_for(4) is clients[1]
    registry.mark_dead(clients[0], RuntimeError("boom"))
    assert registry.host_for(0) is clients[1]
    assert registry.counters["worker_deaths"] == 1
    # A second death report for the same host is not double-counted.
    registry.mark_dead(clients[0], RuntimeError("boom again"))
    assert registry.counters["worker_deaths"] == 1
    registry.mark_dead(clients[1], RuntimeError("boom"))
    registry.mark_dead(clients[2], RuntimeError("boom"))
    with pytest.raises(PoolUnavailable):
        registry.host_for(0)


def test_registry_connect_all_requires_a_live_host():
    srv, port = _listener()
    srv.close()
    registry = ShardRegistry.from_specs(
        f"127.0.0.1:{port}", connect_timeout_s=0.5
    )
    with pytest.raises(PoolUnavailable):
        registry.connect_all()


def test_registry_health_rows_shape():
    clients = [ShardHostClient("h", 1)]
    registry = ShardRegistry(clients)
    (row,) = registry.health_rows()
    assert row["pool"] == "host-h:1"
    assert row["state"] == "dead"
    assert set(row) >= {"rounds", "bytes_sent", "bytes_received"}
