"""Zero-copy storage tier: arena lifecycle, codec identity, leak-freedom.

Three contracts under test, each an acceptance item of the tier:

* **round-trip identity** — anything placed in a :class:`ShmArena`
  (numpy columns, byte blobs, codec-encoded payload blocks) comes back
  bit for bit, including dict insertion order for ``RSk(u)`` maps;
* **lifecycle** — attach/detach is refcounted, ``close``/``unlink``/
  ``destroy`` are idempotent, and an abandoned owner is swept by its
  finalizer: ``/dev/shm`` holds zero ``reproshm-`` segments after any
  teardown order, including an injected worker SIGKILL mid-flush;
* **codec correctness** — encode/decode are exact inverses over
  randomized ``PartialResult``/shortlist inputs, delta shipping memoizes
  by object identity + dataset epoch, and every fallback path keeps the
  payload on plain pickle rather than failing the flush.
"""

import pickle
import random
import struct

import pytest

from repro.core.partial import PartialResult, ShortlistPartial
from repro.core.payload import (
    ArenaRef,
    PackedIds,
    PackedMergedInput,
    PayloadCodec,
    _clear_ref_cache,
    decode_gather_payload,
    decode_rsk,
    decode_shard_payload,
    encode_gather_payload,
    encode_rsk,
    encode_shard_payload,
    payload_nbytes,
    resolve_ref,
)
from repro.storage.shm import HAS_NUMPY, ShmArena, ShmArenaError, arena_segments

if HAS_NUMPY:
    import numpy as np


def random_rsk(rng, n=None):
    """A randomized {user_id: RSk(u)} map with non-sorted insertion order."""
    n = rng.randint(0, 40) if n is None else n
    ids = rng.sample(range(-(2**40), 2**40), n)
    return {uid: rng.uniform(-1e9, 1e9) for uid in ids}


# ----------------------------------------------------------------------
# Arena: round-trip identity
# ----------------------------------------------------------------------

@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_array_round_trip_is_bitwise_across_attach():
    rng = np.random.default_rng(7)
    originals = {
        "f64": rng.standard_normal(257),
        "i64": rng.integers(-(2**62), 2**62, size=(31, 3)),
        "i32": rng.integers(-(2**31), 2**31, size=11).astype(np.int32),
        "u8": rng.integers(0, 255, size=1000).astype(np.uint8),
    }
    with ShmArena() as arena:
        for column, arr in originals.items():
            view = arena.add_array(column, arr)
            assert view.tobytes() == arr.tobytes()
            with pytest.raises(ValueError):
                view[...] = 0  # published state is read-only
        attached = ShmArena.attach(arena.name)
        try:
            for column, arr in originals.items():
                got = attached.get(column)
                assert got.dtype == arr.dtype
                assert got.shape == arr.shape
                assert got.tobytes() == arr.tobytes()  # bitwise
        finally:
            attached.close()


def test_bytes_round_trip_and_blob_guard():
    blob = bytes(random.Random(3).randrange(256) for _ in range(4096))
    with ShmArena() as arena:
        arena.add_bytes("blob", blob)
        assert arena.get_bytes("blob") == blob
        assert ShmArena.read_column_bytes(arena.name, "blob") == blob
        if HAS_NUMPY:
            with pytest.raises(ShmArenaError, match="byte blob"):
                arena.get("blob")


def test_attached_reader_sees_columns_added_after_attach():
    with ShmArena() as arena:
        attached = ShmArena.attach(arena.name)
        try:
            assert "late" not in attached.columns()
            arena.add_bytes("late", b"delta-shipped")
            # get_bytes refreshes the seqlocked directory on a miss.
            assert attached.get_bytes("late") == b"delta-shipped"
        finally:
            attached.close()


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_share_arrays_repoints_attributes_and_skips_none():
    class Holder:
        def __init__(self):
            self.a = np.arange(12, dtype=np.int64)
            self.b = None
            self.c = np.linspace(0.0, 1.0, 9)

    holder = Holder()
    want_a, want_c = holder.a.tobytes(), holder.c.tobytes()
    with ShmArena() as arena:
        shared = arena.share_arrays(holder, ("a", "b", "c"), prefix="h")
        assert shared == ["h.a", "h.c"]
        assert holder.b is None
        assert holder.a.tobytes() == want_a
        assert holder.c.tobytes() == want_c
        assert holder.a is arena.get("h.a")  # attribute now IS the view
        with pytest.raises(ShmArenaError, match="already shared"):
            arena.share_arrays(holder, ("a",), prefix="h")


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_close_restores_shared_attributes_to_private_copies():
    # SharedMemory.close() unmaps even with numpy views exported, so
    # teardown must hand the host object private copies back — else any
    # later engine over the same dataset reads unmapped/recycled pages.
    class Holder:
        def __init__(self):
            self.a = np.arange(12, dtype=np.int64)
            self.c = np.linspace(0.0, 1.0, 9)

    holder = Holder()
    want_a, want_c = holder.a.tobytes(), holder.c.tobytes()
    arena = ShmArena()
    arena.share_arrays(holder, ("a", "c"), prefix="h")
    arena.destroy()
    for attr, want in (("a", want_a), ("c", want_c)):
        restored = getattr(holder, attr)
        assert restored.base is None  # private memory, not an shm view
        assert not restored.flags.writeable
        assert restored.tobytes() == want
    # The restored object can be shared again into a fresh arena.
    with ShmArena() as arena2:
        arena2.share_arrays(holder, ("a", "c"), prefix="h")
        assert holder.a.tobytes() == want_a
    assert holder.a.tobytes() == want_a  # and restored again on exit
    assert not arena_segments()


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_close_leaves_replaced_attributes_alone():
    class Holder:
        def __init__(self):
            self.a = np.arange(6, dtype=np.int64)

    holder = Holder()
    arena = ShmArena()
    arena.share_arrays(holder, ("a",), prefix="h")
    replacement = np.zeros(3, dtype=np.float32)
    holder.a = replacement  # e.g. re-shared into a newer arena
    arena.destroy()
    assert holder.a is replacement


# ----------------------------------------------------------------------
# Arena: lifecycle + leak freedom
# ----------------------------------------------------------------------

def test_attach_is_refcounted_per_process():
    with ShmArena() as arena:
        assert ShmArena.attach_count(arena.name) == 0
        h1 = ShmArena.attach(arena.name)
        h2 = ShmArena.attach(arena.name)
        assert h1 is h2  # one shared handle
        assert ShmArena.attach_count(arena.name) == 2
        h2.close()
        assert ShmArena.attach_count(arena.name) == 1
        h1.close()
        assert ShmArena.attach_count(arena.name) == 0
        h1.close()  # extra closes are harmless
        assert ShmArena.attach_count(arena.name) == 0


def test_destroy_leaves_no_segments_and_is_idempotent():
    arena = ShmArena()
    arena.add_bytes("x", b"payload")
    name = arena.name
    assert any(seg.startswith(name) for seg in arena_segments())
    arena.destroy()
    assert not any(seg.startswith(name) for seg in arena_segments())
    arena.destroy()  # idempotent
    arena.unlink()
    arena.close()
    with pytest.raises((ShmArenaError, FileNotFoundError)):
        ShmArena.attach(name)


def test_abandoned_owner_is_swept_by_finalizer():
    import gc

    arena = ShmArena()
    arena.add_bytes("x", b"orphaned")
    name = arena.name
    del arena  # dropped without close(): the weakref.finalize must sweep
    gc.collect()
    assert not any(seg.startswith(name) for seg in arena_segments())


def test_drop_column_unlinks_and_preserves_directory():
    with ShmArena() as arena:
        arena.add_bytes("keep", b"live")
        arena.add_bytes("retire", b"superseded")
        segment = f"{arena.name}.retire"
        assert segment in arena_segments()
        arena.drop_column("retire")
        assert segment not in arena_segments()
        assert "retire" not in arena.columns()
        assert arena.get_bytes("keep") == b"live"
        arena.drop_column("retire")  # idempotent


def test_attach_only_handle_cannot_mutate():
    with ShmArena() as arena:
        arena.add_bytes("x", b"1")
        attached = ShmArena.attach(arena.name)
        try:
            with pytest.raises(ShmArenaError, match="owning"):
                attached.add_bytes("y", b"2")
            with pytest.raises(ShmArenaError, match="owning"):
                attached.drop_column("x")
        finally:
            attached.close()


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_unlink_keeps_existing_mappings_valid():
    arena = ShmArena()
    want = np.arange(64, dtype=np.int64)
    arena.add_array("x", want)
    attached = ShmArena.attach(arena.name)
    try:
        view = attached.get("x")  # mapped while the name still exists
        arena.unlink()  # names gone; POSIX keeps the memory for mappings
        assert view.tobytes() == want.tobytes()
        assert not any(
            seg.startswith(arena.name) for seg in arena_segments()
        )
        # By-name access is now correctly impossible — the exact signal a
        # respawned worker gets if it outlives the arena.
        with pytest.raises((ShmArenaError, FileNotFoundError)):
            ShmArena.read_column_bytes(arena.name, "x")
    finally:
        attached.close()
        arena.close()


# ----------------------------------------------------------------------
# Codec: binary block round trips (randomized)
# ----------------------------------------------------------------------

def test_rsk_codec_round_trips_with_insertion_order():
    rng = random.Random(11)
    for _ in range(25):
        rsk = random_rsk(rng)
        decoded = decode_rsk(encode_rsk(rsk))
        assert decoded == rsk
        assert list(decoded.items()) == list(rsk.items())  # order too
    with pytest.raises(ValueError, match="RSK"):
        decode_rsk(b"nope" + b"\x00" * 16)


def test_packed_ids_round_trips_ragged_groups():
    rng = random.Random(13)
    for _ in range(25):
        groups = [
            [rng.randrange(-(2**40), 2**40) for _ in range(rng.randint(0, 9))]
            for _ in range(rng.randint(0, 12))
        ]
        assert PackedIds.pack(groups).unpack() == groups
    assert PackedIds.pack([]).unpack() == []
    assert PackedIds.pack([[], [], []]).unpack() == [[], [], []]


def test_packed_merged_input_restores_exact_tuple():
    rng = random.Random(17)
    for _ in range(10):
        kept = [
            (rng.randrange(0, 500), rng.uniform(0, 50), rng.uniform(-50, 0))
            for _ in range(rng.randint(0, 8))
        ]
        ids = [
            [rng.randrange(0, 1000) for _ in range(rng.randint(0, 5))]
            for _ in kept
        ]
        item = ("query-sentinel", kept, ids, rng.randint(0, 99),
                {"stats": rng.random()}, rng.random())
        assert PackedMergedInput.pack(item).unpack() == item


def test_partial_result_pickle_round_trip_randomized():
    rng = random.Random(19)
    for _ in range(15):
        partial = PartialResult(
            shard_id=rng.randrange(8), k=rng.randrange(1, 9),
            rsk=random_rsk(rng), users_total=rng.randrange(1000),
            time_s=rng.random(),
        )
        clone = pickle.loads(pickle.dumps(partial))
        assert clone == partial
        assert list(clone.rsk.items()) == list(partial.rsk.items())


def test_shortlist_partial_pickle_round_trip_randomized():
    rng = random.Random(23)
    for _ in range(15):
        kept = [
            (rng.randrange(300), rng.uniform(0, 9), rng.uniform(-9, 0))
            for _ in range(rng.randint(0, 7))
        ]
        users = [
            [rng.randrange(500) for _ in range(rng.randint(0, 6))]
            for _ in kept
        ]
        partial = ShortlistPartial(
            shard_id=rng.randrange(8), kept=kept, users=users,
            locations_pruned=rng.randrange(50), time_s=rng.random(),
        )
        clone = pickle.loads(pickle.dumps(partial))
        assert clone == partial  # exact tuples: merge's agreement check holds


def test_partial_result_falls_back_to_plain_pickle_on_odd_keys():
    # Non-int64 keys cannot pack into an RSK block; __reduce__ must fall
    # back to the plain constructor tuple, not fail the gather.
    partial = PartialResult(
        shard_id=0, k=2, rsk={2**70: 1.0}, users_total=1, time_s=0.0
    )
    assert pickle.loads(pickle.dumps(partial)) == partial


# ----------------------------------------------------------------------
# Codec: arena shipping (delta memo, fallbacks, retirement)
# ----------------------------------------------------------------------

def test_ship_delta_hits_on_same_object_same_epoch():
    epoch = [0]
    rsk = random_rsk(random.Random(29), n=20)
    with ShmArena() as arena:
        codec = PayloadCodec(arena, epoch_fn=lambda: epoch[0])
        ref1 = codec.ship(rsk, "rsk-root", kind="rsk")
        assert isinstance(ref1, ArenaRef)
        assert ref1.count == len(rsk)
        ref2 = codec.ship(rsk, "rsk-root", kind="rsk")
        assert ref2 is ref1  # delta hit: same ref, nothing rewritten
        assert codec.delta_hits == 1
        _clear_ref_cache()
        assert resolve_ref(ref1) == rsk

        epoch[0] += 1  # dataset mutated: the old block may not alias
        ref3 = codec.ship(rsk, "rsk-root", kind="rsk")
        assert ref3 is not ref1
        assert ref3.column != ref1.column
        _clear_ref_cache()
        assert resolve_ref(ref3) == rsk


def test_ship_falls_back_inline_on_unencodable_and_broken_arena():
    with ShmArena() as arena:
        codec = PayloadCodec(arena)
        bad = {"not-an-int": 1.0}
        assert codec.ship(bad, "rsk-root", kind="rsk") is bad
        assert codec.inline_fallbacks == 1
    # Arena destroyed: the first failed write trips the broken latch and
    # every later ship stays inline (correct, just un-optimized).
    payload = random_rsk(random.Random(31), n=5)
    assert codec.ship(payload, "rsk-root", kind="rsk") is payload
    assert codec._broken
    assert codec.ship(payload, "rsk-root", kind="rsk") is payload


def test_superseded_blocks_retire_after_the_lag():
    epoch = [0]
    with ShmArena() as arena:
        codec = PayloadCodec(arena, epoch_fn=lambda: epoch[0])
        rsk = random_rsk(random.Random(37), n=4)
        old_ref = codec.ship(rsk, "rsk-root", kind="rsk")
        epoch[0] += 1
        codec.ship(rsk, "rsk-root", kind="rsk")  # supersedes old_ref
        assert old_ref.column in arena  # not dropped yet: decoders may race
        for i in range(PayloadCodec.RETIRE_LAG + 1):
            codec.ship(random_rsk(random.Random(100 + i), n=2), f"t{i}",
                       kind="rsk")
        assert old_ref.column not in arena  # retired once safely cold
        assert f"{arena.name}.{old_ref.column}" not in arena_segments()


def test_shard_payload_encode_decode_inverse_and_passthrough():
    rng = random.Random(41)
    rsk = random_rsk(rng, n=12)
    rsk_by_k = {2: random_rsk(rng, n=6), 4: random_rsk(rng, n=6)}
    with ShmArena() as arena:
        codec = PayloadCodec(arena)
        for payload in (
            ("refine", {"pool": [1, 2, 3]}, [2, 4], "python", 1),
            ("shortlist", {"su": True}, ["q0"], rsk_by_k, {2: ["q0"]},
             "python", 0),
            ("search", [("q0", [(1, 2.0, 0.5)], [[7, 8]], 0, None, 0.0)],
             rsk, {}, "greedy", "python"),
        ):
            encoded = encode_shard_payload(codec, payload)
            assert encoded[0] == payload[0]
            assert len(encoded) == len(payload)  # slots preserved
            _clear_ref_cache()
            decoded = decode_shard_payload(encoded)
            assert decoded == payload
            # The decode funnel is identity on plain pickle-path payloads.
            assert decode_shard_payload(payload) == payload
    assert decode_shard_payload(("unknown-kind", 1, 2)) == ("unknown-kind", 1, 2)
    assert decode_shard_payload(()) == ()


# ----------------------------------------------------------------------
# End to end: the shm path is invisible except in bytes shipped
# ----------------------------------------------------------------------

HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()


def _serving_round(use_shm, faults=None, seed=5, prebuilt=None):
    """One pooled 2-shard batch; returns (results, engine arena name)."""
    from repro import EngineConfig, QueryOptions
    from repro.serve import RetryPolicy, make_engine

    from ..serve.conftest import build_dataset, make_queries

    dataset, rng, vocab = prebuilt if prebuilt else build_dataset(seed=seed)
    engine = make_engine(
        dataset, EngineConfig(fanout=4, num_shards=2, use_shm=use_shm)
    )
    engine.start_pools(
        1, 1, faults=faults, retry=RetryPolicy(max_retries=1, backoff_base_s=0.0)
    )
    try:
        arena_name = engine.arena_name
        results = engine.query_batch(
            make_queries(rng, vocab, 6), QueryOptions(backend="python")
        )
        report = engine.last_flush_report
    finally:
        engine.close_pools()
    return results, arena_name, report


@pytest.mark.skipif(not (HAS_FORK and HAS_NUMPY), reason="needs fork + numpy")
def test_engine_results_identical_with_and_without_shm():
    plain, arena_plain, _ = _serving_round(use_shm=False)
    shm, arena_shm, report = _serving_round(use_shm=True)
    assert arena_plain is None
    assert arena_shm is not None
    for a, b in zip(plain, shm):
        assert a.location == b.location
        assert a.keywords == b.keywords
        assert a.brstknn == b.brstknn
    assert report.payload_bytes_out > 0  # the codec path actually ran
    assert not arena_segments(), "serving leaked /dev/shm segments"


@pytest.mark.skipif(not (HAS_FORK and HAS_NUMPY), reason="needs fork + numpy")
def test_shared_dataset_survives_shm_engine_teardown():
    # Regression: arena teardown used to unmap the segments backing the
    # dataset's memoized DatasetArrays/TreeArrays views, so EVERY later
    # engine over the same dataset (pickle or shm) computed garbage.
    from ..serve.conftest import build_dataset

    dataset, _, vocab = build_dataset(seed=5)

    def round_(use_shm):
        return _serving_round(
            use_shm, prebuilt=(dataset, random.Random(99), vocab)
        )[0]

    baseline = round_(use_shm=False)
    for use_shm in (True, False, True, False):
        results = round_(use_shm)
        for a, b in zip(baseline, results):
            assert a.location == b.location
            assert a.keywords == b.keywords
            assert a.brstknn == b.brstknn
    assert not arena_segments()


@pytest.mark.skipif(not (HAS_FORK and HAS_NUMPY), reason="needs fork + numpy")
def test_killed_worker_leaks_no_segments_and_results_survive():
    from repro.serve import FaultPlan

    plain, _, _ = _serving_round(use_shm=False)
    shm, arena_name, _ = _serving_round(
        use_shm=True, faults=FaultPlan.kill_worker()
    )
    for a, b in zip(plain, shm):
        assert a.location == b.location
        assert a.keywords == b.keywords
        assert a.brstknn == b.brstknn
    # The SIGKILLed worker held no arena state (read-copy-close access),
    # and close_pools destroyed the arena: /dev/shm is clean.
    assert not any(seg.startswith(arena_name) for seg in arena_segments())
    assert not arena_segments()


# ----------------------------------------------------------------------
# Gather funnels: exact inverses, identity on plain chunks
# ----------------------------------------------------------------------

def _random_partials(rng):
    return [
        PartialResult(
            shard_id=s, k=k, rsk=random_rsk(rng),
            users_total=rng.randrange(1, 1000), time_s=rng.uniform(0.0, 2.0),
        )
        for s, k in ((0, 3), (1, 5), (2, 7))
    ]


def _random_shortlists(rng):
    out = []
    for shard_id in range(3):
        kept_n = rng.randrange(0, 6)
        kept = [
            (rng.randrange(0, 50), rng.uniform(-1e6, 1e6), rng.uniform(-1e6, 1e6))
            for _ in range(kept_n)
        ]
        users = [
            rng.sample(range(10_000), rng.randrange(0, 8)) for _ in range(kept_n)
        ]
        out.append(ShortlistPartial(
            shard_id=shard_id, kept=kept, users=users,
            locations_pruned=rng.randrange(0, 20), time_s=rng.uniform(0.0, 1.0),
        ))
    return out


def test_gather_partials_round_trip_is_exact():
    rng = random.Random(11)
    chunk = _random_partials(rng)
    wire = encode_gather_payload(chunk)
    assert isinstance(wire, bytes)
    # The whole chunk is one binary block — strictly smaller than the
    # pickled chunk (the 68 KiB gather gap this funnel exists to close).
    assert len(wire) < payload_nbytes(chunk)
    back = decode_gather_payload(wire)
    assert len(back) == len(chunk)
    for orig, got in zip(chunk, back):
        assert (got.shard_id, got.k, got.users_total) == (
            orig.shard_id, orig.k, orig.users_total
        )
        assert struct.pack("<d", got.time_s) == struct.pack("<d", orig.time_s)
        assert list(got.rsk.items()) == list(orig.rsk.items())  # order too
        assert encode_rsk(got.rsk) == encode_rsk(orig.rsk)      # bitwise


def test_gather_shortlists_round_trip_is_exact():
    rng = random.Random(12)
    chunk = _random_shortlists(rng)
    wire = encode_gather_payload(chunk)
    assert isinstance(wire, bytes)
    back = decode_gather_payload(wire)
    assert len(back) == len(chunk)
    for orig, got in zip(chunk, back):
        assert got.shard_id == orig.shard_id
        assert got.locations_pruned == orig.locations_pruned
        assert struct.pack("<d", got.time_s) == struct.pack("<d", orig.time_s)
        assert got.kept == orig.kept
        assert [
            struct.pack("<dd", ub, lb) for _, ub, lb in got.kept
        ] == [struct.pack("<dd", ub, lb) for _, ub, lb in orig.kept]
        assert got.users == orig.users


def test_gather_funnel_is_identity_on_plain_chunks():
    rng = random.Random(13)
    plain = [
        [],                                   # empty chunk
        ["result-a", "result-b"],             # search-result-ish chunk
        [(object(), None)],                   # indexed (result, charge)-ish
        ("refine", None, [3], "python", 0),   # a payload tuple, not a chunk
        None,
    ]
    for chunk in plain:
        assert encode_gather_payload(chunk) is chunk
        assert decode_gather_payload(chunk) is chunk
    mixed = _random_partials(rng) + _random_shortlists(rng)
    assert encode_gather_payload(mixed) is mixed  # heterogeneous: untouched
    assert decode_gather_payload(b"NOPE" + b"\x00" * 16) == b"NOPE" + b"\x00" * 16


def test_gather_funnel_falls_back_on_unpackable_contents():
    rng = random.Random(14)
    chunk = _random_partials(rng)
    chunk[1].rsk = {2**70: 1.0}  # key overflows int64: stay on pickle
    assert encode_gather_payload(chunk) is chunk
    bad = _random_shortlists(rng)
    bad[0].kept = [("not-an-int", 0.0, 0.0)]
    assert encode_gather_payload(bad) is bad


# ----------------------------------------------------------------------
# Foreign-process (untracked) attach: no resource_tracker noise
# ----------------------------------------------------------------------

def test_untracked_attach_leaves_no_tracker_registration(monkeypatch):
    from multiprocessing import resource_tracker

    from repro.storage import shm as shm_mod

    events = []
    real_register = resource_tracker.register
    real_unregister = resource_tracker.unregister

    def register(name, rtype):
        events.append(("register", name, rtype))
        real_register(name, rtype)

    def unregister(name, rtype):
        events.append(("unregister", name, rtype))
        real_unregister(name, rtype)

    with ShmArena() as arena:
        arena.add_bytes("blob", b"x" * 64)
        monkeypatch.setattr(resource_tracker, "register", register)
        monkeypatch.setattr(resource_tracker, "unregister", unregister)
        # monkeypatch restores the module flag even if the test dies.
        monkeypatch.setattr(shm_mod, "_UNTRACKED_ATTACH", False)
        shm_mod.set_untracked_attach(True)
        assert shm_mod.untracked_attach_enabled()
        attached = ShmArena.attach(arena.name)
        try:
            assert attached.get_bytes("blob") == b"x" * 64
        finally:
            attached.close()
        assert ShmArena.read_column_bytes(arena.name, "blob") == b"x" * 64
        # Attach-side net registrations must be zero: natively (3.13+
        # track=False registers nothing) or by immediate compensation
        # (< 3.13) — either way this process's tracker holds no entry
        # that could unlink the owner's segments at exit.
        net = {}
        for kind, name, rtype in events:
            if rtype != "shared_memory":
                continue
            net[name] = net.get(name, 0) + (1 if kind == "register" else -1)
        assert all(count == 0 for count in net.values()), events
        shm_mod.set_untracked_attach(False)
    # Owner teardown (create-side registrations) is unaffected.
    assert arena.name not in arena_segments()
    assert not any(s.startswith(arena.name) for s in arena_segments())


def test_tracked_attach_is_the_default(monkeypatch):
    from repro.storage import shm as shm_mod

    assert shm_mod.untracked_attach_enabled() is False
    calls = []
    real_open = shm_mod.ShmArena._open

    with ShmArena() as arena:
        arena.add_bytes("blob", b"y" * 8)

        def spying_open(name, create, size=0):
            calls.append((name, create))
            return real_open(name, create, size)

        monkeypatch.setattr(
            shm_mod.ShmArena, "_open", staticmethod(spying_open)
        )
        attached = ShmArena.attach(arena.name)
        try:
            assert attached.get_bytes("blob") == b"y" * 8
        finally:
            attached.close()
        assert any(not create for _, create in calls)
    assert not any(s.startswith(arena.name) for s in arena_segments())
