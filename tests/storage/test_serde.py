"""Round-trip tests for the binary index serialization."""

import random

import pytest

from repro import Dataset
from repro.core.joint_topk import joint_topk
from repro.index.irtree import IRTree, MIRTree
from repro.storage.serde import (
    SerdeError,
    deserialize_irtree,
    image_size,
    serialize_irtree,
)
from repro.text.relevance import make_relevance

from ..conftest import make_random_objects, make_random_users


@pytest.fixture(scope="module")
def world():
    rng = random.Random(71)
    objects = make_random_objects(120, 20, rng)
    users = make_random_users(12, 20, rng)
    ds = Dataset(objects, users, relevance="LM", alpha=0.5)
    tree = MIRTree(objects, ds.relevance, fanout=8)
    return ds, tree


class TestRoundTrip:
    def test_structure_preserved(self, world):
        ds, tree = world
        image = serialize_irtree(tree)
        loaded = deserialize_irtree(image, ds.relevance)
        loaded.check_invariants()
        assert len(loaded) == len(tree)
        assert loaded.fanout == tree.fanout
        assert loaded.minmax == tree.minmax
        assert loaded.root.page_id == tree.root.page_id

    def test_documents_preserved(self, world):
        ds, tree = world
        loaded = deserialize_irtree(serialize_irtree(tree), ds.relevance)
        for o in ds.objects:
            lo = loaded.object_by_id(o.item_id)
            assert lo.terms == o.terms
            assert lo.location == o.location

    def test_posting_lists_bit_identical(self, world):
        ds, tree = world
        loaded = deserialize_irtree(serialize_irtree(tree), ds.relevance)
        for node in tree.rtree.iter_nodes():
            orig = tree.invfile_of(node)
            got = loaded._invfiles[node.page_id]
            assert sorted(orig.terms()) == sorted(got.terms())
            for tid in orig.terms():
                a = [(p.entry_key, p.max_weight, p.min_weight) for p in orig.postings(tid)]
                b = [(p.entry_key, p.max_weight, p.min_weight) for p in got.postings(tid)]
                assert sorted(a) == sorted(b)

    def test_queries_identical_after_reload(self, world):
        """The reproduction-critical property: a reloaded tree answers
        joint top-k with bit-identical thresholds."""
        ds, tree = world
        loaded = deserialize_irtree(serialize_irtree(tree), ds.relevance)
        before = joint_topk(tree, ds, 5)
        after = joint_topk(loaded, ds, 5)
        for uid in before:
            assert before[uid].kth_score == after[uid].kth_score
            assert before[uid].object_ids() == after[uid].object_ids()

    def test_plain_irtree_roundtrip(self):
        rng = random.Random(73)
        objects = make_random_objects(60, 10, rng)
        rel = make_relevance("TF").fit([o.terms for o in objects])
        tree = IRTree(objects, rel, fanout=8, minmax=False)
        loaded = deserialize_irtree(serialize_irtree(tree), rel)
        assert not loaded.minmax
        assert isinstance(loaded, IRTree) and not isinstance(loaded, MIRTree)
        loaded.check_invariants()


class TestCorruption:
    def test_checksum_detects_bit_flip(self, world):
        _, tree = world
        image = bytearray(serialize_irtree(tree))
        image[len(image) // 2] ^= 0xFF
        with pytest.raises(SerdeError, match="checksum"):
            deserialize_irtree(bytes(image), tree.relevance)

    def test_truncated_image(self, world):
        _, tree = world
        image = serialize_irtree(tree)
        with pytest.raises(SerdeError):
            deserialize_irtree(image[: len(image) // 2], tree.relevance)

    def test_bad_magic(self, world):
        _, tree = world
        image = bytearray(serialize_irtree(tree))
        image[0:4] = b"NOPE"
        # checksum is over the payload including magic, so recompute
        import struct
        import zlib

        payload = bytes(image[:-4])
        fixed = payload + struct.pack("<I", zlib.crc32(payload))
        with pytest.raises(SerdeError, match="magic"):
            deserialize_irtree(fixed, tree.relevance)

    def test_empty_input(self, world):
        with pytest.raises(SerdeError):
            deserialize_irtree(b"", world[1].relevance)


class TestSizeModel:
    def test_image_size_positive_and_consistent(self, world):
        _, tree = world
        assert image_size(tree) == len(serialize_irtree(tree))

    def test_minmax_layout_larger(self):
        """The concrete encoding confirms the MIR-tree space overhead."""
        rng = random.Random(74)
        objects = make_random_objects(80, 15, rng)
        rel = make_relevance("LM").fit([o.terms for o in objects])
        ir = IRTree(objects, rel, fanout=8, minmax=False)
        mir = MIRTree(objects, rel, fanout=8)
        assert image_size(mir) > image_size(ir)


class TestSerdeProperties:
    """Randomized round-trips over many tree shapes."""

    def test_roundtrip_many_shapes(self):
        import random as _random

        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            n=st.integers(min_value=1, max_value=60),
            fanout=st.integers(min_value=2, max_value=10),
            seed=st.integers(min_value=0, max_value=10_000),
        )
        @settings(max_examples=25, deadline=None)
        def check(n, fanout, seed):
            rng = _random.Random(seed)
            objects = make_random_objects(n, 8, rng)
            rel = make_relevance("LM").fit([o.terms for o in objects])
            tree = MIRTree(objects, rel, fanout=fanout)
            loaded = deserialize_irtree(serialize_irtree(tree), rel)
            loaded.check_invariants()
            assert len(loaded) == n
            for o in objects:
                assert loaded.object_by_id(o.item_id).terms == o.terms

        check()
