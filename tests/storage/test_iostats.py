"""Tests for the simulated I/O model (the paper's Section 8 accounting)."""


from repro.storage.iostats import IOCounter, IOSnapshot, PAGE_SIZE_BYTES


class TestIOCounter:
    def test_node_visits(self):
        c = IOCounter()
        c.visit_node()
        c.visit_node()
        assert c.node_visits == 2
        assert c.total == 2

    def test_load_bytes_rounds_up_to_blocks(self):
        c = IOCounter()
        c.load_bytes(1)
        assert c.invfile_blocks == 1
        c.load_bytes(PAGE_SIZE_BYTES)
        assert c.invfile_blocks == 2
        c.load_bytes(PAGE_SIZE_BYTES + 1)
        assert c.invfile_blocks == 4

    def test_load_zero_bytes_free(self):
        c = IOCounter()
        c.load_bytes(0)
        c.load_bytes(-5)
        assert c.total == 0

    def test_load_blocks_direct(self):
        c = IOCounter()
        c.load_blocks(3)
        c.load_blocks(0)
        assert c.invfile_blocks == 3

    def test_reset(self):
        c = IOCounter()
        c.visit_node()
        c.load_bytes(100)
        c.reset()
        assert c.total == 0

    def test_snapshot_subtraction(self):
        c = IOCounter()
        c.visit_node()
        before = c.snapshot()
        c.visit_node()
        c.load_bytes(5000)
        delta = c.snapshot() - before
        assert delta.node_visits == 1
        assert delta.invfile_blocks == 2
        assert delta.total == 3

    def test_snapshot_is_immutable_copy(self):
        c = IOCounter()
        snap = c.snapshot()
        c.visit_node()
        assert snap.node_visits == 0
        assert isinstance(snap, IOSnapshot)
