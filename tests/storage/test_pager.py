"""Tests for the page store and the LRU buffer pool."""

import pytest

from repro.storage.iostats import IOCounter
from repro.storage.pager import (
    LRUBuffer,
    PageStore,
    NODE_HEADER_BYTES,
    SPATIAL_ENTRY_BYTES,
    TERM_HEADER_BYTES,
)


class TestLRUBuffer:
    def test_capacity_zero_never_hits(self):
        buf = LRUBuffer(0)
        assert not buf.access(("a",))
        assert not buf.access(("a",))
        assert buf.hit_rate == 0.0

    def test_hit_on_second_access(self):
        buf = LRUBuffer(4)
        assert not buf.access(("a",))
        assert buf.access(("a",))
        assert buf.hits == 1 and buf.misses == 1

    def test_eviction_order_is_lru(self):
        buf = LRUBuffer(2)
        buf.access(("a",))
        buf.access(("b",))
        buf.access(("a",))  # refresh a; b is now LRU
        buf.access(("c",))  # evicts b
        assert buf.access(("a",))
        assert not buf.access(("b",))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(-1)

    def test_clear(self):
        buf = LRUBuffer(2)
        buf.access(("a",))
        buf.clear()
        assert not buf.access(("a",))


class TestPageStore:
    def test_cold_reads_always_charge(self):
        c = IOCounter()
        store = PageStore(counter=c)
        store.read_node("t", 1)
        store.read_node("t", 1)
        assert c.node_visits == 2

    def test_buffered_reads_charge_once(self):
        c = IOCounter()
        store = PageStore(counter=c, buffer=LRUBuffer(16))
        store.read_node("t", 1)
        store.read_node("t", 1)
        assert c.node_visits == 1
        store.read_inverted_list("t", 1, 7, 5000)
        store.read_inverted_list("t", 1, 7, 5000)
        assert c.invfile_blocks == 2  # ceil(5000/4096) charged once

    def test_distinct_indexes_do_not_collide(self):
        c = IOCounter()
        store = PageStore(counter=c, buffer=LRUBuffer(16))
        store.read_node("a", 1)
        store.read_node("b", 1)
        assert c.node_visits == 2

    def test_empty_list_is_free(self):
        c = IOCounter()
        store = PageStore(counter=c)
        store.read_inverted_list("t", 1, 7, 0)
        assert c.total == 0

    def test_size_model(self):
        assert PageStore.node_bytes(10) == NODE_HEADER_BYTES + 10 * SPATIAL_ENTRY_BYTES
        assert PageStore.posting_list_bytes(5, 12) == TERM_HEADER_BYTES + 60
