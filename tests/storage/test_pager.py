"""Tests for the page store and the LRU buffer pool."""

import pytest

from repro.storage.iostats import IOCounter
from repro.storage.pager import (
    IOCharge,
    LRUBuffer,
    PageStore,
    NODE_HEADER_BYTES,
    SPATIAL_ENTRY_BYTES,
    TERM_HEADER_BYTES,
)


class TestLRUBuffer:
    def test_capacity_zero_never_hits(self):
        buf = LRUBuffer(0)
        assert not buf.access(("a",))
        assert not buf.access(("a",))
        assert buf.hit_rate == 0.0

    def test_hit_on_second_access(self):
        buf = LRUBuffer(4)
        assert not buf.access(("a",))
        assert buf.access(("a",))
        assert buf.hits == 1 and buf.misses == 1

    def test_eviction_order_is_lru(self):
        buf = LRUBuffer(2)
        buf.access(("a",))
        buf.access(("b",))
        buf.access(("a",))  # refresh a; b is now LRU
        buf.access(("c",))  # evicts b
        assert buf.access(("a",))
        assert not buf.access(("b",))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(-1)

    def test_clear(self):
        buf = LRUBuffer(2)
        buf.access(("a",))
        buf.clear()
        assert not buf.access(("a",))


class TestPageStore:
    def test_cold_reads_always_charge(self):
        c = IOCounter()
        store = PageStore(counter=c)
        store.read_node("t", 1)
        store.read_node("t", 1)
        assert c.node_visits == 2

    def test_buffered_reads_charge_once(self):
        c = IOCounter()
        store = PageStore(counter=c, buffer=LRUBuffer(16))
        store.read_node("t", 1)
        store.read_node("t", 1)
        assert c.node_visits == 1
        store.read_inverted_list("t", 1, 7, 5000)
        store.read_inverted_list("t", 1, 7, 5000)
        assert c.invfile_blocks == 2  # ceil(5000/4096) charged once

    def test_distinct_indexes_do_not_collide(self):
        c = IOCounter()
        store = PageStore(counter=c, buffer=LRUBuffer(16))
        store.read_node("a", 1)
        store.read_node("b", 1)
        assert c.node_visits == 2

    def test_empty_list_is_free(self):
        c = IOCounter()
        store = PageStore(counter=c)
        store.read_inverted_list("t", 1, 7, 0)
        assert c.total == 0

    def test_size_model(self):
        assert PageStore.node_bytes(10) == NODE_HEADER_BYTES + 10 * SPATIAL_ENTRY_BYTES
        assert PageStore.posting_list_bytes(5, 12) == TERM_HEADER_BYTES + 60


class TestIOCharge:
    def test_charging_surface_matches_iocounter_rounding(self):
        """IOCharge duck-types IOCounter: same charges, same block
        rounding, so a ledger replay is bit-for-bit the shared trace."""
        counter = IOCounter()
        charge = IOCharge()
        for sink in (counter, charge):
            sink.visit_node()
            sink.load_bytes(1)        # rounds up to 1 block
            sink.load_bytes(4096)     # exactly 1 block
            sink.load_bytes(4097)     # 2 blocks
            sink.load_bytes(0)        # no charge
            sink.load_blocks(3)
        assert charge.node_visits == counter.node_visits
        assert charge.invfile_blocks == counter.invfile_blocks
        assert charge.snapshot() == counter.snapshot()
        assert charge.total == counter.total

    def test_apply_replays_onto_a_counter(self):
        counter = IOCounter(node_visits=2, invfile_blocks=5)
        charge = IOCharge(node_visits=3, invfile_blocks=7)
        charge.apply(counter)
        assert counter.node_visits == 5
        assert counter.invfile_blocks == 12

    def test_add_merges_ledgers(self):
        a = IOCharge(node_visits=1, invfile_blocks=2)
        a.add(IOCharge(node_visits=3, invfile_blocks=4))
        assert (a.node_visits, a.invfile_blocks) == (4, 6)


class TestLedgerView:
    def test_ledger_view_is_isolated_from_shared_counter(self):
        counter = IOCounter()
        store = PageStore(counter=counter)
        view, charge = store.ledger_view()
        view.read_node("tree", 1)
        view.read_inverted_list("tree", 1, 0, 5000)
        assert counter.total == 0        # shared state untouched
        assert charge.node_visits == 1
        assert charge.invfile_blocks == 2
        charge.apply(counter)
        assert counter.node_visits == 1
        assert counter.invfile_blocks == 2

    def test_ledger_view_replay_equals_direct_charging(self):
        """N interleaved executions replayed in any order reproduce the
        sequential totals exactly."""
        direct = IOCounter()
        direct_store = PageStore(counter=direct)
        shared = IOCounter()
        shared_store = PageStore(counter=shared)
        charges = []
        for i in range(4):
            view, charge = shared_store.ledger_view()
            for store in (direct_store, view):
                store.read_node("t", i)
                store.read_inverted_list("t", i, 0, 1000 * (i + 1))
            charges.append(charge)
        for charge in reversed(charges):  # order must not matter
            charge.apply(shared)
        assert shared.snapshot() == direct.snapshot()

    def test_ledger_view_inherits_page_size(self):
        store = PageStore(counter=IOCounter(), page_size=1024)
        view, charge = store.ledger_view()
        assert view.page_size == 1024
        view.read_inverted_list("t", 0, 0, 1025)
        assert charge.invfile_blocks == 2  # rounded at 1 kB pages

    def test_ledger_view_refuses_buffered_stores(self):
        store = PageStore(counter=IOCounter(), buffer=LRUBuffer(8))
        with pytest.raises(ValueError, match="cold store"):
            store.ledger_view()
