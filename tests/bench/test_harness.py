"""Tests for the experiment harness and parameter grid."""

import pytest

from repro.bench.harness import (
    approximation_ratio,
    build_workbench,
    clear_cache,
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
    measure_user_index,
)
from repro.bench.params import DEFAULTS, PAPER_SWEEPS, SWEEPS, config_for

TINY = DEFAULTS.with_(num_objects=300, num_users=30, num_locations=4, uw=10)


@pytest.fixture(scope="module")
def bench():
    wb = build_workbench(TINY, cached=False)
    yield wb
    clear_cache()


class TestParams:
    def test_sweeps_cover_every_paper_row(self):
        assert set(SWEEPS) == set(PAPER_SWEEPS)
        for key, vals in SWEEPS.items():
            assert len(vals) == len(PAPER_SWEEPS[key]), key

    def test_defaults_are_table5_bolds(self):
        assert DEFAULTS.k == 10
        assert DEFAULTS.alpha == 0.5
        assert DEFAULTS.ul == 3
        assert DEFAULTS.uw == 20
        assert DEFAULTS.area == 5.0
        assert DEFAULTS.num_locations == 20
        assert DEFAULTS.ws == 2

    def test_config_for_changes_one_knob(self):
        cfg = config_for("k", 50)
        assert cfg.k == 50
        assert cfg.alpha == DEFAULTS.alpha

    def test_config_for_unknown_param(self):
        with pytest.raises(ValueError):
            config_for("zoom", 1)

    def test_with_is_functional(self):
        a = DEFAULTS.with_(k=99)
        assert a.k == 99 and DEFAULTS.k == 10

    def test_label_mentions_knobs(self):
        assert "k10" in DEFAULTS.label()
        assert "flickr" in DEFAULTS.label()


class TestWorkbench:
    def test_build_populates_rsk(self, bench):
        assert len(bench.rsk) == 30
        assert all(0.0 <= v <= 1.0 for v in bench.rsk.values())
        assert 0.0 <= bench.rsk_group <= 1.0

    def test_query_matches_config(self, bench):
        assert bench.query.k == TINY.k
        assert bench.query.ws == TINY.ws
        assert len(bench.query.locations) == TINY.num_locations

    def test_unknown_dataset_kind(self):
        with pytest.raises(ValueError):
            build_workbench(TINY.with_(dataset="osm"), cached=False)

    def test_cache_returns_same_object(self):
        a = build_workbench(TINY)
        b = build_workbench(TINY)
        assert a is b
        clear_cache()


class TestMeasurements:
    def test_topk_metrics_positive(self, bench):
        b = measure_topk_baseline(bench)
        j = measure_topk_joint(bench)
        assert b.mrpu_ms > 0 and j.mrpu_ms > 0
        assert b.total_io > 0 and j.total_io > 0
        assert j.total_io < b.total_io  # the paper's headline effect

    def test_selection_methods_agree_on_optimum(self, bench):
        base = measure_selection(bench, "baseline")
        exact = measure_selection(bench, "exact")
        assert base.cardinality == exact.cardinality

    def test_selection_unknown_method(self, bench):
        with pytest.raises(ValueError):
            measure_selection(bench, "heuristic")

    def test_approximation_ratio_bounded(self, bench):
        ratio = approximation_ratio(bench)
        assert 0.0 <= ratio <= 1.0

    def test_user_index_metrics(self, bench):
        unindexed, indexed, pruned = measure_user_index(bench)
        assert unindexed > 0 and indexed > 0
        assert 0.0 <= pruned <= 100.0
