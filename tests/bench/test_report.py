"""Tests for the report generator (table formatting + figure registry)."""

import io

import pytest

from repro.bench.report import FIGURES, print_table, run_figure
from repro.bench.harness import clear_cache


class TestPrintTable:
    def test_layout(self):
        out = io.StringIO()
        print_table(
            "Fig X", [1, 5, 10], {"B ms": [1.0, 2.0, 3.0], "J ms": [0.5, 0.5, 0.5]},
            out,
        )
        text = out.getvalue()
        lines = text.strip().splitlines()
        assert lines[0].startswith("Fig X")
        assert "B ms" in text and "J ms" in text
        assert "2.00" in text

    def test_float_formatting(self):
        out = io.StringIO()
        print_table("T", [1], {"big": [1234.5], "small": [0.1234]}, out)
        text = out.getvalue()
        assert "1234" in text  # no decimals for >= 100
        assert "0.123" in text


class TestFigureRegistry:
    def test_every_paper_artifact_has_a_target(self):
        expected = {"table4"} | {f"fig{i}" for i in range(5, 16)}
        assert set(FIGURES) == expected

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_table4_runs(self):
        out = io.StringIO()
        run_figure("table4", quick=True, out=out)
        clear_cache()
        text = out.getvalue()
        assert "Total objects" in text
        assert "Avg unique terms per object" in text
