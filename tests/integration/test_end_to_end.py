"""Cross-module integration tests on generated workloads.

These are the highest-level gold tests: the whole optimized pipeline
(joint top-k + Algorithm 3 + Algorithm 4 / greedy) against the whole
baseline pipeline, on both dataset flavours and all three measures.
"""

import pytest

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.datagen import candidate_locations, flickr_like, generate_users, yelp_like


def build_workload(kind, seed, measure="LM", alpha=0.5, n_obj=200, n_users=25):
    if kind == "flickr":
        objects, vocab = flickr_like(num_objects=n_obj, vocab_size=150, seed=seed)
    else:
        objects, vocab = yelp_like(num_objects=max(60, n_obj // 3), seed=seed)
    wl = generate_users(
        objects, num_users=n_users, keywords_per_user=3, unique_keywords=12, seed=seed
    )
    candidate_locations(wl, num_locations=4, seed=seed)
    ds = Dataset(objects, wl.users, relevance=measure, alpha=alpha, vocabulary=vocab)
    query = MaxBRSTkNNQuery(
        ox=wl.query_object(),
        locations=list(wl.locations),
        keywords=list(wl.candidate_keywords),
        ws=2,
        k=5,
    )
    return ds, query


class TestOptimizedEqualsBaseline:
    @pytest.mark.parametrize("kind", ["flickr", "yelp"])
    @pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
    def test_exact_joint_equals_baseline(self, kind, measure):
        ds, query = build_workload(kind, seed=31, measure=measure)
        engine = MaxBRSTkNNEngine(ds, index_users=True)
        joint = engine.query(query, method="exact", mode="joint")
        base = engine.query(query, method="exact", mode="baseline")
        indexed = engine.query(query, method="exact", mode="indexed")
        assert joint.cardinality == base.cardinality == indexed.cardinality

    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_seeds(self, seed):
        ds, query = build_workload("flickr", seed=seed)
        engine = MaxBRSTkNNEngine(ds)
        joint = engine.query(query, method="exact", mode="joint")
        base = engine.query(query, method="exact", mode="baseline")
        assert joint.cardinality == base.cardinality

    @pytest.mark.parametrize("alpha", [0.1, 0.9])
    def test_alpha_extremes(self, alpha):
        ds, query = build_workload("flickr", seed=44, alpha=alpha)
        engine = MaxBRSTkNNEngine(ds)
        joint = engine.query(query, method="exact", mode="joint")
        base = engine.query(query, method="exact", mode="baseline")
        assert joint.cardinality == base.cardinality


class TestPerformanceShape:
    """Sanity-level shape assertions the paper's figures depend on."""

    def test_joint_topk_io_beats_baseline(self):
        ds, query = build_workload("flickr", seed=51, n_obj=400, n_users=40)
        engine = MaxBRSTkNNEngine(ds)
        engine.topk_baseline(5)
        io_baseline = engine.io.total
        engine.reset_io()
        engine.topk_joint(5)
        io_joint = engine.io.total
        assert io_joint < io_baseline

    def test_approx_evaluations_scale_linearly_in_ws(self):
        """The greedy's evaluation count is ~linear in ws while exact
        enumeration is combinatorial — the scaling the paper's Figure 11
        rests on.  (At tiny ws the two are comparable, so the assertion
        targets growth, not a single point.)"""
        ds, query = build_workload("flickr", seed=52)
        engine = MaxBRSTkNNEngine(ds)

        def combos(method, ws):
            
            q = MaxBRSTkNNQuery(
                ox=query.ox,
                locations=list(query.locations),
                keywords=list(query.keywords),
                ws=ws,
                k=query.k,
            )
            return engine.query(q, method=method).stats.keyword_combinations_scored

        growth_exact = combos("exact", 4) / max(1, combos("exact", 1))
        growth_approx = combos("approx", 4) / max(1, combos("approx", 1))
        assert growth_exact > growth_approx

    def test_approximation_ratio_reasonable(self):
        ratios = []
        for seed in (61, 62, 63):
            ds, query = build_workload("flickr", seed=seed)
            engine = MaxBRSTkNNEngine(ds)
            exact = engine.query(query, method="exact", mode="joint")
            approx = engine.query(query, method="approx", mode="joint")
            if exact.cardinality:
                ratios.append(approx.cardinality / exact.cardinality)
        assert ratios and min(ratios) >= 0.6  # paper reports 0.6–1.0
