"""Smoke tests for the example scripts.

The tiny Figure 1 example runs end to end; the larger examples are
import-checked and their mains exercised through the same API calls at
reduced scale elsewhere in the suite (running them verbatim would add
minutes of benchmark-scale work to every test run).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_complete(self):
        present = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart",
            "restaurant_menu",
            "ad_placement",
            "joint_topk_io",
            "franchise_expansion",
        } <= present

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "restaurant_menu",
            "ad_placement",
            "joint_topk_io",
            "franchise_expansion",
        ],
    )
    def test_example_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_restaurant_menu_runs(self, capsys):
        module = load_example("restaurant_menu")
        module.main()
        out = capsys.readouterr().out
        assert "Best placement" in out
        assert "sushi" in out
        assert "WON" in out
