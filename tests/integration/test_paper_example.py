"""Integration test reconstructing the paper's Figure 1 scenario.

Four users, two existing restaurants, three candidate locations, three
candidate menu items, ws = 1, k = 1.  The paper's narrative: placing the
new restaurant ox at l1 with menu 'sushi' makes it the top-1 relevant
restaurant of u1, u2 and u3 — the maximum achievable (3 users).

We lay out coordinates so the spatial relationships of Figure 1 hold
(u1, u2, u3 near l1; u4 near o2) and check that the engine reaches the
same optimum with every mode and method.
"""

import pytest

from repro import (
    Dataset,
    MaxBRSTkNNEngine,
    MaxBRSTkNNQuery,
    Point,
    STObject,
    User,
)
from repro.text.vocabulary import Vocabulary


@pytest.fixture(scope="module")
def figure1():
    vocab = Vocabulary()
    sushi = vocab.add("sushi")
    seafood = vocab.add("seafood")
    noodles = vocab.add("noodles")

    # Existing restaurants: o1 serves sushi (far right), o2 noodles.
    objects = [
        STObject(0, Point(8.0, 6.0), {sushi: 1}),
        STObject(1, Point(6.0, 1.0), {noodles: 1}),
    ]
    # Users u1..u3 cluster on the left (sushi crowd), u4 near o2.
    users = [
        User(0, Point(1.0, 6.0), {sushi: 1, seafood: 1}),
        User(1, Point(2.0, 5.0), {sushi: 1}),
        User(2, Point(1.5, 3.5), {sushi: 1, noodles: 1}),
        User(3, Point(5.5, 1.5), {noodles: 1}),
    ]
    dataset = Dataset(objects, users, relevance="KO", alpha=0.5, vocabulary=vocab)
    locations = [Point(1.5, 5.0), Point(7.0, 5.0), Point(4.0, 0.5)]  # l1, l2, l3
    keywords = [sushi, seafood, noodles]
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=99, location=locations[0], terms={}),
        locations=locations,
        keywords=keywords,
        ws=1,
        k=1,
    )
    return dataset, query, locations, {"sushi": sushi, "noodles": noodles}


class TestFigure1:
    @pytest.mark.parametrize("mode", ["baseline", "joint", "indexed"])
    @pytest.mark.parametrize("method", ["approx", "exact"])
    def test_optimum_is_l1_sushi_with_three_users(self, figure1, mode, method):
        dataset, query, locations, kw = figure1
        engine = MaxBRSTkNNEngine(dataset, fanout=4, index_users=True)
        if mode == "baseline" and method == "approx":
            pytest.skip("baseline has no approximate variant")
        result = engine.query(query, method=method, mode=mode)
        assert result.cardinality == 3
        # The narrative's optimum: menu 'sushi', winning u1, u2, u3.
        # (In this coordinate layout more than one location achieves the
        # optimum, so the location itself is not asserted — only that
        # the returned placement actually wins those three users.)
        assert result.keywords == frozenset({kw["sushi"]})
        assert result.brstknn == frozenset({0, 1, 2})  # u1, u2, u3
        assert result.location in locations

    def test_wrong_menu_wins_fewer_users(self, figure1):
        """Placing noodles at l1 cannot beat sushi's 3 users."""
        from repro.core.joint_topk import joint_topk
        from repro.core.keyword_selection import compute_brstknn
        from repro.index.irtree import MIRTree

        dataset, query, locations, kw = figure1
        tree = MIRTree(dataset.objects, dataset.relevance, fanout=4)
        topk = joint_topk(tree, dataset, 1)
        rsk = {uid: r.kth_score for uid, r in topk.items()}
        winners = compute_brstknn(
            dataset, query.ox, locations[0], {kw["noodles"]}, dataset.users, rsk
        )
        assert len(winners) < 3
