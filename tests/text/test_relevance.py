"""Tests for the three text relevance measures and their shared contract."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.relevance import (
    KeywordOverlapRelevance,
    LanguageModelRelevance,
    TfIdfRelevance,
    make_relevance,
)

DOCS = [
    {0: 2, 1: 1},        # d0
    {0: 1, 2: 3},        # d1
    {1: 1, 2: 1, 3: 1},  # d2
    {3: 4},              # d3
]


def doc_strategy(vocab=8, max_tf=4):
    return st.dictionaries(
        st.integers(0, vocab - 1), st.integers(1, max_tf), min_size=1, max_size=vocab
    )


class TestSharedContract:
    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_requires_fit(self, name):
        rel = make_relevance(name)
        with pytest.raises(RuntimeError):
            rel.score(DOCS[0], {0})

    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_score_in_unit_interval(self, name):
        rel = make_relevance(name).fit(DOCS)
        for doc in DOCS:
            for terms in ({0}, {0, 1}, {0, 1, 2, 3}, {5}):
                assert 0.0 <= rel.score(doc, terms) <= 1.0

    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_no_shared_terms_scores_zero(self, name):
        rel = make_relevance(name).fit(DOCS)
        assert rel.score(DOCS[3], {0, 1, 2}) == 0.0

    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_empty_user_terms_scores_zero(self, name):
        rel = make_relevance(name).fit(DOCS)
        assert rel.score(DOCS[0], set()) == 0.0

    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_unknown_term_contributes_nothing(self, name):
        rel = make_relevance(name).fit(DOCS)
        assert rel.score(DOCS[0], {99}) == 0.0

    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_score_with_weights_matches_score(self, name):
        rel = make_relevance(name).fit(DOCS)
        for doc in DOCS:
            weights = rel.document_weights(doc)
            for terms in ({0}, {1, 2}, {0, 3}):
                assert rel.score_with_weights(weights, terms) == pytest.approx(
                    rel.score(doc, terms)
                )

    @pytest.mark.parametrize("name", ["LM", "TF", "KO"])
    def test_best_document_reaches_one_for_single_term(self, name):
        """For a single-keyword user, the collection-best doc scores 1."""
        rel = make_relevance(name).fit(DOCS)
        for term in (0, 1, 2, 3):
            best = max(rel.score(d, {term}) for d in DOCS)
            assert best == pytest.approx(1.0)

    def test_make_relevance_unknown_raises(self):
        with pytest.raises(ValueError):
            make_relevance("BM25")


class TestTfIdf:
    def test_weight_formula(self):
        rel = TfIdfRelevance().fit(DOCS)
        # term 0 appears in 2 of 4 docs -> idf = ln 2; tf in d0 is 2.
        assert rel.term_weight(0, DOCS[0]) == pytest.approx(2 * math.log(2))

    def test_ubiquitous_term_weighs_zero(self):
        docs = [{7: 1, i: 1} for i in range(3)]
        rel = TfIdfRelevance().fit(docs)
        assert rel.term_weight(7, docs[0]) == 0.0


class TestLanguageModel:
    def test_weight_formula(self):
        lam = 0.25
        rel = LanguageModelRelevance(smoothing=lam).fit(DOCS)
        # d0 has length 3; term 0: tf 2. Collection: tf_c(0)=3, |C|=14.
        expected = (1 - lam) * (2 / 3) + lam * (3 / 14)
        assert rel.term_weight(0, DOCS[0]) == pytest.approx(expected)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            LanguageModelRelevance(smoothing=1.0)
        with pytest.raises(ValueError):
            LanguageModelRelevance(smoothing=-0.1)

    def test_absent_term_weighs_zero(self):
        """Background mass alone does not make a term scorable."""
        rel = LanguageModelRelevance().fit(DOCS)
        assert rel.term_weight(3, DOCS[0]) == 0.0

    def test_higher_tf_higher_weight(self):
        rel = LanguageModelRelevance().fit(DOCS)
        # Same doc length, different tf.
        w_low = rel.term_weight(2, {2: 1, 0: 3})
        w_high = rel.term_weight(2, {2: 3, 0: 1})
        assert w_high > w_low


class TestKeywordOverlap:
    def test_exact_fraction(self):
        rel = KeywordOverlapRelevance().fit(DOCS)
        # d2 keywords {1,2,3}; user {1,2,5,9} -> overlap 2 of 4... but 5
        # and 9 are not in the collection so only scorable mass counts:
        # KO normalizes by |u.d| regardless.
        assert rel.score(DOCS[2], {1, 2, 5, 9}) == pytest.approx(0.5)

    def test_full_overlap_scores_one(self):
        rel = KeywordOverlapRelevance().fit(DOCS)
        assert rel.score(DOCS[2], {1, 2, 3}) == pytest.approx(1.0)

    def test_ties_are_common(self):
        """Many docs tie under KO — the paper's stated cost driver."""
        rel = KeywordOverlapRelevance().fit(DOCS)
        s0 = rel.score(DOCS[0], {0})
        s1 = rel.score(DOCS[1], {0})
        assert s0 == s1 == 1.0


class TestProperties:
    @given(st.lists(doc_strategy(), min_size=1, max_size=12),
           st.sets(st.integers(0, 9), min_size=0, max_size=6),
           st.sampled_from(["LM", "TF", "KO"]))
    @settings(max_examples=120, deadline=None)
    def test_scores_bounded(self, docs, terms, name):
        rel = make_relevance(name).fit(docs)
        for doc in docs:
            s = rel.score(doc, terms)
            assert 0.0 <= s <= 1.0 + 1e-12

    @given(st.lists(doc_strategy(), min_size=2, max_size=10),
           st.sampled_from(["LM", "TF", "KO"]))
    @settings(max_examples=80, deadline=None)
    def test_max_weight_is_collection_max(self, docs, name):
        rel = make_relevance(name).fit(docs)
        terms = {t for d in docs for t in d}
        for t in terms:
            observed = max(rel.term_weight(t, d) for d in docs)
            assert observed <= rel.max_term_weight(t) + 1e-12
            assert observed == pytest.approx(rel.max_term_weight(t))

    @given(st.lists(doc_strategy(), min_size=1, max_size=10),
           st.sets(st.integers(0, 7), min_size=1, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_ko_equals_manual_overlap(self, docs, terms):
        rel = KeywordOverlapRelevance().fit(docs)
        for doc in docs:
            expected = len(terms & set(doc)) / len(terms)
            assert rel.score(doc, terms) == pytest.approx(expected)
