"""Tests for the example-facing tokenizer."""

from repro.text.tokenizer import STOPWORDS, tokenize, tokenize_all


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Sushi SEAFOOD") == ["sushi", "seafood"]

    def test_strips_punctuation(self):
        assert tokenize("sushi, seafood & noodles!") == ["sushi", "seafood", "noodles"]

    def test_drops_stopwords_by_default(self):
        assert tokenize("the best sushi in the city") == ["best", "sushi", "city"]

    def test_keeps_stopwords_on_request(self):
        toks = tokenize("the best sushi", drop_stopwords=False)
        assert "the" in toks

    def test_numbers_survive(self):
        assert tokenize("open 24 7") == ["open", "24", "7"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("... !!! ???") == []

    def test_batch(self):
        assert tokenize_all(["a cat", "a dog"]) == [["cat"], ["dog"]]

    def test_stopwords_are_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)
