"""Tests for vocabulary interning and collection statistics."""

import pytest

from repro.text.vocabulary import CollectionStats, Vocabulary


class TestVocabulary:
    def test_add_returns_stable_ids(self):
        v = Vocabulary()
        a = v.add("sushi")
        b = v.add("noodles")
        assert a != b
        assert v.add("sushi") == a
        assert len(v) == 2

    def test_roundtrip(self):
        v = Vocabulary()
        ids = v.add_all(["a", "b", "c"])
        assert v.decode(ids) == ["a", "b", "c"]
        assert v.term_of(v.id_of("b")) == "b"

    def test_contains_and_get(self):
        v = Vocabulary()
        v.add("x")
        assert "x" in v
        assert "y" not in v
        assert v.get("y") is None
        with pytest.raises(KeyError):
            v.id_of("y")

    def test_encode_counts_duplicates(self):
        v = Vocabulary()
        tf = v.encode(["a", "b", "a", "a"])
        assert tf[v.id_of("a")] == 3
        assert tf[v.id_of("b")] == 1


class TestCollectionStats:
    def test_from_documents(self):
        docs = [{0: 2, 1: 1}, {1: 3}, {2: 1}]
        s = CollectionStats.from_documents(docs)
        assert s.num_docs == 3
        assert s.collection_length == 7
        assert s.tf_c(1) == 4
        assert s.df(1) == 2
        assert s.tf_c(9) == 0
        assert s.df(9) == 0

    def test_incremental_matches_batch(self):
        docs = [{0: 1}, {0: 2, 3: 1}, {3: 5}]
        batch = CollectionStats.from_documents(docs)
        inc = CollectionStats()
        for d in docs:
            inc.add_document(d)
        assert inc.num_docs == batch.num_docs
        assert inc.collection_length == batch.collection_length
        assert inc.collection_tf == batch.collection_tf
        assert inc.doc_frequency == batch.doc_frequency

    def test_rejects_nonpositive_tf(self):
        with pytest.raises(ValueError):
            CollectionStats.from_documents([{0: 0}])

    def test_empty_collection(self):
        s = CollectionStats.from_documents([])
        assert s.num_docs == 0
        assert s.collection_length == 0
