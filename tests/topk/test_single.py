"""Tests for the per-user top-k search (baseline B)."""

import random

import pytest

from repro import Dataset
from repro.index.irtree import IRTree, MIRTree
from repro.storage.iostats import IOCounter
from repro.storage.pager import PageStore
from repro.topk.single import topk_all_users_individually, topk_single_user

from ..conftest import make_random_objects, make_random_users


def build(seed, measure="LM", alpha=0.5, n_obj=100, n_users=10, vocab=16):
    rng = random.Random(seed)
    objects = make_random_objects(n_obj, vocab, rng)
    users = make_random_users(n_users, vocab, rng)
    ds = Dataset(objects, users, relevance=measure, alpha=alpha)
    tree = MIRTree(objects, ds.relevance, fanout=4)
    return ds, tree


class TestSingleUserTopK:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("measure", ["LM", "TF", "KO"])
    def test_matches_brute_force(self, seed, measure):
        ds, tree = build(seed, measure)
        k = 6
        for u in ds.users:
            gold = sorted(
                ((ds.sts(o, u), o.item_id) for o in ds.objects),
                key=lambda t: (-t[0], t[1]),
            )[:k]
            got = topk_single_user(tree, ds, u, k)
            assert [s for s, _ in got.ranked] == pytest.approx(
                [s for s, _ in gold], abs=1e-9
            )

    def test_k_one(self):
        ds, tree = build(5)
        u = ds.users[0]
        got = topk_single_user(tree, ds, u, 1)
        best = max(ds.sts(o, u) for o in ds.objects)
        assert got.kth_score == pytest.approx(best, abs=1e-9)
        assert len(got.ranked) == 1

    def test_k_zero(self):
        ds, tree = build(6)
        got = topk_single_user(tree, ds, ds.users[0], 0)
        assert got.ranked == []
        assert got.kth_score == 0.0

    def test_k_exceeds_collection(self):
        ds, tree = build(7, n_obj=8)
        got = topk_single_user(tree, ds, ds.users[0], 100)
        assert len(got.ranked) == 8

    def test_works_on_plain_irtree(self):
        """Baseline search needs only max weights; IR-tree suffices."""
        rng = random.Random(9)
        objects = make_random_objects(80, 14, rng)
        users = make_random_users(5, 14, rng)
        ds = Dataset(objects, users, relevance="LM")
        ir = IRTree(objects, ds.relevance, fanout=4, minmax=False)
        for u in ds.users:
            gold_kth = sorted((ds.sts(o, u) for o in ds.objects), reverse=True)[4]
            assert topk_single_user(ir, ds, u, 5).kth_score == pytest.approx(
                gold_kth, abs=1e-9
            )

    def test_user_with_no_keywords_in_collection(self):
        """A user whose terms match nothing still ranks spatially."""
        from repro.model.objects import User
        from repro.spatial.geometry import Point

        rng = random.Random(10)
        objects = make_random_objects(50, 10, rng)
        stranger = User(item_id=0, location=Point(5, 5), terms={999: 1})
        ds = Dataset(objects, [stranger], relevance="LM", alpha=0.5)
        tree = MIRTree(objects, ds.relevance, fanout=4)
        got = topk_single_user(tree, ds, stranger, 3)
        gold = sorted((ds.sts(o, stranger) for o in ds.objects), reverse=True)[:3]
        assert [s for s, _ in got.ranked] == pytest.approx(gold, abs=1e-9)


class TestAllUsers:
    def test_covers_every_user(self):
        ds, tree = build(11)
        res = topk_all_users_individually(tree, ds, 4)
        assert set(res) == {u.item_id for u in ds.users}

    def test_io_scales_with_users(self):
        ds, tree = build(12, n_users=20)
        c1, c2 = IOCounter(), IOCounter()
        topk_all_users_individually(
            tree, ds, 4, users=ds.users[:5], store=PageStore(counter=c1)
        )
        topk_all_users_individually(
            tree, ds, 4, users=ds.users, store=PageStore(counter=c2)
        )
        assert c2.total > c1.total
