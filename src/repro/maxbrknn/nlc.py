"""Spatial-only MaxBRkNN via Nearest Location Circles (related work).

Section 2.1 of the paper surveys the purely spatial ancestor of
MaxBRSTkNN: given facilities ``O`` and users ``U``, find where to place
a new facility so it becomes a k-nearest facility of the maximum number
of users.  The standard tool is the **Nearest Location Circle** (NLC):
the circle around user ``u`` whose radius is the distance to ``u``'s
k-th nearest existing facility.  A new facility wins ``u`` exactly when
it lands inside ``u``'s NLC, so MaxBRkNN asks for the point covered by
the most circles (MAXOVERLAP computes circle-intersection points;
MAXFIRST partitions space; FILM approximates on a grid).

This module implements

* NLC construction over the library's R-tree,
* exact candidate-location evaluation (count of covering NLCs), and
* a FILM-style grid approximation that returns the best cell.

It is both a usable spatial baseline and a correctness oracle: with
``alpha = 1`` the MaxBRSTkNN engine must agree with the NLC count on
any candidate location (a cross-check test enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.objects import STObject, User
from ..spatial.geometry import Point, Rect
from ..spatial.rtree import RTree, RTreeEntry

__all__ = ["NLC", "build_nlcs", "count_brknn", "best_candidate_location", "grid_maxbrknn"]


@dataclass(frozen=True, slots=True)
class NLC:
    """One user's nearest-location circle."""

    user_id: int
    center: Point
    radius: float

    def contains(self, p: Point) -> bool:
        # <= : a new facility tied with the k-th nearest still becomes
        # a k-nearest facility (matches the engine's >= threshold).
        return self.center.distance_to(p) <= self.radius + 1e-12

    def bounding_box(self) -> Rect:
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )


def build_nlcs(
    facilities: Sequence[STObject], users: Sequence[User], k: int
) -> List[NLC]:
    """Radius of each user's k-th nearest facility via the R-tree."""
    if k <= 0:
        raise ValueError("k must be positive")
    entries = [RTreeEntry(point=o.location, item=o.item_id) for o in facilities]
    tree: RTree[int] = RTree.bulk_load(entries)
    nlcs: List[NLC] = []
    for u in users:
        neighbors = tree.nearest(u.location, n=k)
        if not neighbors:
            raise ValueError("cannot build NLCs without facilities")
        radius = neighbors[-1].point.distance_to(u.location)
        nlcs.append(NLC(user_id=u.item_id, center=u.location, radius=radius))
    return nlcs


def count_brknn(nlcs: Sequence[NLC], location: Point) -> int:
    """Number of users a facility at ``location`` would win."""
    return sum(1 for c in nlcs if c.contains(location))


def best_candidate_location(
    nlcs: Sequence[NLC], candidates: Sequence[Point]
) -> Tuple[Optional[Point], int]:
    """Exact MaxBRkNN restricted to a candidate location set."""
    best, best_count = None, -1
    for p in candidates:
        n = count_brknn(nlcs, p)
        if n > best_count:
            best, best_count = p, n
    return best, max(best_count, 0)


def grid_maxbrknn(
    nlcs: Sequence[NLC], resolution: int = 64, bounds: Optional[Rect] = None
) -> Tuple[Point, int]:
    """FILM-style grid approximation of the unrestricted MaxBRkNN.

    Overlays a ``resolution x resolution`` grid on ``bounds`` (default:
    the union of the NLC bounding boxes) and counts, per cell center,
    the covering NLCs.  Returns the best cell center and its count —
    a lower bound on the true optimum that converges as the resolution
    grows (the classic accuracy/time trade-off of FILM).
    """
    if not nlcs:
        raise ValueError("grid_maxbrknn needs at least one NLC")
    if resolution < 1:
        raise ValueError("resolution must be positive")
    if bounds is None:
        bounds = Rect.from_rects([c.bounding_box() for c in nlcs])
    dx = bounds.width / resolution
    dy = bounds.height / resolution

    # Rasterize each circle into the cells its bounding box touches —
    # O(total covered cells) instead of O(cells * circles).
    counts: Dict[Tuple[int, int], int] = {}
    for c in nlcs:
        bb = c.bounding_box()
        ix0 = max(0, int((bb.min_x - bounds.min_x) / dx) if dx > 0 else 0)
        ix1 = min(resolution - 1, int((bb.max_x - bounds.min_x) / dx) if dx > 0 else 0)
        iy0 = max(0, int((bb.min_y - bounds.min_y) / dy) if dy > 0 else 0)
        iy1 = min(resolution - 1, int((bb.max_y - bounds.min_y) / dy) if dy > 0 else 0)
        for ix in range(ix0, ix1 + 1):
            cx = bounds.min_x + (ix + 0.5) * dx
            for iy in range(iy0, iy1 + 1):
                cy = bounds.min_y + (iy + 0.5) * dy
                if c.contains(Point(cx, cy)):
                    counts[(ix, iy)] = counts.get((ix, iy), 0) + 1

    if not counts:
        return bounds.center, 0
    (ix, iy), best = max(counts.items(), key=lambda kv: (kv[1], -kv[0][0], -kv[0][1]))
    center = Point(bounds.min_x + (ix + 0.5) * dx, bounds.min_y + (iy + 0.5) * dy)
    return center, best
