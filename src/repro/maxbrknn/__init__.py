"""Spatial-only MaxBRkNN baseline (related-work extension)."""

from .nlc import NLC, best_candidate_location, build_nlcs, count_brknn, grid_maxbrknn

__all__ = [
    "NLC",
    "best_candidate_location",
    "build_nlcs",
    "count_brknn",
    "grid_maxbrknn",
]
