"""Spatial-textual indexes: inverted files, IR-tree, MIR-tree, MIUR-tree."""

from .dirtree import MDIRTree, leaf_cohesion
from .invfile import InvertedFile, Posting, merge_minmax
from .irtree import ChildView, IRTree, MIRTree, ObjectView
from .miurtree import MIURTree, UserNodeView

__all__ = [
    "ChildView",
    "IRTree",
    "InvertedFile",
    "MDIRTree",
    "MIRTree",
    "MIURTree",
    "ObjectView",
    "Posting",
    "UserNodeView",
    "leaf_cohesion",
    "merge_minmax",
]
