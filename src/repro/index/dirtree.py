"""The DIR-tree variant: text-aware node construction (Section 5.1).

Cong et al. (2009) proposed the DIR-tree alongside the IR-tree: nodes
are built considering *both* spatial enlargement and textual similarity
so that documents grouped under one node share vocabulary.  Tighter
textual cohesion shrinks each node's pseudo-document (the union of its
subtree's terms), which shrinks posting lists and sharpens the min/max
bounds.  The paper notes its min-max extension "can be constructed in
the same manner as the DIR-tree"; this module is that combination — a
**min-max DIR-tree** (``MDIRTree``).

Construction here is bulk: a spatial STR packing is refined by a few
passes of greedy leaf reassignment.  Moving object ``o`` from leaf
``A`` to nearby leaf ``B`` is accepted when it lowers the weighted cost

    ``beta * spatial_cost + (1 - beta) * textual_cost``

where the spatial cost is the total leaf-MBR margin and the textual
cost counts vocabulary terms that are *not* shared by the whole leaf
(union minus intersection size — exactly what widens the min/max gap in
the posting lists).  ``beta = 1`` degenerates to the plain MIR-tree
packing; the tests verify query results are identical regardless of
grouping (the bounds stay sound), only the I/O changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..model.objects import STObject
from ..spatial.geometry import Rect
from ..spatial.rtree import RTree, RTreeEntry, RTreeNode, DEFAULT_FANOUT
from ..text.relevance import TextRelevance
from .irtree import IRTree

__all__ = ["MDIRTree", "leaf_cohesion"]


def leaf_cohesion(tree: IRTree, objects: Dict[int, STObject]) -> float:
    """Mean pairwise Jaccard similarity of documents within each leaf.

    Works for any IR-tree-shaped index, so the plain MIR-tree and the
    MDIR-tree can be compared on identical data.
    """
    scores: List[float] = []
    for node in tree.rtree.iter_nodes():
        if not node.is_leaf or len(node.entries) < 2:
            continue
        term_sets = [objects[e.item].keyword_set for e in node.entries]
        total, pairs = 0.0, 0
        for i in range(len(term_sets)):
            for j in range(i + 1, len(term_sets)):
                union = term_sets[i] | term_sets[j]
                if union:
                    total += len(term_sets[i] & term_sets[j]) / len(union)
                    pairs += 1
        if pairs:
            scores.append(total / pairs)
    return sum(scores) / len(scores) if scores else 0.0


class MDIRTree(IRTree):
    """Min-max IR-tree with DIR-style (spatial + textual) leaf grouping.

    Parameters
    ----------
    beta:
        Weight of the spatial cost in [0, 1]; lower values let textual
        cohesion reshape leaves more aggressively.
    refinement_passes:
        Number of greedy reassignment sweeps over all objects.
    """

    index_name = "mdir-tree"

    def __init__(
        self,
        objects: Sequence[STObject],
        relevance: TextRelevance,
        fanout: int = DEFAULT_FANOUT,
        beta: float = 0.5,
        refinement_passes: int = 2,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must lie in [0, 1]")
        if refinement_passes < 0:
            raise ValueError("refinement_passes must be non-negative")
        self.beta = beta
        self.refinement_passes = refinement_passes
        self._objects_for_build = {o.item_id: o for o in objects}
        super().__init__(objects, relevance, fanout=fanout, minmax=True)

    # ------------------------------------------------------------------
    def _build_rtree(
        self, entries: List[RTreeEntry[int]], fanout: int
    ) -> RTree[int]:
        base = RTree.bulk_load(entries, fanout=fanout)
        if base.root is None or base.root.is_leaf or self.refinement_passes == 0:
            return base
        leaves = [n for n in base.rtree_leaves()] if hasattr(base, "rtree_leaves") else [
            n for n in base.iter_nodes() if n.is_leaf
        ]
        groups = [[e for e in leaf.entries] for leaf in leaves]
        groups = self._refine_groups(groups, fanout)
        # Re-pack: leaves from the refined groups, upper levels by STR.
        rebuilt = RTree(fanout=fanout)
        leaf_nodes: List[RTreeNode[int]] = []
        for group in groups:
            if not group:
                continue
            node = RTreeNode[int](
                is_leaf=True,
                rect=Rect.from_rects([e.rect for e in group]),
                entries=list(group),
            )
            node.subtree_count = len(group)
            leaf_nodes.append(node)
        level = leaf_nodes
        while len(level) > 1:
            level = rebuilt._pack_internal(level)
        rebuilt.root = level[0]
        rebuilt._size = sum(len(g) for g in groups)
        rebuilt._assign_page_ids()
        return rebuilt

    # ------------------------------------------------------------------
    def _group_cost(self, group: List[RTreeEntry[int]]) -> float:
        """beta * margin + (1 - beta) * unshared vocabulary size."""
        if not group:
            return 0.0
        rect = Rect.from_rects([e.rect for e in group])
        union: Set[int] = set()
        inter: Set[int] | None = None
        for e in group:
            terms = self._objects_for_build[e.item].keyword_set
            union |= terms
            inter = set(terms) if inter is None else inter & terms
        unshared = len(union) - len(inter or set())
        return self.beta * rect.margin + (1.0 - self.beta) * float(unshared)

    def _refine_groups(
        self, groups: List[List[RTreeEntry[int]]], fanout: int
    ) -> List[List[RTreeEntry[int]]]:
        """Greedy cost-improving *swaps* of objects between nearby leaves.

        STR leaves are packed to capacity, so one-way moves rarely have
        room; exchanging a pair keeps every leaf at its size while still
        letting textual cohesion reshape membership.
        """
        if len(groups) < 2:
            return groups
        for _ in range(self.refinement_passes):
            swapped = 0
            centers = [
                Rect.from_rects([e.rect for e in g]).center for g in groups
            ]
            for gi, group in enumerate(groups):
                neighbors = sorted(
                    (j for j in range(len(groups)) if j != gi),
                    key=lambda j, centers=centers, gi=gi: (
                        centers[j].distance_to(centers[gi])
                    ),
                )[:4]
                for entry in list(group):
                    best = None  # (cost_delta, j, partner)
                    cost_gi = self._group_cost(group)
                    for j in neighbors:
                        cost_j = self._group_cost(groups[j])
                        for partner in groups[j]:
                            group.remove(entry)
                            groups[j].remove(partner)
                            group.append(partner)
                            groups[j].append(entry)
                            delta = (
                                self._group_cost(group)
                                + self._group_cost(groups[j])
                                - cost_gi
                                - cost_j
                            )
                            groups[j].remove(entry)
                            group.remove(partner)
                            groups[j].append(partner)
                            group.append(entry)
                            if delta < -1e-12 and (best is None or delta < best[0]):
                                best = (delta, j, partner)
                    if best is not None:
                        _, j, partner = best
                        group.remove(entry)
                        groups[j].remove(partner)
                        group.append(partner)
                        groups[j].append(entry)
                        centers[gi] = Rect.from_rects([e.rect for e in group]).center
                        centers[j] = Rect.from_rects(
                            [e.rect for e in groups[j]]
                        ).center
                        swapped += 1
            if swapped == 0:
                break
        return [g for g in groups if g]

    # ------------------------------------------------------------------
    def textual_cohesion(self) -> float:
        """Mean pairwise Jaccard similarity of documents within leaves.

        Higher is better; the DIR grouping should beat the plain STR
        packing on this metric when text is topically clustered (tests
        assert it).  Defined on any IR-tree-shaped index via
        :func:`leaf_cohesion`.
        """
        return leaf_cohesion(self, self._objects_for_build)
