"""The IR-tree and the MIR-tree (Min-max IR-tree) over the object set.

The **IR-tree** (Cong et al., PVLDB 2009) is an R-tree in which every
node references an inverted file over its entries.  For a leaf node the
postings carry the actual document term weights; for an internal node
each child is summarized by a *pseudo-document* — the union of the
documents in the child's subtree, a term weighing the **maximum** weight
it attains there.  This gives upper bounds for best-first top-k search.

The **MIR-tree** (Section 5.1 of the paper, the reproduction target)
additionally stores the **minimum** weight of each term over the
*intersection* of the subtree's documents (0 when any document misses
the term).  The extra field is what enables the *lower* bound
estimations of Section 5.3, which drive the joint top-k traversal.

Both trees share this implementation; ``minmax=False`` gives the classic
IR-tree (8-byte postings), ``minmax=True`` the MIR-tree (12-byte
postings).  Construction, splitting and updates are identical to the
R-tree substrate, matching the paper's cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..model.objects import STObject
from ..spatial.geometry import Rect
from ..spatial.rtree import RTree, RTreeEntry, RTreeNode, DEFAULT_FANOUT
from ..storage.pager import PageStore
from ..text.relevance import TextRelevance
from .invfile import InvertedFile, merge_minmax

__all__ = ["IRTree", "MIRTree", "ChildView", "ObjectView"]


@dataclass(slots=True)
class ChildView:
    """An internal-node entry as seen after loading the inverted lists.

    ``weights`` maps term id -> (max weight, min weight) restricted to
    the terms the caller asked for; terms absent from the subtree's
    union are simply missing (both bounds 0).
    """

    node: RTreeNode[int]
    weights: Dict[int, Tuple[float, float]]


@dataclass(slots=True)
class ObjectView:
    """A leaf entry (an actual object) with its loaded term weights."""

    obj: STObject
    weights: Dict[int, Tuple[float, float]]

    @property
    def rect(self) -> Rect:
        return Rect.from_point(self.obj.location)


class IRTree:
    """Spatial-textual tree over objects; see module docstring.

    Parameters
    ----------
    objects:
        The object set ``O``.
    relevance:
        A *fitted* text relevance measure; its ``document_weights`` are
        what the posting lists store.
    fanout:
        R-tree fanout.
    minmax:
        True builds the MIR-tree layout (min and max weights).
    """

    index_name = "ir-tree"

    def __init__(
        self,
        objects: Sequence[STObject],
        relevance: TextRelevance,
        fanout: int = DEFAULT_FANOUT,
        minmax: bool = False,
    ) -> None:
        if not objects:
            raise ValueError("cannot index an empty object set")
        self.relevance = relevance
        self.minmax = minmax
        self.fanout = fanout
        self._objects: Dict[int, STObject] = {o.item_id: o for o in objects}
        if len(self._objects) != len(objects):
            raise ValueError("duplicate object ids in the object set")
        self._doc_weights: Dict[int, Dict[int, float]] = {
            o.item_id: relevance.document_weights(o.terms) for o in objects
        }
        entries = [RTreeEntry(point=o.location, item=o.item_id) for o in objects]
        self.rtree: RTree[int] = self._build_rtree(entries, fanout)
        # page_id -> inverted file of that node; page_id -> (max, min)
        # subtree summaries used while building parent files.
        self._invfiles: Dict[int, InvertedFile] = {}
        self._summaries: Dict[int, Tuple[Dict[int, float], Dict[int, float]]] = {}
        root = self.rtree.root
        assert root is not None
        self._build_node(root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_rtree(
        self, entries: List[RTreeEntry[int]], fanout: int
    ) -> RTree[int]:
        """Build the spatial skeleton; subclasses override the grouping.

        The base IR/MIR-tree packs purely spatially (STR); the DIR-tree
        variant refines leaf membership with textual cohesion.
        """
        return RTree.bulk_load(entries, fanout=fanout)

    def _build_node(
        self, node: RTreeNode[int]
    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Build this node's inverted file; return its subtree summary."""
        inv = InvertedFile(minmax=self.minmax)
        if node.is_leaf:
            docs = []
            for entry in node.entries:
                weights = self._doc_weights[entry.item]
                inv.add_document(entry.item, weights)
                docs.append(weights)
            summary = merge_minmax(docs)
        else:
            child_summaries = []
            for child in node.children:
                child_summary = self._build_node(child)
                inv.add_summary(child.page_id, child_summary[0], child_summary[1])
                child_summaries.append(child_summary)
            summary = _merge_summaries(child_summaries)
        self._invfiles[node.page_id] = inv
        self._summaries[node.page_id] = summary
        return summary

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode[int]:
        root = self.rtree.root
        assert root is not None
        return root

    def __len__(self) -> int:
        return len(self.rtree)

    def object_by_id(self, object_id: int) -> STObject:
        return self._objects[object_id]

    def document_weights(self, object_id: int) -> Dict[int, float]:
        """Actual term weights of one object's document."""
        return self._doc_weights[object_id]

    def invfile_of(self, node: RTreeNode[int]) -> InvertedFile:
        return self._invfiles[node.page_id]

    def subtree_summary(
        self, node: RTreeNode[int]
    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """(max weights over union, min weights over intersection)."""
        return self._summaries[node.page_id]

    def total_inverted_bytes(self) -> int:
        return sum(inv.total_bytes() for inv in self._invfiles.values())

    # ------------------------------------------------------------------
    # Charged access (the only path algorithms use)
    # ------------------------------------------------------------------
    def read_node(
        self,
        node: RTreeNode[int],
        term_ids: Iterable[int],
        store: Optional[PageStore] = None,
    ) -> Tuple[List[ChildView], List[ObjectView]]:
        """Visit ``node``: charge I/O, load posting lists, view entries.

        Returns ``(child_views, object_views)`` — one of the two lists is
        empty depending on the node kind.  Every entry of the node is
        returned even if it matches none of ``term_ids`` (its weight map
        is then empty): the spatial part of the score still applies.
        """
        terms = set(term_ids)
        if store is not None:
            store.read_node(self.index_name, node.page_id)
        inv = self._invfiles[node.page_id]
        inv.charge_lists(store, self.index_name, node.page_id, terms)
        by_entry = inv.entry_weights(terms)
        if node.is_leaf:
            objects = [
                ObjectView(
                    obj=self._objects[entry.item],
                    weights=by_entry.get(entry.item, {}),
                )
                for entry in node.entries
            ]
            return [], objects
        children = [
            ChildView(node=child, weights=by_entry.get(child.page_id, {}))
            for child in node.children
        ]
        return children, []

    # ------------------------------------------------------------------
    # Invariants (tests call this)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structural + weight-bound invariants of the (M)IR-tree."""
        self.rtree.check_invariants()
        root = self.root
        self._check_node(root)

    def _check_node(self, node: RTreeNode[int]) -> Tuple[Dict[int, float], Dict[int, float]]:
        max_w, min_w = self._summaries[node.page_id]
        if node.is_leaf:
            expect = merge_minmax([self._doc_weights[e.item] for e in node.entries])
        else:
            expect = _merge_summaries([self._check_node(c) for c in node.children])
        assert _weights_close(max_w, expect[0]), "stale max summary"
        assert _weights_close(min_w, expect[1]), "stale min summary"
        for tid, maxw in max_w.items():
            minw = min_w.get(tid, 0.0)
            assert minw <= maxw + 1e-9, "min exceeds max in summary"
        return max_w, min_w


class MIRTree(IRTree):
    """The Min-max IR-tree of Section 5.1 (``minmax=True`` IR-tree)."""

    index_name = "mir-tree"

    def __init__(
        self,
        objects: Sequence[STObject],
        relevance: TextRelevance,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(objects, relevance, fanout=fanout, minmax=True)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _merge_summaries(
    summaries: Sequence[Tuple[Dict[int, float], Dict[int, float]]],
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Merge child (max, min) summaries into the parent summary.

    Max weights merge over the union; min weights survive only for terms
    present in the intersection of *every* child (with the smallest
    value), because a term absent anywhere in the subtree has minimum
    weight 0 and is dropped.
    """
    max_w: Dict[int, float] = {}
    for child_max, _ in summaries:
        for tid, w in child_max.items():
            if w > max_w.get(tid, float("-inf")):
                max_w[tid] = w
    min_w: Dict[int, float] = {}
    first = True
    for _, child_min in summaries:
        if first:
            min_w = dict(child_min)
            first = False
            continue
        for tid in list(min_w):
            w = child_min.get(tid)
            if w is None:
                del min_w[tid]
            elif w < min_w[tid]:
                min_w[tid] = w
    return max_w, min_w


def _weights_close(a: Mapping[int, float], b: Mapping[int, float]) -> bool:
    if set(a) != set(b):
        return False
    return all(abs(a[t] - b[t]) <= 1e-9 for t in a)
