"""Per-node inverted files with minimum and maximum term weights.

Every node of an IR-tree references an inverted file over the documents
(or pseudo-documents) of its entries.  The MIR-tree of Section 5.1
extends each posting from ``<d, w>`` to ``<d, maxw, minw>``:

* for a **leaf** node both weights equal the document's term weight;
* for a **non-leaf** node the pseudo-document of a child is the union of
  the documents in the child's subtree — ``maxw`` is the maximum weight
  of the term in that union, ``minw`` the minimum weight over the
  *intersection* (0 when some document in the subtree misses the term).

The same class serves the plain IR-tree (callers simply ignore ``minw``
and the size model drops the extra field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..storage.pager import (
    PageStore,
    POSTING_ENTRY_BYTES_IR,
    POSTING_ENTRY_BYTES_MIR,
)

__all__ = ["Posting", "InvertedFile", "merge_minmax"]


@dataclass(frozen=True, slots=True)
class Posting:
    """One posting ``<entry_key, maxw, minw>``.

    ``entry_key`` identifies an entry of the owning node: the object id
    in a leaf, the child node's page id in an internal node.
    """

    entry_key: int
    max_weight: float
    min_weight: float

    def __post_init__(self) -> None:
        if self.min_weight > self.max_weight + 1e-12:
            raise ValueError(
                f"posting min weight {self.min_weight} exceeds max {self.max_weight}"
            )


class InvertedFile:
    """Inverted file of one tree node: term id -> list of postings."""

    def __init__(self, minmax: bool = True) -> None:
        #: True for MIR-tree layout (12-byte postings), False for IR-tree.
        self.minmax = minmax
        self._lists: Dict[int, List[Posting]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_document(self, entry_key: int, weights: Mapping[int, float]) -> None:
        """Add a leaf document: min == max == actual weight."""
        for tid, w in weights.items():
            self._lists.setdefault(tid, []).append(Posting(entry_key, w, w))

    def add_summary(
        self,
        entry_key: int,
        max_weights: Mapping[int, float],
        min_weights: Mapping[int, float],
    ) -> None:
        """Add an internal entry's pseudo-document summary.

        ``max_weights`` covers the union of subtree terms; a term absent
        from ``min_weights`` has minimum weight 0 (not in intersection).
        """
        for tid, maxw in max_weights.items():
            minw = min_weights.get(tid, 0.0)
            self._lists.setdefault(tid, []).append(Posting(entry_key, maxw, minw))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def postings(self, term_id: int) -> List[Posting]:
        """Posting list of ``term_id`` (empty when absent)."""
        return self._lists.get(term_id, [])

    def terms(self) -> Iterator[int]:
        return iter(self._lists)

    def __contains__(self, term_id: int) -> bool:
        return term_id in self._lists

    def __len__(self) -> int:
        """Number of distinct terms."""
        return len(self._lists)

    def num_postings(self) -> int:
        return sum(len(v) for v in self._lists.values())

    # ------------------------------------------------------------------
    # Per-entry views (what the traversal needs after loading lists)
    # ------------------------------------------------------------------
    def entry_weights(
        self, term_ids: Iterable[int]
    ) -> Dict[int, Dict[int, Tuple[float, float]]]:
        """Group postings of ``term_ids`` by entry key.

        Returns ``{entry_key: {term_id: (maxw, minw)}}`` — the traversal
        loads the lists for the super-user's terms once and then scores
        every child entry from this view.
        """
        out: Dict[int, Dict[int, Tuple[float, float]]] = {}
        for tid in set(term_ids):
            for p in self._lists.get(tid, []):
                out.setdefault(p.entry_key, {})[tid] = (p.max_weight, p.min_weight)
        return out

    # ------------------------------------------------------------------
    # Size model and I/O charging
    # ------------------------------------------------------------------
    @property
    def posting_entry_bytes(self) -> int:
        return POSTING_ENTRY_BYTES_MIR if self.minmax else POSTING_ENTRY_BYTES_IR

    def list_bytes(self, term_id: int) -> int:
        plist = self._lists.get(term_id)
        if not plist:
            return 0
        return PageStore.posting_list_bytes(len(plist), self.posting_entry_bytes)

    def total_bytes(self) -> int:
        return sum(self.list_bytes(t) for t in self._lists)

    def charge_lists(
        self,
        store: Optional[PageStore],
        index_name: str,
        page_id: int,
        term_ids: Iterable[int],
    ) -> None:
        """Charge the I/O of loading the posting lists for ``term_ids``."""
        if store is None:
            return
        for tid in set(term_ids):
            nbytes = self.list_bytes(tid)
            if nbytes:
                store.read_inverted_list(index_name, page_id, tid, nbytes)


def merge_minmax(
    documents: Iterable[Mapping[int, float]],
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Min/max merge of term-weight maps, the MIR-tree node summary rule.

    Returns ``(max_weights, min_weights)`` where ``max_weights`` holds
    the maximum weight of each term over the union of the inputs and
    ``min_weights`` holds the minimum over their intersection only —
    a term missing from any input document is dropped from
    ``min_weights`` (its effective minimum is 0).
    """
    max_w: Dict[int, float] = {}
    min_w: Dict[int, float] = {}
    first = True
    for doc in documents:
        for tid, w in doc.items():
            if w > max_w.get(tid, float("-inf")):
                max_w[tid] = w
        if first:
            min_w = dict(doc)
            first = False
        else:
            for tid in list(min_w):
                w = doc.get(tid)
                if w is None:
                    del min_w[tid]
                elif w < min_w[tid]:
                    min_w[tid] = w
    return max_w, min_w
