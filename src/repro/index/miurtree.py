"""The MIUR-tree (Modified IUR-tree) over the user set (Section 7).

When the user set is large (or sparse) the flat super-user of Section
5.2 is too coarse and the users themselves should live on disk.  The
MIUR-tree is an R-tree in which every node is augmented with:

* the **union** and the **intersection** of the keyword sets appearing
  in its subtree (binary vectors in the paper's Figure 4);
* ``cp.num`` — the number of actual users stored in the subtree.

Every node therefore *is* a super-user for the users below it: the
bound machinery of Section 5.3 applies unchanged with the node's MBR,
union and intersection vectors.  We also propagate the min/max
user-side normalizer per subtree (the soundness fix documented in
DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..model.objects import SuperUser, User
from ..spatial.rtree import RTree, RTreeEntry, RTreeNode, DEFAULT_FANOUT
from ..storage.pager import PageStore
from ..text.relevance import TextRelevance

__all__ = ["MIURTree", "UserNodeView"]


@dataclass(slots=True)
class UserNodeView:
    """One MIUR-tree node with its textual augmentation, as a super-user."""

    node: RTreeNode[int]
    summary: SuperUser

    @property
    def page_id(self) -> int:
        return self.node.page_id

    @property
    def is_leaf(self) -> bool:
        return self.node.is_leaf

    @property
    def user_count(self) -> int:
        return self.summary.count


class MIURTree:
    """R-tree over users with union/intersection keyword augmentation."""

    index_name = "miur-tree"

    def __init__(
        self,
        users: Sequence[User],
        relevance: TextRelevance,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        if not users:
            raise ValueError("cannot index an empty user set")
        self.relevance = relevance
        self.fanout = fanout
        self._users: Dict[int, User] = {u.item_id: u for u in users}
        if len(self._users) != len(users):
            raise ValueError("duplicate user ids in the user set")
        entries = [RTreeEntry(point=u.location, item=u.item_id) for u in users]
        self.rtree: RTree[int] = RTree.bulk_load(entries, fanout=fanout)
        self._summaries: Dict[int, SuperUser] = {}
        root = self.rtree.root
        assert root is not None
        self._build_node(root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_node(self, node: RTreeNode[int]) -> SuperUser:
        if node.is_leaf:
            group = [self._users[e.item] for e in node.entries]
            summary = SuperUser.from_users(group, self.relevance)
        else:
            parts = [self._build_node(c) for c in node.children]
            union: Set[int] = set()
            inter: Optional[Set[int]] = None
            min_z = float("inf")
            max_z = 0.0
            count = 0
            for p in parts:
                union |= p.union_terms
                inter = (
                    set(p.intersection_terms)
                    if inter is None
                    else inter & p.intersection_terms
                )
                min_z = min(min_z, p.min_normalizer)
                max_z = max(max_z, p.max_normalizer)
                count += p.count
            summary = SuperUser.from_parts(
                mbr=node.rect,
                union_terms=union,
                intersection_terms=inter or set(),
                min_normalizer=min_z,
                max_normalizer=max_z,
                count=count,
            )
        self._summaries[node.page_id] = summary
        return summary

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> UserNodeView:
        root = self.rtree.root
        assert root is not None
        return UserNodeView(node=root, summary=self._summaries[root.page_id])

    def __len__(self) -> int:
        return len(self.rtree)

    def user_by_id(self, user_id: int) -> User:
        return self._users[user_id]

    def summary_of(self, node: RTreeNode[int]) -> SuperUser:
        return self._summaries[node.page_id]

    # ------------------------------------------------------------------
    # Charged access
    # ------------------------------------------------------------------
    def read_children(
        self, view: UserNodeView, store: Optional[PageStore] = None
    ) -> Tuple[List[UserNodeView], List[User]]:
        """Visit a node and return its children.

        For a leaf node the second list holds the actual users; for an
        internal node the first list holds the child views.  Charges one
        node I/O plus the node's keyword-vector payload.
        """
        node = view.node
        if store is not None:
            store.read_node(self.index_name, node.page_id)
            # The union/intersection vectors of the children are part of
            # the node payload; charge them like a small inverted file
            # (4 bytes per term id, two vectors per child).
            vec_terms = sum(
                len(self._summaries[c.page_id].union_terms)
                + len(self._summaries[c.page_id].intersection_terms)
                for c in node.children
            ) if not node.is_leaf else sum(
                len(self._users[e.item].keyword_set) for e in node.entries
            )
            store.read_inverted_list(
                self.index_name, node.page_id, -1, 4 * vec_terms
            )
        if node.is_leaf:
            return [], [self._users[e.item] for e in node.entries]
        children = [
            UserNodeView(node=c, summary=self._summaries[c.page_id])
            for c in node.children
        ]
        return children, []

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        self.rtree.check_invariants()
        root = self.rtree.root
        assert root is not None
        self._check_node(root)

    def _check_node(self, node: RTreeNode[int]) -> SuperUser:
        summary = self._summaries[node.page_id]
        if node.is_leaf:
            users = [self._users[e.item] for e in node.entries]
            union: Set[int] = set()
            inter: Optional[Set[int]] = None
            for u in users:
                union |= u.keyword_set
                inter = set(u.keyword_set) if inter is None else inter & u.keyword_set
            assert summary.count == len(users), "leaf count stale"
        else:
            union = set()
            inter = None
            count = 0
            for child in node.children:
                cs = self._check_node(child)
                union |= cs.union_terms
                inter = (
                    set(cs.intersection_terms)
                    if inter is None
                    else inter & cs.intersection_terms
                )
                count += cs.count
            assert summary.count == count, "internal count stale"
        assert summary.union_terms == frozenset(union), "union vector stale"
        assert summary.intersection_terms == frozenset(inter or set()), (
            "intersection vector stale"
        )
        assert summary.intersection_terms <= summary.union_terms
        assert summary.min_normalizer <= summary.max_normalizer + 1e-9
        return summary
