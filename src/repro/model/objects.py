"""Core data model: spatial-textual objects, users, and the super-user.

Definition 1 of the paper works over a bichromatic dataset
``D = (U, O)`` where each user ``u`` and each object ``o`` is a pair of
a location and a set of keywords.  Both sides share one representation,
:class:`SpatialTextualItem`; :class:`STObject` and :class:`User` are the
two colors.

The *super-user* of Section 5.2 aggregates the whole user set: its
location is the MBR of all user locations, its text is both the union
and the intersection of the users' keyword sets.  We additionally store
the smallest and largest user-side normalizer ``Z(u.d)`` across the
grouped users — see ``repro/core/bounds.py`` for why this is needed to
keep Lemma 2 sound under per-user score normalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set

from ..spatial.geometry import Point, Rect
from ..text.relevance import TextRelevance

__all__ = ["SpatialTextualItem", "STObject", "User", "SuperUser"]


@dataclass(slots=True)
class SpatialTextualItem:
    """A located document: ``(id, location, term-frequency map)``."""

    item_id: int
    location: Point
    #: Term-frequency map ``{term_id: count}``; counts are positive.
    terms: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for tid, tf in self.terms.items():
            if tf <= 0:
                raise ValueError(
                    f"item {self.item_id}: non-positive tf {tf} for term {tid}"
                )

    @property
    def keyword_set(self) -> Set[int]:
        """Distinct term ids of the description."""
        return set(self.terms)

    @property
    def doc_length(self) -> int:
        """Total number of term occurrences (``|o.d|`` in Eq. 3)."""
        return sum(self.terms.values())

    def has_any_keyword(self, keywords: Iterable[int]) -> bool:
        return any(t in self.terms for t in keywords)


class STObject(SpatialTextualItem):
    """An object ``o ∈ O`` (restaurant, advertisement, business...)."""

    __slots__ = ()


class User(SpatialTextualItem):
    """A user ``u ∈ U`` (potential customer)."""

    __slots__ = ()


@dataclass(slots=True)
class SuperUser:
    """Aggregate of a user group (Section 5.2).

    Attributes
    ----------
    mbr:
        MBR enclosing the grouped users' locations (``us.l``).
    union_terms:
        Union of the users' keyword sets (``us.dUni``).
    intersection_terms:
        Intersection of the users' keyword sets (``us.dInt``).
    min_normalizer / max_normalizer:
        ``min_u Z(u.d)`` and ``max_u Z(u.d)`` over the grouped users,
        where ``Z`` is the measure's user-side normalizer.  Upper bounds
        divide by the min, lower bounds by the max, which restores the
        soundness of Lemma 2 for per-user normalized scores.
    count:
        Number of users aggregated.
    """

    mbr: Rect
    union_terms: FrozenSet[int]
    intersection_terms: FrozenSet[int]
    min_normalizer: float
    max_normalizer: float
    count: int
    #: Lazily cached ascending term lists.  Bound computations sum term
    #: weights in this canonical order so the scalar backend and the
    #: numpy frontier kernels produce bitwise-identical bounds (see
    #: repro/core/kernels.py, "Exactness contract").
    _sorted_union: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sorted_intersection: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def sorted_union(self) -> tuple:
        if self._sorted_union is None:
            self._sorted_union = tuple(sorted(self.union_terms))
        return self._sorted_union

    def sorted_intersection(self) -> tuple:
        if self._sorted_intersection is None:
            self._sorted_intersection = tuple(sorted(self.intersection_terms))
        return self._sorted_intersection

    @classmethod
    def from_users(
        cls, users: Sequence[User], relevance: TextRelevance
    ) -> "SuperUser":
        """Build the super-user of ``users`` (must be non-empty)."""
        if not users:
            raise ValueError("cannot build a super-user from zero users")
        mbr = Rect.from_points(u.location for u in users)
        union: Set[int] = set()
        inter: Optional[Set[int]] = None
        min_z = float("inf")
        max_z = 0.0
        for u in users:
            kws = u.keyword_set
            union |= kws
            inter = set(kws) if inter is None else (inter & kws)
            z = relevance.user_normalizer(kws)
            min_z = min(min_z, z)
            max_z = max(max_z, z)
        return cls(
            mbr=mbr,
            union_terms=frozenset(union),
            intersection_terms=frozenset(inter or set()),
            min_normalizer=min_z,
            max_normalizer=max_z,
            count=len(users),
        )

    @classmethod
    def from_parts(
        cls,
        mbr: Rect,
        union_terms: Iterable[int],
        intersection_terms: Iterable[int],
        min_normalizer: float,
        max_normalizer: float,
        count: int,
    ) -> "SuperUser":
        """Assemble a super-user from precomputed parts.

        Used by the MIUR-tree (Section 7), where every tree node is
        treated as the super-user of the users below it.
        """
        return cls(
            mbr=mbr,
            union_terms=frozenset(union_terms),
            intersection_terms=frozenset(intersection_terms),
            min_normalizer=min_normalizer,
            max_normalizer=max_normalizer,
            count=count,
        )
