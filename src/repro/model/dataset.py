"""The bichromatic dataset ``D = (U, O)`` and its derived context.

A :class:`Dataset` bundles the two object colors with the fitted text
relevance measure and the spatial normalizer ``dmax``, because every
score in the system — Eq. 1's ``STS`` — needs all three.  The scoring
helpers live here so that algorithms, indexes and tests all share one
definition of the ranking function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..spatial.geometry import Point, Rect
from ..spatial.metrics import EUCLIDEAN, LpMetric
from ..text.relevance import TextRelevance, make_relevance
from ..text.vocabulary import Vocabulary
from .objects import STObject, SuperUser, User

__all__ = ["Dataset", "DatasetStats"]


@dataclass(slots=True)
class DatasetStats:
    """Table 4-style summary of a dataset."""

    num_objects: int
    num_users: int
    num_unique_terms: int
    avg_unique_terms_per_object: float
    total_terms: int

    def rows(self) -> List[tuple]:
        """(property, value) rows for report printing."""
        return [
            ("Total objects", self.num_objects),
            ("Total users", self.num_users),
            ("Total unique terms", self.num_unique_terms),
            ("Avg unique terms per object", round(self.avg_unique_terms_per_object, 1)),
            ("Total terms in dataset", self.total_terms),
        ]


class Dataset:
    """A bichromatic spatial-textual dataset with its scoring context.

    Parameters
    ----------
    objects / users:
        The two colors of Definition 1.
    relevance:
        A text relevance measure instance or its short name
        ("LM" / "TF" / "KO").  It is fit on the *object* documents —
        collection statistics in the paper are always over ``O``.
    alpha:
        Spatial-vs-textual preference of Eq. 1 (``alpha = 1`` means
        purely spatial ranking).
    vocabulary:
        Optional shared vocabulary (kept for decoding term ids in
        reports and examples).
    metric:
        Spatial metric; Euclidean by default (Eq. 2).  Any Lp metric is
        supported — the Wong et al. extension carried over to the
        spatial-textual setting (see ``repro.spatial.metrics``).
    """

    def __init__(
        self,
        objects: Sequence[STObject],
        users: Sequence[User],
        relevance: TextRelevance | str = "LM",
        alpha: float = 0.5,
        vocabulary: Optional[Vocabulary] = None,
        metric: LpMetric = EUCLIDEAN,
    ) -> None:
        if not objects:
            raise ValueError("dataset requires at least one object")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        self.objects: List[STObject] = list(objects)
        self.users: List[User] = list(users)
        self.alpha = alpha
        self.vocabulary = vocabulary
        self.metric = metric
        if isinstance(relevance, str):
            relevance = make_relevance(relevance)
        self.relevance: TextRelevance = relevance.fit([o.terms for o in self.objects])
        self.dmax = self._compute_dmax()
        self._objects_by_id: Dict[int, STObject] = {o.item_id: o for o in self.objects}
        self._users_by_id: Dict[int, User] = {u.item_id: u for u in self.users}
        self._super_user: Optional[SuperUser] = None
        #: Mutation generation.  Result caches key on it
        #: (:mod:`repro.core.cache`): any future in-place mutation must
        #: call :meth:`bump_epoch`, and every cached answer derived from
        #: the previous generation stops matching wholesale.
        self.epoch = 0

    def __getstate__(self):
        """Pickle without the cached numpy kernel arrays.

        The arrays (``repro.core.kernels.DatasetArrays``) refuse to be
        pickled — fork-pool workers must inherit them via copy-on-write,
        never through a pipe — so a dataset crossing a process boundary
        drops them and rebuilds lazily on first vectorized use.
        """
        state = self.__dict__.copy()
        state.pop("_kernel_arrays", None)
        return state

    # ------------------------------------------------------------------
    # Derived context
    # ------------------------------------------------------------------
    def _compute_dmax(self) -> float:
        """Diameter of the bounding box of every location in ``D``.

        The paper defines ``dmax`` as the maximum distance between any
        two points in ``D``; the bounding-box diameter under the chosen
        metric upper-bounds it (and equals it when extreme points sit
        at opposite corners), which keeps ``SS`` within [0, 1] for
        every pair.
        """
        points = [o.location for o in self.objects] + [u.location for u in self.users]
        diam = self.metric.diameter(Rect.from_points(points))
        return diam if diam > 0 else 1.0

    @property
    def super_user(self) -> SuperUser:
        """Super-user over the full user set (cached)."""
        if self._super_user is None:
            if not self.users:
                raise ValueError("dataset has no users to aggregate")
            self._super_user = SuperUser.from_users(self.users, self.relevance)
        return self._super_user

    def bump_epoch(self) -> int:
        """Advance the mutation generation, invalidating keyed caches."""
        self.epoch += 1
        return self.epoch

    def object_by_id(self, object_id: int) -> STObject:
        return self._objects_by_id[object_id]

    def user_by_id(self, user_id: int) -> User:
        return self._users_by_id[user_id]

    # ------------------------------------------------------------------
    # Scoring (Eq. 1 and 2)
    # ------------------------------------------------------------------
    def spatial_score(self, a: Point, b: Point) -> float:
        """``SS = 1 - dist / dmax``, clamped into [0, 1]."""
        ss = 1.0 - self.metric.distance(a, b) / self.dmax
        return max(0.0, min(1.0, ss))

    def spatial_score_from_distance(self, distance: float) -> float:
        ss = 1.0 - distance / self.dmax
        return max(0.0, min(1.0, ss))

    def text_score(self, doc: Mapping[int, int], user_terms: Iterable[int]) -> float:
        """``TS(o.d, u.d)`` under the dataset's relevance measure."""
        return self.relevance.score(doc, user_terms)

    def sts(self, obj: STObject, user: User) -> float:
        """Spatial-textual score ``STS(o, u)`` of Eq. 1."""
        return self.sts_parts(obj.location, obj.terms, user)

    def sts_parts(
        self, location: Point, doc: Mapping[int, int], user: User
    ) -> float:
        """``STS`` for an arbitrary (location, document) pair vs a user.

        This is the form candidate evaluation needs: the query object
        ``ox`` takes on candidate locations and augmented documents that
        are not part of ``O``.
        """
        ss = self.spatial_score(location, user.location)
        ts = self.relevance.score(doc, user.keyword_set)
        return self.alpha * ss + (1.0 - self.alpha) * ts

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> DatasetStats:
        unique: set = set()
        total_terms = 0
        unique_per_obj = 0
        for o in self.objects:
            unique |= o.keyword_set
            unique_per_obj += len(o.keyword_set)
            total_terms += o.doc_length
        return DatasetStats(
            num_objects=len(self.objects),
            num_users=len(self.users),
            num_unique_terms=len(unique),
            avg_unique_terms_per_object=(
                unique_per_obj / len(self.objects) if self.objects else 0.0
            ),
            total_terms=total_terms,
        )

    def with_alpha(self, alpha: float) -> "Dataset":
        """Cheap re-parameterization sharing the fitted relevance model."""
        clone = object.__new__(Dataset)
        clone.objects = self.objects
        clone.users = self.users
        clone.alpha = alpha
        clone.vocabulary = self.vocabulary
        clone.metric = self.metric
        clone.relevance = self.relevance
        clone.dmax = self.dmax
        clone._objects_by_id = self._objects_by_id
        clone._users_by_id = self._users_by_id
        clone._super_user = None
        clone.epoch = 0
        return clone

    def with_users(self, users: Sequence[User]) -> "Dataset":
        """Clone with a different user set (same objects and relevance)."""
        clone = object.__new__(Dataset)
        clone.objects = self.objects
        clone.users = list(users)
        clone.alpha = self.alpha
        clone.vocabulary = self.vocabulary
        clone.metric = self.metric
        clone.relevance = self.relevance
        clone.dmax = self.dmax
        clone._objects_by_id = self._objects_by_id
        clone._users_by_id = {u.item_id: u for u in clone.users}
        clone._super_user = None
        clone.epoch = 0
        return clone

    def subset_users(self, user_ids: Iterable[int]) -> "Dataset":
        """Clone restricted to ``user_ids``, preserving the user order.

        The scoring context (relevance model, ``dmax``, metric, alpha)
        is **shared with the parent**, not re-derived from the subset:
        every ``STS(o, u)`` computed against the subset is therefore
        bitwise identical to the same pair scored against the full
        dataset — the invariant the sharded scatter/gather execution
        (``repro.serve.sharded``) rests on.  User ids keep their
        original values (stable remapping: merging per-shard results
        back is a plain disjoint union keyed by id).  Unknown ids
        raise ``KeyError``; the subset may be empty.
        """
        wanted = set(user_ids)
        missing = wanted - self._users_by_id.keys()
        if missing:
            raise KeyError(f"unknown user ids: {sorted(missing)[:5]}")
        return self.with_users([u for u in self.users if u.item_id in wanted])
