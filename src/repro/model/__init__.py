"""Data model: spatial-textual objects, users, super-users, datasets."""

from .dataset import Dataset, DatasetStats
from .objects import SpatialTextualItem, STObject, SuperUser, User

__all__ = [
    "Dataset",
    "DatasetStats",
    "SpatialTextualItem",
    "STObject",
    "SuperUser",
    "User",
]
