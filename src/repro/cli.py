"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        run a MaxBRSTkNN query on a generated workload and print
                the result plus per-phase stats;
``batch``       answer a batch of queries through ``query_batch`` and
                print throughput (queries/sec) vs sequential;
``report``      shortcut to :mod:`repro.bench.report`;
``stats``       print Table 4-style statistics of a generated dataset.
"""

from __future__ import annotations

import argparse
import time

from . import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from .datagen import candidate_locations, flickr_like, generate_users, yelp_like

__all__ = ["main"]


def _make_workload(args):
    if args.dataset == "flickr":
        objects, vocab = flickr_like(num_objects=args.objects, seed=args.seed)
    else:
        objects, vocab = yelp_like(num_objects=max(60, args.objects // 6), seed=args.seed)
    workload = generate_users(
        objects,
        num_users=args.users,
        keywords_per_user=args.ul,
        unique_keywords=args.uw,
        area_side=args.area,
        seed=args.seed,
    )
    candidate_locations(workload, num_locations=args.locations, seed=args.seed)
    dataset = Dataset(
        objects, workload.users, relevance=args.measure, alpha=args.alpha,
        vocabulary=vocab,
    )
    return dataset, workload


def _cmd_demo(args) -> int:
    dataset, workload = _make_workload(args)
    engine = MaxBRSTkNNEngine(dataset, index_users=(args.mode == "indexed"))
    query = MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=workload.locations,
        keywords=workload.candidate_keywords,
        ws=args.ws,
        k=args.k,
    )
    t0 = time.perf_counter()
    result = engine.query(
        query, method=args.method, mode=args.mode, backend=args.backend
    )
    elapsed = time.perf_counter() - t0
    print(result.summary())
    print(f"total runtime: {1000 * elapsed:.1f} ms "
          f"(top-k {1000 * result.stats.topk_time_s:.1f} ms, "
          f"selection {1000 * result.stats.selection_time_s:.1f} ms)")
    print(f"simulated I/O: {result.stats.io_total} "
          f"({result.stats.io_node_visits} node visits, "
          f"{result.stats.io_invfile_blocks} list blocks)")
    if args.mode == "indexed":
        print(f"users pruned: {result.stats.users_pruned} / "
              f"{result.stats.users_total} "
              f"({result.stats.users_pruned_pct:.1f}%)")
    return 0


def _cmd_batch(args) -> int:
    """Answer ``--batch-size`` queries as one batch and report throughput."""
    dataset, workload = _make_workload(args)
    engine = MaxBRSTkNNEngine(dataset)
    queries = []
    for i in range(args.batch_size):
        candidate_locations(workload, num_locations=args.locations, seed=args.seed + i)
        queries.append(
            MaxBRSTkNNQuery(
                ox=workload.query_object(object_id=-(i + 1)),
                locations=list(workload.locations),
                keywords=list(workload.candidate_keywords),
                ws=args.ws,
                k=args.k,
            )
        )
    t0 = time.perf_counter()
    results = engine.query_batch(
        queries, method=args.method, backend=args.backend, workers=args.workers
    )
    elapsed = time.perf_counter() - t0
    for i, result in enumerate(results[: args.show]):
        print(f"[{i}] {result.summary()}")
    qps = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(f"batch of {len(queries)}: {1000 * elapsed:.1f} ms total, "
          f"{qps:.1f} queries/sec (backend={args.backend}, "
          f"workers={args.workers})")
    return 0


def _cmd_stats(args) -> int:
    dataset, _ = _make_workload(args)
    for name, value in dataset.stats().rows():
        print(f"{name}: {value}")
    return 0


def _cmd_report(args) -> int:
    from .bench.report import main as report_main

    forwarded = []
    if args.figure:
        forwarded += ["--figure", args.figure]
    if args.quick:
        forwarded += ["--quick"]
    return report_main(forwarded)


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=["flickr", "yelp"], default="flickr")
    p.add_argument("--objects", type=int, default=2000)
    p.add_argument("--users", type=int, default=200)
    p.add_argument("--ul", type=int, default=3, help="keywords per user")
    p.add_argument("--uw", type=int, default=20, help="unique user keywords")
    p.add_argument("--area", type=float, default=5.0)
    p.add_argument("--locations", type=int, default=20)
    p.add_argument("--measure", choices=["LM", "TF", "KO"], default="LM")
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)


def main(argv=None) -> int:
    """CLI entry point (``python -m repro``)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one MaxBRSTkNN query")
    _add_workload_args(demo)
    demo.add_argument("--k", type=int, default=10)
    demo.add_argument("--ws", type=int, default=2)
    demo.add_argument("--method", choices=["approx", "exact"], default="approx")
    demo.add_argument("--mode", choices=["joint", "baseline", "indexed"],
                      default="joint")
    demo.add_argument("--backend", choices=["python", "numpy", "auto"],
                      default="python", help="scoring kernels")
    demo.set_defaults(func=_cmd_demo)

    batch = sub.add_parser("batch", help="run a query batch via query_batch")
    _add_workload_args(batch)
    batch.add_argument("--k", type=int, default=10)
    batch.add_argument("--ws", type=int, default=2)
    batch.add_argument("--method", choices=["approx", "exact"], default="approx")
    batch.add_argument("--backend", choices=["python", "numpy", "auto"],
                       default="auto", help="scoring kernels")
    batch.add_argument("--batch-size", type=int, default=16)
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument("--show", type=int, default=3,
                       help="print the first N results")
    batch.set_defaults(func=_cmd_batch)

    stats = sub.add_parser("stats", help="print dataset statistics")
    _add_workload_args(stats)
    stats.set_defaults(func=_cmd_stats)

    report = sub.add_parser("report", help="regenerate figure series")
    report.add_argument("--figure")
    report.add_argument("--quick", action="store_true")
    report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
