"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        run a MaxBRSTkNN query on a generated workload and print
                the result plus per-phase stats;
``batch``       answer a batch of queries through ``query_batch`` and
                print throughput (queries/sec) vs sequential;
``serve``       start a :class:`MaxBRSTkNNServer`, submit concurrent
                queries through the async micro-batching front-end, and
                print latency percentiles plus server stats
                (``--transport socket`` scatters to shard-host
                processes over TCP instead of fork pools);
``shard-host``  serve shard scatter rounds over TCP: one process per
                host, rebuilt from the same workload spec as the
                coordinator;
``report``      shortcut to :mod:`repro.bench.report`;
``stats``       print Table 4-style statistics of a generated dataset;
``lint``        contract-aware static analysis (:mod:`repro.analysis`).

All query commands build one :class:`repro.core.config.QueryOptions`
from their flags — the CLI is a consumer of the typed API, not of the
legacy string kwargs.
"""

from __future__ import annotations

import argparse
import asyncio
import math
import sys
import time
from typing import List

from . import MaxBRSTkNNEngine, MaxBRSTkNNQuery
from .analysis.cli import add_lint_arguments, run_lint
from .core.config import CachePolicy, EngineConfig, QueryOptions
from .datagen import query_pool

__all__ = ["main"]


def _make_workload(args):
    # The canonical builder (shared with shard hosts and the multi-host
    # bench): the same spec on any process yields a bitwise-identical
    # dataset, which is what multi-host serving relies on.
    from .serve.shardhost import make_workload, workload_spec_from_args

    return make_workload(workload_spec_from_args(args))


def _query_options(args, workers: int = 1) -> QueryOptions:
    """One QueryOptions from the shared CLI flags."""
    return QueryOptions(
        method=args.method,
        mode=getattr(args, "mode", "joint"),
        backend=args.backend,
        workers=workers,
    )


def _make_query_pool(workload, args, count: int) -> List[MaxBRSTkNNQuery]:
    """Distinct queries (fresh candidate locations each)."""
    return query_pool(
        workload, count, num_locations=args.locations, ws=args.ws, k=args.k,
        seed=args.seed,
    )


def _cmd_demo(args) -> int:
    dataset, workload = _make_workload(args)
    engine = MaxBRSTkNNEngine(
        dataset, EngineConfig(index_users=(args.mode == "indexed"))
    )
    options = _query_options(args)
    query = MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=workload.locations,
        keywords=workload.candidate_keywords,
        ws=args.ws,
        k=args.k,
    )
    if args.explain:
        print(engine.plan(options).explain())
    t0 = time.perf_counter()
    result = engine.query(query, options)
    elapsed = time.perf_counter() - t0
    print(result.summary())
    print(f"total runtime: {1000 * elapsed:.1f} ms "
          f"(top-k {1000 * result.stats.topk_time_s:.1f} ms, "
          f"selection {1000 * result.stats.selection_time_s:.1f} ms)")
    print(f"simulated I/O: {result.stats.io_total} "
          f"({result.stats.io_node_visits} node visits, "
          f"{result.stats.io_invfile_blocks} list blocks)")
    if args.mode == "indexed":
        print(f"users pruned: {result.stats.users_pruned} / "
              f"{result.stats.users_total} "
              f"({result.stats.users_pruned_pct:.1f}%)")
    return 0


def _cmd_batch(args) -> int:
    """Answer ``--batch-size`` queries as one batch and report throughput."""
    dataset, workload = _make_workload(args)
    engine = MaxBRSTkNNEngine(dataset)
    options = _query_options(args, workers=args.workers)
    queries = _make_query_pool(workload, args, args.batch_size)
    if args.explain:
        print(engine.plan(options, ks=[q.k for q in queries]).explain())
    t0 = time.perf_counter()
    results = engine.query_batch(queries, options)
    elapsed = time.perf_counter() - t0
    for i, result in enumerate(results[: args.show]):
        print(f"[{i}] {result.summary()}")
    qps = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(f"batch of {len(queries)}: {1000 * elapsed:.1f} ms total, "
          f"{qps:.1f} queries/sec (backend={options.backend}, "
          f"workers={options.workers})")
    return 0


def _cmd_serve(args) -> int:
    """Serve concurrent queries through the async micro-batching server."""
    from .bench.metrics import percentile
    from .serve import (
        DeadlinePolicy,
        FaultPlan,
        MaxBRSTkNNServer,
        RetryPolicy,
        ServerConfig,
        make_engine,
    )

    if args.queries < 1:
        print("serve: --queries must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("serve: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.mode == "baseline":
        print("serve: --shards requires --mode joint or --mode indexed",
              file=sys.stderr)
        return 2
    try:
        max_wait_ms = "auto" if args.max_wait_ms == "auto" else float(args.max_wait_ms)
        if max_wait_ms != "auto" and not (
            math.isfinite(max_wait_ms) and max_wait_ms >= 0
        ):
            raise ValueError
    except ValueError:
        print(f"serve: --max-wait-ms must be a finite number >= 0 or 'auto', "
              f"got {args.max_wait_ms!r}", file=sys.stderr)
        return 2
    if args.cache_entries < 1:
        print("serve: --cache-entries must be >= 1", file=sys.stderr)
        return 2
    if args.fault != "none" and args.pool_workers < 1:
        print("serve: --fault needs --pool-workers >= 1 (faults are injected "
              "into the worker pools)", file=sys.stderr)
        return 2
    if args.transport == "socket":
        if not args.hosts:
            print("serve: --transport socket needs --hosts host:port[,...]",
                  file=sys.stderr)
            return 2
        if args.shards < 2:
            print("serve: --transport socket needs --shards >= 2 (the socket "
                  "scatter rides the sharded engine)", file=sys.stderr)
            return 2
        if args.pool_workers > 0:
            print("serve: --transport socket replaces the fork pools; drop "
                  "--pool-workers", file=sys.stderr)
            return 2
    # Deterministic fault injection (CI's fault-smoke job): every plan
    # is armed for pool generation 0 only, so the recovery — respawn,
    # retry, or in-process degradation — must produce results identical
    # to the sequential reference for --verify to pass.
    faults = {
        "none": None,
        "kill-worker": FaultPlan.kill_worker(),
        "hang-task": FaultPlan.hang_task(),
        "shard-exception": FaultPlan.shard_exception(0),
        "pool-loss": FaultPlan.pool_loss(),
    }[args.fault]
    if args.flush_deadline_ms is not None:
        deadline = DeadlinePolicy(flush_deadline_s=args.flush_deadline_ms / 1000.0)
    else:
        deadline = DeadlinePolicy()
    dataset, workload = _make_workload(args)
    engine = make_engine(
        dataset,
        EngineConfig(
            index_users=(args.mode == "indexed"),
            num_shards=args.shards,
            partitioner=args.partitioner,
            use_shm=args.shm,
        ),
    )
    options = _query_options(args)
    config = ServerConfig(
        max_batch=args.max_batch,
        max_wait_ms=max_wait_ms,
        pool_workers=args.pool_workers,
        options=options,
        cache=CachePolicy(max_entries=args.cache_entries) if args.cache else None,
        retry=RetryPolicy(),
        deadline=deadline,
        max_pending=args.max_pending,
        faults=faults,
    )
    queries = _make_query_pool(workload, args, args.queries)
    if args.transport == "socket":
        # Shard hosts replace the fork pools: the engine's executor is
        # swapped for the SocketExecutor before the server starts (the
        # server itself runs pool-less, pool_workers=0).
        engine.connect_hosts(
            args.hosts, retry=RetryPolicy(), deadline=deadline
        )

    latencies: List[float] = []

    async def run():
        async with MaxBRSTkNNServer(engine, config) as server:
            if args.explain:
                # Inside the server context: pools (including a sharded
                # engine's root search pool) are started, so explain()
                # reports the execution that will actually happen.
                print(engine.plan(options, ks=[q.k for q in queries]).explain())
            async def timed(q):
                t0 = time.perf_counter()
                result = await server.submit(q)
                latencies.append(time.perf_counter() - t0)
                return result

            t0 = time.perf_counter()
            results = await asyncio.gather(*(timed(q) for q in queries))
            return list(results), time.perf_counter() - t0, server.stats_snapshot()

    try:
        results, elapsed, snapshot = asyncio.run(run())
    finally:
        if args.transport == "socket":
            engine.close_hosts()
    if args.explain:
        # The same plan again, now that the engine's FlushHistory holds
        # the served flushes: decisions rendered "static" on the cold
        # engine re-resolve as "observed" from measured stage timings.
        print("plan after serving (flush history warm):")
        print(engine.plan(options, ks=[q.k for q in queries]).explain())
    latencies.sort()
    qps = len(queries) / elapsed if elapsed > 0 else float("inf")
    print(f"served {len(queries)} concurrent queries in {1000 * elapsed:.1f} ms "
          f"({qps:.1f} queries/sec)")
    print(f"latency: p50 {1000 * percentile(latencies, 0.50):.1f} ms, "
          f"p95 {1000 * percentile(latencies, 0.95):.1f} ms "
          f"(max_batch={config.max_batch}, max_wait_ms={config.max_wait_ms}, "
          f"pool_workers={config.pool_workers}, shards={args.shards})")
    shard_rows = snapshot.pop("shards", None)
    health_rows = snapshot.pop("pool_health", None)
    codec_row = snapshot.pop("shm_codec", None)
    for name, value in snapshot.items():
        print(f"  {name}: {value}")
    if codec_row:
        detail = ", ".join(f"{key}={val}" for key, val in codec_row.items())
        print(f"  shm_codec: {detail}")
    if shard_rows:
        for row in shard_rows:
            detail = ", ".join(
                f"{key}={val}" for key, val in row.items() if key != "shard"
            )
            print(f"  shard[{row['shard']}]: {detail}")
    if health_rows:
        for row in health_rows:
            detail = ", ".join(
                f"{key}={val}" for key, val in row.items() if key != "pool"
            )
            print(f"  pool[{row['pool']}]: {detail}")
    if args.verify:
        mismatches = 0
        reference = QueryOptions(
            method=options.method, mode=options.mode, backend="python"
        )
        # Verify against an INDEPENDENT sequential single engine — for
        # both the sharded front-end and the plain one, and for
        # mode=indexed as well as joint (the reference engine builds
        # its own MIUR-tree when the served mode needs one; the
        # immutable object MIR-tree is shared, so that is the only
        # extra index build).  Comparing the served answers to a fresh
        # engine's cold sequential queries is the strongest check: no
        # memoized pool or cache is shared between the two sides.
        ref_engine = MaxBRSTkNNEngine(
            dataset,
            EngineConfig(index_users=(args.mode == "indexed")),
            object_tree=engine.object_tree,
        )
        for query, served in zip(queries, results):
            solo = ref_engine.query(query, reference)
            if (
                solo.location != served.location
                or solo.keywords != served.keywords
                or solo.brstknn != served.brstknn
            ):
                mismatches += 1
        if mismatches:
            print(f"VERIFY FAILURE: {mismatches} served results != sequential "
                  f"(mode={args.mode})")
            return 1
        print(f"verify: served results == sequential on {len(queries)} queries "
              f"(mode={args.mode}, shards={args.shards})")
        print("verify: dynamic check passed; run `python -m repro lint src/` "
              "for the static contract checks (stage I/O, pool boundary, "
              "kernel identity, async blocking)")
    return 0


def _cmd_shard_host(args) -> int:
    """Run one shard host process (blocks until killed)."""
    from .serve.shardhost import (
        parse_socket_fault,
        run_host,
        workload_spec_from_args,
    )

    if args.shards < 1:
        print("shard-host: --shards must be >= 1", file=sys.stderr)
        return 2
    host, _, port_s = args.listen.rpartition(":")
    if not host:
        print(f"shard-host: --listen must be host:port, got {args.listen!r}",
              file=sys.stderr)
        return 2
    try:
        fault = parse_socket_fault(args.fault)
    except ValueError as exc:
        print(f"shard-host: {exc}", file=sys.stderr)
        return 2
    return run_host(
        workload_spec_from_args(args),
        args.shards,
        partitioner=args.partitioner,
        listen=(host, int(port_s)),
        fault=fault,
        arena=args.arena,
    )


def _cmd_stats(args) -> int:
    dataset, _ = _make_workload(args)
    for name, value in dataset.stats().rows():
        print(f"{name}: {value}")
    return 0


def _cmd_report(args) -> int:
    from .bench.report import main as report_main

    forwarded = []
    if args.figure:
        forwarded += ["--figure", args.figure]
    if args.quick:
        forwarded += ["--quick"]
    return report_main(forwarded)


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=["flickr", "yelp"], default="flickr")
    p.add_argument("--objects", type=int, default=2000)
    p.add_argument("--users", type=int, default=200)
    p.add_argument("--ul", type=int, default=3, help="keywords per user")
    p.add_argument("--uw", type=int, default=20, help="unique user keywords")
    p.add_argument("--area", type=float, default=5.0)
    p.add_argument("--locations", type=int, default=20)
    p.add_argument("--measure", choices=["LM", "TF", "KO"], default="LM")
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)


def _add_query_args(p: argparse.ArgumentParser, modes=("joint", "baseline", "indexed")) -> None:
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--ws", type=int, default=2)
    p.add_argument("--method", choices=["approx", "exact"], default="approx")
    p.add_argument("--mode", choices=list(modes), default="joint")
    p.add_argument("--backend", choices=["python", "numpy", "auto"],
                   default="auto", help="scoring kernels")
    p.add_argument("--explain", action="store_true",
                   help="print the resolved QueryPlan before running")


def main(argv=None) -> int:
    """CLI entry point (``python -m repro``)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one MaxBRSTkNN query")
    _add_workload_args(demo)
    _add_query_args(demo)
    demo.set_defaults(func=_cmd_demo)

    batch = sub.add_parser("batch", help="run a query batch via query_batch")
    _add_workload_args(batch)
    _add_query_args(batch)
    batch.add_argument("--batch-size", type=int, default=16)
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument("--show", type=int, default=3,
                       help="print the first N results")
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="serve concurrent queries via the micro-batching server"
    )
    _add_workload_args(serve)
    _add_query_args(serve)
    serve.add_argument("--queries", type=int, default=32,
                       help="concurrent queries to submit")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--max-wait-ms", default="2.0",
                       help="micro-batch window in ms, or 'auto' to tune it "
                            "from the observed arrival rate")
    serve.add_argument("--pool-workers", type=int, default=0,
                       help="persistent pool size (0 = in-process); per shard "
                            "when --shards > 1")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition users across N engines behind the "
                            "server (scatter/gather, result-identical)")
    serve.add_argument("--partitioner", choices=["hash", "grid"], default="hash",
                       help="user partitioning strategy for --shards > 1")
    serve.add_argument("--shm", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="publish the engine's dense arrays into a shared-"
                            "memory arena and ship scatter payloads through "
                            "the binary arena codec instead of pickle "
                            "(--no-shm keeps the fork/COW pickle path; "
                            "results are identical either way)")
    serve.add_argument("--cache", action="store_true",
                       help="enable the cross-flush result cache (exact "
                            "repeat queries answered without executing)")
    serve.add_argument("--cache-entries", type=int, default=4096,
                       help="LRU capacity of the result cache (with --cache)")
    serve.add_argument("--verify", action="store_true",
                       help="compare served results against sequential queries")
    serve.add_argument("--fault",
                       choices=["none", "kill-worker", "hang-task",
                                "shard-exception", "pool-loss"],
                       default="none",
                       help="inject a deterministic fault into the worker "
                            "pools (fault-smoke: recovery must keep --verify "
                            "green)")
    serve.add_argument("--flush-deadline-ms", type=float, default=None,
                       help="per-scatter-round deadline in ms (default: the "
                            "DeadlinePolicy default, 30000)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="admission bound: shed queries (ServerOverloaded) "
                            "past this many pending (default: unbounded)")
    serve.add_argument("--transport", choices=["fork", "socket"], default="fork",
                       help="scatter transport: fork pools (default) or TCP "
                            "frames to shard-host processes (--hosts)")
    serve.add_argument("--hosts", default="",
                       help="comma-separated host:port list of running "
                            "shard-host processes (--transport socket)")
    serve.set_defaults(func=_cmd_serve)

    shard_host = sub.add_parser(
        "shard-host",
        help="serve shard scatter rounds over TCP (one process per host; "
             "pair with `serve --transport socket`)",
    )
    _add_workload_args(shard_host)
    shard_host.add_argument("--listen", default="127.0.0.1:0",
                            help="host:port to bind (port 0 = ephemeral; the "
                                 "bound port is printed as 'SHARDHOST "
                                 "LISTENING <port>')")
    shard_host.add_argument("--shards", type=int, default=2,
                            help="the coordinator's shard count (partition "
                                 "layout must match)")
    shard_host.add_argument("--partitioner", choices=["hash", "grid"],
                            default="hash")
    shard_host.add_argument("--arena", default=None,
                            help="shared-memory arena name to probe at "
                                 "startup (fail fast before serving)")
    shard_host.add_argument("--fault", default="none",
                            help="socket fault to inject host-side: none, "
                                 "drop-frame:N, stall-read:N[:S] or "
                                 "refuse-accept")
    shard_host.set_defaults(func=_cmd_shard_host)

    stats = sub.add_parser("stats", help="print dataset statistics")
    _add_workload_args(stats)
    stats.set_defaults(func=_cmd_stats)

    report = sub.add_parser("report", help="regenerate figure series")
    report.add_argument("--figure")
    report.add_argument("--quick", action="store_true")
    report.set_defaults(func=_cmd_report)

    lint = sub.add_parser(
        "lint",
        help="contract-aware static analysis (stage contracts, pool "
             "boundaries, kernel identity, async blocking)",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
