"""Candidate location selection (Section 6.1, Algorithm 3).

Keyword selection being NP-hard even for a single location, the paper
prunes *spatially first*: candidate locations are shortlisted and
ordered before any keyword combination is touched.

For every candidate location ``l``:

1. ``UBL(l, us)`` — the best STS any user could give ``ox`` at ``l``
   under the best keyword augmentation (Lemma 3).  If it cannot reach
   the group threshold ``RSk(us)``, no user can be a BRSTkNN at ``l``
   and the location is dropped outright.
2. Otherwise the per-user bound ``UBL(l, u)`` shortlists ``LU_l``, the
   users that might be BRSTkNNs at ``l``.

Locations are then processed best-first by ``|LU_l|`` with two more
rules:

* **Early termination** — ``|LU_l|`` upper-bounds the achievable
  cardinality, so once the best tuple found beats the head of the
  queue, the search stops.
* **Keyword-free acceptance** — if the *lower* bound ``LBL(l, us)``
  already reaches ``RSk(us)``, every shortlisted user is a BRSTkNN
  regardless of keywords, and keyword selection is skipped.  (We still
  verify against the actual user thresholds, since the group threshold
  is conservative.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..model.dataset import Dataset
from ..model.objects import SuperUser, User
from ..spatial.geometry import Point
from .bounds import BoundCalculator
from .kernels import arrays_for, resolve_backend
from .keyword_selection import (
    KeywordSelection,
    compute_brstknn,
    select_keywords_exact,
    select_keywords_greedy,
)
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = [
    "select_candidate",
    "LocationShortlist",
    "shortlist_locations",
    "search_shortlists",
]


@dataclass(slots=True)
class LocationShortlist:
    """One candidate location with its shortlisted users ``LU_l``.

    ``index`` is the location's position in ``query.locations`` — the
    sequential tie-break order of Algorithm 3's priority queue, which
    the sharded merge (``repro.core.partial``) must reproduce exactly.
    """

    location: Point
    users: List[User]
    upper_group: float
    lower_group: float
    index: int = -1


def shortlist_locations(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    rsk_group: float,
    super_user: Optional[SuperUser] = None,
    users: Optional[Sequence[User]] = None,
    bounds: Optional[BoundCalculator] = None,
    backend: str = "python",
) -> Tuple[List[LocationShortlist], int]:
    """Build ``LU_l`` for every surviving location.

    Returns the shortlists plus the number of locations pruned by the
    group bound.  ``rsk_group`` is ``RSk(us)`` from the joint traversal
    (pass 0.0 to disable group pruning, e.g. when thresholds come from
    the per-user baseline).  With ``backend="numpy"`` the per-user
    ``UBL(l, u) >= RSk(u)`` test — the hot loop of Algorithm 3 — runs
    as one vectorized bound kernel per location; membership is
    guaranteed identical to the scalar path (guard-banded re-check).
    """
    su = dataset.super_user if super_user is None else super_user
    users = dataset.users if users is None else users
    bounds = bounds or BoundCalculator(dataset)
    arrays = arrays_for(dataset) if resolve_backend(backend) == "numpy" else None
    shortlists: List[LocationShortlist] = []
    pruned = 0
    for idx, loc in enumerate(query.locations):
        ub_group = bounds.location_upper_group(loc, query.ox, query.keywords, query.ws, su)
        if ub_group < rsk_group:
            pruned += 1
            continue
        if arrays is not None:
            lu = arrays.shortlist(
                loc, query.ox, query.keywords, query.ws, users, rsk, bounds=bounds
            )
        else:
            lu = [
                u
                for u in users
                if bounds.location_upper_user(loc, query.ox, query.keywords, query.ws, u)
                >= rsk[u.item_id]
            ]
        shortlists.append(
            LocationShortlist(
                location=loc,
                users=lu,
                upper_group=ub_group,
                lower_group=bounds.location_lower_group(loc, query.ox, su),
                index=idx,
            )
        )
    return shortlists, pruned


def select_candidate(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    rsk_group: float = 0.0,
    method: str = "approx",
    super_user: Optional[SuperUser] = None,
    users: Optional[Sequence[User]] = None,
    stats: Optional[QueryStats] = None,
    backend: str = "python",
) -> MaxBRSTkNNResult:
    """Algorithm 3: best-first search over candidate locations.

    Parameters
    ----------
    rsk:
        ``RSk(u)`` per user id (from joint or individual top-k).
    rsk_group:
        ``RSk(us)`` group threshold for whole-location pruning.
    method:
        ``"approx"`` (greedy, Section 6.2.1) or ``"exact"``
        (Algorithm 4).
    backend:
        ``"python"`` (scalar reference) or ``"numpy"`` (vectorized
        kernels, identical results).
    """
    if method not in ("approx", "exact"):
        raise ValueError(f"unknown keyword-selection method {method!r}")
    backend = resolve_backend(backend)
    stats = stats if stats is not None else QueryStats()
    su = dataset.super_user if super_user is None else super_user
    users = dataset.users if users is None else users
    bounds = BoundCalculator(dataset)

    shortlists, pruned = shortlist_locations(
        dataset,
        query,
        rsk,
        rsk_group,
        super_user=su,
        users=users,
        bounds=bounds,
        backend=backend,
    )
    stats.locations_pruned += pruned
    return search_shortlists(
        dataset, query, rsk, rsk_group, shortlists,
        method=method, stats=stats, backend=backend,
    )


def search_shortlists(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    rsk_group: float,
    shortlists: Sequence[LocationShortlist],
    *,
    method: str = "approx",
    stats: Optional[QueryStats] = None,
    backend: str = "python",
) -> MaxBRSTkNNResult:
    """Algorithm 3's best-first search over pre-built shortlists.

    Split out of :func:`select_candidate` so the sharded execution path
    (``repro.serve.sharded``) can scatter the O(|U|) shortlist phase
    across shards, merge the per-shard contributions
    (:func:`repro.core.partial.merge_query_shortlists`), and run this
    — the aggregate-dependent search — once over the merged lists.  The
    search's every decision (heap order, early termination, the
    keyword-free acceptance path, strict-improvement tie-breaking)
    depends only on the shortlists, ``rsk`` and ``rsk_group``, so
    identical inputs reproduce the sequential answer and the selection
    stats exactly.  ``shortlists`` must be ordered by location
    ``index`` (the order :func:`shortlist_locations` emits).
    """
    if method not in ("approx", "exact"):
        raise ValueError(f"unknown keyword-selection method {method!r}")
    backend = resolve_backend(backend)
    stats = stats if stats is not None else QueryStats()

    # Max-priority queue on |LU_l| (Algorithm 3's QL).
    heap: List[Tuple[int, int, LocationShortlist]] = []
    for idx, sl in enumerate(shortlists):
        heapq.heappush(heap, (-len(sl.users), idx, sl))

    best_location: Optional[Point] = None
    best_keywords: FrozenSet[int] = frozenset()
    best_users: FrozenSet[int] = frozenset()

    selector: Callable[..., KeywordSelection] = (
        select_keywords_greedy if method == "approx" else select_keywords_exact
    )
    # Per-query scratch shared across the greedy calls (HW sets and
    # optimistic weights are location-independent).
    selector_kwargs = {"backend": backend}
    if method == "approx":
        selector_kwargs["cache"] = {}

    while heap:
        neg_size, _, sl = heapq.heappop(heap)
        if -neg_size <= len(best_users):
            break  # Line 3.10: upper bound cannot beat the incumbent
        if sl.lower_group >= rsk_group and rsk_group > 0.0:
            # Lines 3.11–3.13: keyword-free acceptance path.  The group
            # lower bound is conservative, so confirm per user with the
            # original description only.
            winners = compute_brstknn(
                dataset, query.ox, sl.location, frozenset(), sl.users, rsk,
                backend=backend,
            )
            stats.keyword_combinations_scored += 1
            if len(winners) > len(best_users):
                best_location, best_keywords, best_users = (
                    sl.location,
                    frozenset(),
                    winners,
                )
            # Keywords can only add winners; still try selection below
            # unless nothing can improve.
            if len(winners) == len(sl.users):
                continue
        keywords, winners, scored = selector(
            dataset, query.ox, sl.location, query.keywords, query.ws, sl.users, rsk,
            **selector_kwargs,
        )
        stats.keyword_combinations_scored += scored
        if len(winners) > len(best_users):
            best_location, best_keywords, best_users = sl.location, keywords, winners

    if best_location is None and query.locations:
        # Nothing reached any user's top-k; return the first location
        # with the empty keyword set and an empty BRSTkNN (the maximum).
        best_location = query.locations[0]

    return MaxBRSTkNNResult(
        location=best_location,
        keywords=best_keywords,
        brstknn=best_users,
        stats=stats,
    )
