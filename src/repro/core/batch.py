"""Batch MaxBRSTkNN query processing.

A single :meth:`MaxBRSTkNNEngine.query` pays for two phases: the top-k
phase (joint traversal + Algorithm 2 refinement), which depends only on
``(dataset, k)``, and candidate selection (Algorithm 3), which depends
on the whole query.  Serving many queries one at a time recomputes the
expensive query-independent phase every single time — the same
redundancy the joint traversal removed *within* one query, one level
up.

:func:`query_batch` exploits it: queries are grouped by ``k``, the
top-k phase runs **once per distinct k** (and is memoized on the engine
across batches — the per-dataset score cache), and only per-query
candidate selection runs per query, optionally vectorized
(``Backend.NUMPY``) and optionally fanned out over a process pool
(``QueryOptions.workers``).  ``Mode.INDEXED`` batches share the
MIUR-root joint traversal per distinct k the same way (see
:class:`repro.core.indexed_users.RootTraversal`); their best-first
search stays per query and in-process.

Execution strategy is decided by :func:`repro.core.planner.plan_batch`;
this module only carries the plan out.

Result contract: every result — including its per-query
:class:`QueryStats` I/O and pruning counters — is identical to what a
sequential ``engine.query`` call would have produced; the traversal
I/O recorded in each query's stats is the deterministic cost of the
shared phase, which a cold sequential run re-pays per query.  Only the
wall-clock timings differ (that is the point).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .baseline import baseline_select_candidate
from .candidate_selection import select_candidate
from .config import QueryOptions, coerce_options
from .indexed_users import RootTraversal, compute_root_traversal, indexed_users_maxbrstknn
from .joint_topk import individual_topk, joint_traversal
from .kernels import arrays_for
from .planner import EngineCapabilities, QueryPlan, plan_batch
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.pool import PersistentWorkerPool
    from .engine import MaxBRSTkNNEngine

__all__ = ["SharedTopK", "query_batch", "execute_batch"]


@dataclass(slots=True)
class SharedTopK:
    """Query-independent phase-1 state for one ``(mode, k)`` cell."""

    rsk: Dict[int, float]
    rsk_group: float
    topk_time_s: float
    io_node_visits: int
    io_invfile_blocks: int
    hits: int = 0  # queries served from this entry (introspection)


def _compute_shared(
    engine: "MaxBRSTkNNEngine", mode: str, k: int, backend: str
) -> SharedTopK:
    """Run the top-k phase once for every query sharing ``(mode, k)``."""
    from ..topk.single import topk_all_users_individually

    before = engine.io.snapshot()
    t0 = time.perf_counter()
    if mode == "joint":
        traversal = joint_traversal(
            engine.object_tree, engine.dataset, k, store=engine.store
        )
        per_user = individual_topk(
            traversal, engine.dataset, k, backend=backend
        )
        rsk_group = traversal.rsk_group
    else:  # baseline: per-user top-k, no group threshold
        per_user = topk_all_users_individually(
            engine.object_tree, engine.dataset, k, store=engine.store
        )
        rsk_group = 0.0
    elapsed = time.perf_counter() - t0
    delta = engine.io.snapshot() - before
    return SharedTopK(
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        rsk_group=rsk_group,
        topk_time_s=elapsed,
        io_node_visits=delta.node_visits,
        io_invfile_blocks=delta.invfile_blocks,
    )


def _select_one(
    dataset,
    query: MaxBRSTkNNQuery,
    shared: SharedTopK,
    mode: str,
    method: str,
    backend: str,
) -> MaxBRSTkNNResult:
    """Phase 2 for one query against the shared thresholds."""
    stats = QueryStats(
        users_total=len(dataset.users),
        topk_time_s=shared.topk_time_s,
        io_node_visits=shared.io_node_visits,
        io_invfile_blocks=shared.io_invfile_blocks,
    )
    t0 = time.perf_counter()
    if mode == "baseline":
        result = baseline_select_candidate(dataset, query, shared.rsk, stats=stats)
    else:
        result = select_candidate(
            dataset,
            query,
            shared.rsk,
            rsk_group=shared.rsk_group,
            method=method,
            stats=stats,
            backend=backend,
        )
    stats.selection_time_s = time.perf_counter() - t0
    result.stats = stats
    return result


# ----------------------------------------------------------------------
# Process-pool fan-out (fork only: workers inherit the indexes for free)
# ----------------------------------------------------------------------

#: State handed to forked workers via copy-on-write memory, not pickling.
#: Guarded by _FORK_LOCK: concurrent query_batch calls (e.g. a serving
#: layer with one engine per thread) must not interleave set/fork/clear.
_FORK_STATE: Optional[Tuple] = None
_FORK_LOCK = threading.Lock()


def _run_forked(i: int) -> MaxBRSTkNNResult:
    dataset, queries, shared_by_key, mode, method, backend = _FORK_STATE
    query, key = queries[i]
    return _select_one(dataset, query, shared_by_key[key], mode, method, backend)


def query_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    options: Union[QueryOptions, str, None] = None,
    *,
    method: Optional[str] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[MaxBRSTkNNResult]:
    """Answer many MaxBRSTkNN queries, sharing phase 1 per distinct k.

    Parameters
    ----------
    queries:
        Any number of queries (the empty batch returns ``[]``).  Queries
        may repeat; duplicates cost only a selection pass each.
    options:
        A :class:`QueryOptions`; the legacy ``method=`` / ``mode=`` /
        ``backend=`` / ``workers=`` kwargs keep working through the
        deprecation shim.  Results are identical across backends.
    pool:
        Optional persistent worker pool (``repro.serve.pool``) used for
        phase 2 instead of a per-call fork pool; amortizes worker
        startup across batches (the serving layer passes one).
    """
    opts = coerce_options(
        options, method=method, mode=mode, backend=backend, workers=workers,
        api="query_batch",
    )
    queries = list(queries)
    if not queries:
        return []
    plan = plan_batch(opts, EngineCapabilities.of(engine), [q.k for q in queries])
    return execute_batch(engine, queries, plan, pool=pool)


def execute_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    plan: QueryPlan,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[MaxBRSTkNNResult]:
    """Carry out a planned batch (see :func:`repro.core.planner.plan_batch`)."""
    mode, method, backend = plan.mode.value, plan.method.value, plan.backend
    cache = engine._shared_topk_cache

    if plan.shared_traversal:
        # Indexed batches: share the MIUR-root joint traversal per
        # distinct k; the per-query best-first search starts from fresh
        # caches so results and stats match sequential queries exactly.
        assert engine.user_tree is not None  # planner validated
        results: List[MaxBRSTkNNResult] = []
        for q in queries:
            key = (mode, q.k)
            entry = cache.get(key)
            if entry is None:
                entry = compute_root_traversal(
                    engine.object_tree, engine.user_tree, engine.dataset,
                    q.k, store=engine.store,
                )
                cache[key] = entry
            assert isinstance(entry, RootTraversal)
            entry.hits += 1
            results.append(
                indexed_users_maxbrstknn(
                    engine.object_tree,
                    engine.user_tree,
                    engine.dataset,
                    q,
                    method=method,
                    store=engine.store,
                    backend=backend,
                    shared=entry,
                )
            )
        return results

    # Phase 1, once per distinct k (memoized on the engine across calls).
    keyed: List[Tuple[MaxBRSTkNNQuery, Tuple[str, int]]] = []
    for q in queries:
        key = (mode, q.k)
        if key not in cache:
            cache[key] = _compute_shared(engine, mode, q.k, backend)
        entry = cache[key]
        assert isinstance(entry, SharedTopK)
        entry.hits += 1
        keyed.append((q, key))
    shared_by_key: Dict[Tuple[str, int], SharedTopK] = {
        key: cache[key] for _, key in keyed  # type: ignore[misc]
    }

    if backend == "numpy":
        arrays_for(engine.dataset)  # build before forking: shared via COW

    if pool is not None and len(keyed) > 1:
        # Chunk per (mode, k) group so each SharedTopK — O(num_users)
        # of thresholds — is pickled once per chunk, not per query,
        # while every worker still gets work for single-k batches.
        by_key: Dict[Tuple[str, int], List[int]] = {}
        for i, (_, key) in enumerate(keyed):
            by_key.setdefault(key, []).append(i)
        payloads, index_groups = [], []
        for key, indices in by_key.items():
            n_chunks = min(pool.workers, len(indices))
            for c in range(n_chunks):
                chunk = indices[c::n_chunks]
                payloads.append(
                    ([keyed[i][0] for i in chunk], shared_by_key[key],
                     mode, method, backend)
                )
                index_groups.append(chunk)
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(keyed)
        for indices, group in zip(index_groups, pool.run_selection(payloads)):
            for i, result in zip(indices, group):
                results[i] = result
        return results  # type: ignore[return-value]

    if plan.workers > 1:
        global _FORK_STATE
        with _FORK_LOCK:
            _FORK_STATE = (
                engine.dataset, keyed, shared_by_key, mode, method, backend,
            )
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(min(plan.workers, len(keyed))) as fork_pool:
                    return fork_pool.map(_run_forked, range(len(keyed)))
            finally:
                _FORK_STATE = None
    return [
        _select_one(engine.dataset, q, shared_by_key[key], mode, method, backend)
        for q, key in keyed
    ]
