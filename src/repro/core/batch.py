"""Batch MaxBRSTkNN query processing.

A single :meth:`MaxBRSTkNNEngine.query` pays for two phases: the top-k
phase (joint traversal + Algorithm 2 refinement), which depends only on
``(dataset, k)``, and candidate selection (Algorithm 3), which depends
on the whole query.  Serving many queries one at a time recomputes the
expensive query-independent phase every single time — the same
redundancy the joint traversal removed *within* one query, one level
up.

:func:`query_batch` exploits it: queries are grouped by ``k``, the
top-k phase runs **once per distinct k** (and is memoized on the engine
across batches — the per-dataset score cache), and only per-query
candidate selection runs per query, optionally vectorized
(``backend="numpy"``) and optionally fanned out over a process pool
(``workers=N``).

Result contract: every result — including its per-query
:class:`QueryStats` I/O and pruning counters — is identical to what a
sequential ``engine.query`` call would have produced; the traversal
I/O recorded in each query's stats is the deterministic cost of the
shared phase, which a cold sequential run re-pays per query.  Only the
wall-clock timings differ (that is the point).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .baseline import baseline_select_candidate
from .candidate_selection import select_candidate
from .joint_topk import individual_topk, joint_traversal
from .kernels import arrays_for, resolve_backend
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import MaxBRSTkNNEngine

__all__ = ["SharedTopK", "query_batch"]


@dataclass(slots=True)
class SharedTopK:
    """Query-independent phase-1 state for one ``(mode, k)`` cell."""

    rsk: Dict[int, float]
    rsk_group: float
    topk_time_s: float
    io_node_visits: int
    io_invfile_blocks: int
    hits: int = 0  # queries served from this entry (introspection)


def _compute_shared(
    engine: "MaxBRSTkNNEngine", mode: str, k: int, backend: str
) -> SharedTopK:
    """Run the top-k phase once for every query sharing ``(mode, k)``."""
    from ..topk.single import topk_all_users_individually

    before = engine.io.snapshot()
    t0 = time.perf_counter()
    if mode == "joint":
        traversal = joint_traversal(
            engine.object_tree, engine.dataset, k, store=engine.store
        )
        per_user = individual_topk(
            traversal, engine.dataset, k, backend=backend
        )
        rsk_group = traversal.rsk_group
    else:  # baseline: per-user top-k, no group threshold
        per_user = topk_all_users_individually(
            engine.object_tree, engine.dataset, k, store=engine.store
        )
        rsk_group = 0.0
    elapsed = time.perf_counter() - t0
    delta = engine.io.snapshot() - before
    return SharedTopK(
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        rsk_group=rsk_group,
        topk_time_s=elapsed,
        io_node_visits=delta.node_visits,
        io_invfile_blocks=delta.invfile_blocks,
    )


def _select_one(
    dataset,
    query: MaxBRSTkNNQuery,
    shared: SharedTopK,
    mode: str,
    method: str,
    backend: str,
) -> MaxBRSTkNNResult:
    """Phase 2 for one query against the shared thresholds."""
    stats = QueryStats(
        users_total=len(dataset.users),
        topk_time_s=shared.topk_time_s,
        io_node_visits=shared.io_node_visits,
        io_invfile_blocks=shared.io_invfile_blocks,
    )
    t0 = time.perf_counter()
    if mode == "baseline":
        result = baseline_select_candidate(dataset, query, shared.rsk, stats=stats)
    else:
        result = select_candidate(
            dataset,
            query,
            shared.rsk,
            rsk_group=shared.rsk_group,
            method=method,
            stats=stats,
            backend=backend,
        )
    stats.selection_time_s = time.perf_counter() - t0
    result.stats = stats
    return result


# ----------------------------------------------------------------------
# Process-pool fan-out (fork only: workers inherit the indexes for free)
# ----------------------------------------------------------------------

#: State handed to forked workers via copy-on-write memory, not pickling.
#: Guarded by _FORK_LOCK: concurrent query_batch calls (e.g. a serving
#: layer with one engine per thread) must not interleave set/fork/clear.
_FORK_STATE: Optional[Tuple] = None
_FORK_LOCK = threading.Lock()


def _run_forked(i: int) -> MaxBRSTkNNResult:
    dataset, queries, shared_by_key, mode, method, backend = _FORK_STATE
    query, key = queries[i]
    return _select_one(dataset, query, shared_by_key[key], mode, method, backend)


def query_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    method: str = "approx",
    mode: str = "joint",
    backend: Optional[str] = None,
    workers: int = 1,
) -> List[MaxBRSTkNNResult]:
    """Answer many MaxBRSTkNN queries, sharing the top-k phase.

    Parameters
    ----------
    queries:
        Any number of queries (the empty batch returns ``[]``).  Queries
        may repeat; duplicates cost only a selection pass each.
    method / mode:
        As in :meth:`MaxBRSTkNNEngine.query`.  ``mode="indexed"`` has no
        shareable phase (its traversal interleaves with per-query
        location pruning) and falls back to sequential engine calls.
    backend:
        ``None``/"auto" picks numpy when available; results are
        identical across backends.
    workers:
        Fan candidate selection out over a fork-based process pool.
        Falls back to in-process execution when ``fork`` is unavailable
        or the batch is trivial.
    """
    if mode not in ("joint", "baseline", "indexed"):
        raise ValueError(f"unknown mode {mode!r}")
    backend = resolve_backend(backend)
    queries = list(queries)
    if not queries:
        return []
    if mode == "indexed":
        return [
            engine.query(q, method=method, mode=mode, backend=backend)
            for q in queries
        ]

    # Phase 1, once per distinct k (memoized on the engine across calls).
    cache = engine._shared_topk_cache
    keyed: List[Tuple[MaxBRSTkNNQuery, Tuple[str, int]]] = []
    for q in queries:
        key = (mode, q.k)
        if key not in cache:
            cache[key] = _compute_shared(engine, mode, q.k, backend)
        cache[key].hits += 1
        keyed.append((q, key))
    shared_by_key = {key: cache[key] for _, key in keyed}

    if backend == "numpy":
        arrays_for(engine.dataset)  # build before forking: shared via COW

    if workers > 1 and len(queries) > 1:
        if "fork" in multiprocessing.get_all_start_methods():
            global _FORK_STATE
            with _FORK_LOCK:
                _FORK_STATE = (
                    engine.dataset, keyed, shared_by_key, mode, method, backend,
                )
                try:
                    ctx = multiprocessing.get_context("fork")
                    with ctx.Pool(min(workers, len(queries))) as pool:
                        return pool.map(_run_forked, range(len(keyed)))
                finally:
                    _FORK_STATE = None
    return [
        _select_one(engine.dataset, q, shared_by_key[key], mode, method, backend)
        for q, key in keyed
    ]
