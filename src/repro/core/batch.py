"""Batch MaxBRSTkNN query processing.

A single :meth:`MaxBRSTkNNEngine.query` pays for two phases: the top-k
phase (joint traversal + Algorithm 2 refinement), which depends only on
``(dataset, k)``, and candidate selection (Algorithm 3), which depends
on the whole query.  Serving many queries one at a time recomputes the
expensive query-independent phase every single time — the same
redundancy the joint traversal removed *within* one query, one level
up.

:func:`query_batch` exploits it — and since PR 3, ``Mode.JOINT``
batches go further with **cross-k candidate-pool sharing**: one joint
traversal at ``k_max = max(k)`` produces candidate pools that provably
subsume the pools of every smaller ``k`` in the batch
(``RSk_max(us) <= RSk(us)``, so no object a smaller-k traversal keeps
is ever pruned at ``k_max``), and each k's thresholds are derived from
the shared pool by Algorithm 2 (:class:`SharedTraversalPool`, memoized
on the engine across batches).  A mixed-k batch therefore pays for a
*single* tree walk.  Candidate selection stays per query, optionally
vectorized (``Backend.NUMPY``) and optionally fanned out over a
process pool (``QueryOptions.workers``).  ``Mode.INDEXED`` batches
share the MIUR-root joint traversal per distinct k (see
:class:`repro.core.indexed_users.RootTraversal` and the
``shared_traversal_k`` docs in :mod:`repro.core.planner` for why they
do not pool across k); their best-first search stays per query and
in-process.  ``Mode.BASELINE`` shares its per-user top-k per distinct
k as before.

Execution strategy is decided by :func:`repro.core.planner.plan_batch`;
this module only carries the plan out.

Result contract: every result — location, keywords, BRSTkNN set, and
every *selection-phase* :class:`QueryStats` counter (pruning,
combinations scored) — is identical to what a sequential
``engine.query`` call would have produced.  The *top-k phase* stats of
a joint batch describe the one shared walk that produced the pool in
use — ``QueryPlan.shared_traversal_k`` names it: the batch's ``k_max``
on a fresh engine, or a larger earlier walk the memoized pool kept (a
cold sequential run of the same query pays a ``k``-walk instead).
They are identical for every query in the batch, and for same-k
batches against a fresh (or freshly cleared) engine they coincide with
the sequential trace exactly.  Only wall-clock timings differ beyond
that (that is the point).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .baseline import baseline_select_candidate
from .candidate_selection import select_candidate
from .config import QueryOptions, coerce_options
from .indexed_users import RootTraversal, compute_root_traversal, indexed_users_maxbrstknn
from .joint_topk import JointTraversalResult, individual_topk, joint_traversal
from .kernels import arrays_for
from .planner import EngineCapabilities, QueryPlan, plan_batch
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.pool import PersistentWorkerPool
    from .engine import MaxBRSTkNNEngine

__all__ = [
    "SharedTopK",
    "SharedTraversalPool",
    "derive_rsk_group",
    "query_batch",
    "execute_batch",
]


@dataclass(slots=True)
class SharedTopK:
    """Query-independent phase-1 state for one ``(mode, k)`` cell."""

    rsk: Dict[int, float]
    rsk_group: float
    topk_time_s: float
    io_node_visits: int
    io_invfile_blocks: int
    hits: int = 0  # queries served from this entry (introspection)


@dataclass(slots=True)
class SharedTraversalPool:
    """Cross-k phase-1 state for ``Mode.JOINT`` batches.

    One joint traversal at ``k`` — the largest k any batch has asked
    this engine for — owns the candidate pools; smaller-k thresholds
    are derived from the same pools by Algorithm 2 and memoized in
    ``by_k``.  Subsumption argument: an object outside the ``k_max``
    pools has ``UB(o, us) < RSk_max(us) <= RSk(us) <= RSk(u)`` for
    every user and every ``k <= k_max``, so it can appear in nobody's
    top-k — exactly the objects a dedicated ``k``-traversal is allowed
    to drop.  Derived thresholds (``RSk(u)`` and ``RSk(us)``) are
    value-identical to what the dedicated traversal would produce, so
    downstream selection results match sequential queries exactly.
    """

    k: int
    traversal: JointTraversalResult
    topk_time_s: float  # wall time of the one shared walk
    io_node_visits: int
    io_invfile_blocks: int
    by_k: Dict[int, SharedTopK]
    hits: int = 0  # queries served from this pool (introspection)


def _compute_shared_baseline(engine: "MaxBRSTkNNEngine", k: int) -> SharedTopK:
    """Baseline phase 1, once per distinct ``k``: per-user top-k scans.

    (Joint batches no longer run a per-k phase 1 — they derive their
    thresholds from the engine's cross-k :class:`SharedTraversalPool`.)
    """
    from ..topk.single import topk_all_users_individually

    before = engine.io.snapshot()
    t0 = time.perf_counter()
    per_user = topk_all_users_individually(
        engine.object_tree, engine.dataset, k, store=engine.store
    )
    elapsed = time.perf_counter() - t0
    delta = engine.io.snapshot() - before
    return SharedTopK(
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        rsk_group=0.0,
        topk_time_s=elapsed,
        io_node_visits=delta.node_visits,
        io_invfile_blocks=delta.invfile_blocks,
    )


def _ensure_traversal_pool(
    engine: "MaxBRSTkNNEngine", k: int, backend: str
) -> SharedTraversalPool:
    """The engine's cross-k pool, (re)walked only when ``k`` outgrows it."""
    pool = engine._traversal_pool
    if pool is None or pool.k < k:
        before = engine.io.snapshot()
        t0 = time.perf_counter()
        traversal = joint_traversal(
            engine.object_tree, engine.dataset, k, store=engine.store,
            backend=backend,
        )
        elapsed = time.perf_counter() - t0
        delta = engine.io.snapshot() - before
        engine.traversal_runs += 1
        # Drop previously derived thresholds: every by_k entry reports
        # the walk that produced the current pool.
        pool = SharedTraversalPool(
            k=k,
            traversal=traversal,
            topk_time_s=elapsed,
            io_node_visits=delta.node_visits,
            io_invfile_blocks=delta.invfile_blocks,
            by_k={},
        )
        engine._traversal_pool = pool
    return pool


def derive_rsk_group(pool: SharedTraversalPool, k: int) -> float:
    """``RSk(us)`` at ``k`` from a pool walked at ``pool.k >= k``.

    For ``k == pool.k`` it is the walk's own threshold; for smaller k
    it is the k-th best candidate lower bound over the pool — exactly
    the value a dedicated ``k``-walk would have converged to, since any
    object with a top-k lower bound survives the larger walk.  Shared
    by the per-k derivation below and the sharded gather
    (``repro.serve.sharded``), which computes the group threshold once
    centrally while shards refine per-user thresholds.
    """
    if k > pool.k:
        raise ValueError(f"pool walked at k={pool.k} cannot serve k={k}")
    if k == pool.k:
        return pool.traversal.rsk_group
    lows = sorted((c.lower for c in pool.traversal.all_candidates()), reverse=True)
    return lows[k - 1] if 0 < k <= len(lows) else 0.0


def _derive_shared_topk(
    engine: "MaxBRSTkNNEngine", pool: SharedTraversalPool, k: int, backend: str
) -> SharedTopK:
    """Per-k thresholds from the shared pool (Algorithm 2, memoized).

    ``RSk(u)`` values are exactly what a dedicated ``k``-traversal
    followed by Algorithm 2 yields: the pool contains every object any
    user can rank in a top-``k`` (``k <= pool.k``), refinement computes
    exact scores, and ties resolve by ``(score, object id)`` — pool
    membership beyond the necessary objects cannot change the outcome.
    ``RSk(us)`` equals the k-th best candidate lower bound globally:
    any object with a top-k lower bound survives the ``k_max`` walk.
    """
    if k > pool.k:
        raise ValueError(f"pool walked at k={pool.k} cannot serve k={k}")
    entry = pool.by_k.get(k)
    if entry is not None:
        return entry
    t0 = time.perf_counter()
    per_user = individual_topk(pool.traversal, engine.dataset, k, backend=backend)
    rsk_group = derive_rsk_group(pool, k)
    elapsed = time.perf_counter() - t0
    entry = SharedTopK(
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        rsk_group=rsk_group,
        topk_time_s=pool.topk_time_s + elapsed,
        io_node_visits=pool.io_node_visits,
        io_invfile_blocks=pool.io_invfile_blocks,
    )
    pool.by_k[k] = entry
    return entry


def _select_one(
    dataset,
    query: MaxBRSTkNNQuery,
    shared: SharedTopK,
    mode: str,
    method: str,
    backend: str,
) -> MaxBRSTkNNResult:
    """Phase 2 for one query against the shared thresholds."""
    stats = QueryStats(
        users_total=len(dataset.users),
        topk_time_s=shared.topk_time_s,
        io_node_visits=shared.io_node_visits,
        io_invfile_blocks=shared.io_invfile_blocks,
    )
    t0 = time.perf_counter()
    if mode == "baseline":
        result = baseline_select_candidate(dataset, query, shared.rsk, stats=stats)
    else:
        result = select_candidate(
            dataset,
            query,
            shared.rsk,
            rsk_group=shared.rsk_group,
            method=method,
            stats=stats,
            backend=backend,
        )
    stats.selection_time_s = time.perf_counter() - t0
    result.stats = stats
    return result


# ----------------------------------------------------------------------
# Process-pool fan-out (fork only: workers inherit the indexes for free)
# ----------------------------------------------------------------------

#: State handed to forked workers via copy-on-write memory, not pickling.
#: Guarded by _FORK_LOCK: concurrent query_batch calls (e.g. a serving
#: layer with one engine per thread) must not interleave set/fork/clear.
_FORK_STATE: Optional[Tuple] = None
_FORK_LOCK = threading.Lock()


def _run_forked(i: int) -> MaxBRSTkNNResult:
    dataset, queries, shared_by_key, mode, method, backend = _FORK_STATE
    query, key = queries[i]
    return _select_one(dataset, query, shared_by_key[key], mode, method, backend)


def query_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    options: Union[QueryOptions, str, None] = None,
    *,
    method: Optional[str] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[MaxBRSTkNNResult]:
    """Answer many MaxBRSTkNN queries, sharing phase 1 per distinct k.

    Parameters
    ----------
    queries:
        Any number of queries (the empty batch returns ``[]``).  Queries
        may repeat; duplicates cost only a selection pass each.
    options:
        A :class:`QueryOptions`; the legacy ``method=`` / ``mode=`` /
        ``backend=`` / ``workers=`` kwargs keep working through the
        deprecation shim.  Results are identical across backends.
    pool:
        Optional persistent worker pool (``repro.serve.pool``) used for
        phase 2 instead of a per-call fork pool; amortizes worker
        startup across batches (the serving layer passes one).
    """
    opts = coerce_options(
        options, method=method, mode=mode, backend=backend, workers=workers,
        api="query_batch",
    )
    queries = list(queries)
    if not queries:
        return []
    plan = plan_batch(opts, EngineCapabilities.of(engine), [q.k for q in queries])
    return execute_batch(engine, queries, plan, pool=pool)


def execute_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    plan: QueryPlan,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[MaxBRSTkNNResult]:
    """Carry out a planned batch (see :func:`repro.core.planner.plan_batch`)."""
    mode, method, backend = plan.mode.value, plan.method.value, plan.backend
    cache = engine._shared_topk_cache

    if plan.shared_traversal:
        # Indexed batches: share the MIUR-root joint traversal per
        # distinct k; the per-query best-first search starts from fresh
        # caches so results and stats match sequential queries exactly.
        assert engine.user_tree is not None  # planner validated
        results: List[MaxBRSTkNNResult] = []
        for q in queries:
            key = (mode, q.k)
            entry = cache.get(key)
            if entry is None:
                entry = compute_root_traversal(
                    engine.object_tree, engine.user_tree, engine.dataset,
                    q.k, store=engine.store, backend=backend,
                )
                engine.traversal_runs += 1
                cache[key] = entry
            assert isinstance(entry, RootTraversal)
            entry.hits += 1
            results.append(
                indexed_users_maxbrstknn(
                    engine.object_tree,
                    engine.user_tree,
                    engine.dataset,
                    q,
                    method=method,
                    store=engine.store,
                    backend=backend,
                    shared=entry,
                )
            )
        return results

    # Phase 1.  Joint batches: ONE tree walk at k_max feeds every k in
    # the batch (cross-k pool sharing); baseline batches: per-user
    # top-k once per distinct k.  Both memoized on the engine.
    keyed: List[Tuple[MaxBRSTkNNQuery, Tuple[str, int]]] = []
    shared_by_key: Dict[Tuple[str, int], SharedTopK] = {}
    if plan.shared_traversal_k is not None:
        pool_state = _ensure_traversal_pool(
            engine, plan.shared_traversal_k, backend
        )
        pool_state.hits += len(queries)
        for q in queries:
            key = (mode, q.k)
            entry = _derive_shared_topk(engine, pool_state, q.k, backend)
            entry.hits += 1
            shared_by_key[key] = entry
            keyed.append((q, key))
    else:
        for q in queries:
            key = (mode, q.k)
            if key not in cache:
                cache[key] = _compute_shared_baseline(engine, q.k)
            entry = cache[key]
            assert isinstance(entry, SharedTopK)
            entry.hits += 1
            shared_by_key[key] = entry
            keyed.append((q, key))

    if backend == "numpy":
        arrays_for(engine.dataset)  # build before forking: shared via COW

    if pool is not None and len(keyed) > 1:
        # Chunk per (mode, k) group so each SharedTopK — O(num_users)
        # of thresholds — is pickled once per chunk, not per query,
        # while every worker still gets work for single-k batches.
        by_key: Dict[Tuple[str, int], List[int]] = {}
        for i, (_, key) in enumerate(keyed):
            by_key.setdefault(key, []).append(i)
        payloads, index_groups = [], []
        for key, indices in by_key.items():
            n_chunks = min(pool.workers, len(indices))
            for c in range(n_chunks):
                chunk = indices[c::n_chunks]
                payloads.append(
                    ([keyed[i][0] for i in chunk], shared_by_key[key],
                     mode, method, backend)
                )
                index_groups.append(chunk)
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(keyed)
        for indices, group in zip(index_groups, pool.run_selection(payloads)):
            for i, result in zip(indices, group):
                results[i] = result
        return results  # type: ignore[return-value]

    if plan.workers > 1:
        global _FORK_STATE
        with _FORK_LOCK:
            _FORK_STATE = (
                engine.dataset, keyed, shared_by_key, mode, method, backend,
            )
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(min(plan.workers, len(keyed))) as fork_pool:
                    return fork_pool.map(_run_forked, range(len(keyed)))
            finally:
                _FORK_STATE = None
    return [
        _select_one(engine.dataset, q, shared_by_key[key], mode, method, backend)
        for q, key in keyed
    ]
