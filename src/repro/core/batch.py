"""Batch MaxBRSTkNN query processing.

A single :meth:`MaxBRSTkNNEngine.query` pays for two phases: the top-k
phase (joint traversal + Algorithm 2 refinement), which depends only on
``(dataset, k)``, and candidate selection (Algorithm 3), which depends
on the whole query.  Serving many queries one at a time recomputes the
expensive query-independent phase every single time — the same
redundancy the joint traversal removed *within* one query, one level
up.

:func:`query_batch` exploits it — and since PR 3, ``Mode.JOINT``
batches go further with **cross-k candidate-pool sharing**: one joint
traversal at ``k_max = max(k)`` produces candidate pools that provably
subsume the pools of every smaller ``k`` in the batch
(``RSk_max(us) <= RSk(us)``, so no object a smaller-k traversal keeps
is ever pruned at ``k_max``), and each k's thresholds are derived from
the shared pool by Algorithm 2 (:class:`SharedTraversalPool`, memoized
on the engine across batches).  A mixed-k batch therefore pays for a
*single* tree walk.  Candidate selection stays per query, optionally
vectorized (``Backend.NUMPY``) and optionally fanned out over a
process pool (``QueryOptions.workers``).  Since PR 5, ``Mode.INDEXED``
batches pool across k the same way: the node-RSk reformulation
(:mod:`repro.core.indexed_users`) made every per-k quantity derive
pool-independently from one MIUR-root walk at ``k_max``, memoized on
the engine as ``engine._root_pool``.  ``Mode.BASELINE`` shares its
per-user top-k per distinct k as before.

Execution strategy is decided by :func:`repro.core.planner.plan_batch`
and carried out by the unified phase pipeline
(:class:`repro.core.pipeline.LocalExecutor` here; the sharded serving
layer drives the same stages through a
:class:`~repro.core.pipeline.ShardedExecutor`).  This module keeps the
phase-1 sharing primitives (pool ensure/derive, the per-query select)
those stages are built from.

Result contract: every result — location, keywords, BRSTkNN set, and
every *selection-phase* :class:`QueryStats` counter (pruning,
combinations scored) — is identical to what a sequential
``engine.query`` call would have produced.  The *top-k phase* stats of
a joint batch describe the one shared walk that produced the pool in
use — ``QueryPlan.shared_traversal_k`` names it: the batch's ``k_max``
on a fresh engine, or a larger earlier walk the memoized pool kept (a
cold sequential run of the same query pays a ``k``-walk instead).
They are identical for every query in the batch, and for same-k
batches against a fresh (or freshly cleared) engine they coincide with
the sequential trace exactly.  Only wall-clock timings differ beyond
that (that is the point).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .baseline import baseline_select_candidate
from .candidate_selection import select_candidate
from .config import QueryOptions, coerce_options
from .joint_topk import (
    JointTraversalResult,
    derive_rsk_group as _derive_rsk_group_at,
    individual_topk,
    joint_traversal,
)
from .planner import EngineCapabilities, QueryPlan, plan_batch
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.pool import PersistentWorkerPool
    from .engine import MaxBRSTkNNEngine

__all__ = [
    "SharedTopK",
    "SharedTraversalPool",
    "derive_rsk_group",
    "query_batch",
    "execute_batch",
]


@dataclass(slots=True)
class SharedTopK:
    """Query-independent phase-1 state for one ``(mode, k)`` cell."""

    rsk: Dict[int, float]
    rsk_group: float
    topk_time_s: float
    io_node_visits: int
    io_invfile_blocks: int
    hits: int = 0  # queries served from this entry (introspection)


@dataclass(slots=True)
class SharedTraversalPool:
    """Cross-k phase-1 state for ``Mode.JOINT`` batches.

    One joint traversal at ``k`` — the largest k any batch has asked
    this engine for — owns the candidate pools; smaller-k thresholds
    are derived from the same pools by Algorithm 2 and memoized in
    ``by_k``.  Subsumption argument: an object outside the ``k_max``
    pools has ``UB(o, us) < RSk_max(us) <= RSk(us) <= RSk(u)`` for
    every user and every ``k <= k_max``, so it can appear in nobody's
    top-k — exactly the objects a dedicated ``k``-traversal is allowed
    to drop.  Derived thresholds (``RSk(u)`` and ``RSk(us)``) are
    value-identical to what the dedicated traversal would produce, so
    downstream selection results match sequential queries exactly.
    """

    k: int
    traversal: JointTraversalResult
    topk_time_s: float  # wall time of the one shared walk
    io_node_visits: int
    io_invfile_blocks: int
    by_k: Dict[int, SharedTopK]
    hits: int = 0  # queries served from this pool (introspection)
    #: Memoized per-k group thresholds (RSk(us) is an O(pool log pool)
    #: sort to derive; a serving loop asks for the same ks every flush).
    group_by_k: Dict[int, float] = field(default_factory=dict)

    def rsk_group_for(self, k: int) -> float:
        value = self.group_by_k.get(k)
        if value is None:
            value = _derive_rsk_group_at(self.traversal, self.k, k)
            self.group_by_k[k] = value
        return value


def _compute_shared_baseline(engine: "MaxBRSTkNNEngine", k: int) -> SharedTopK:
    """Baseline phase 1, once per distinct ``k``: per-user top-k scans.

    (Joint batches no longer run a per-k phase 1 — they derive their
    thresholds from the engine's cross-k :class:`SharedTraversalPool`.)
    """
    from ..topk.single import topk_all_users_individually

    before = engine.io.snapshot()
    t0 = time.perf_counter()
    per_user = topk_all_users_individually(
        engine.object_tree, engine.dataset, k, store=engine.store
    )
    elapsed = time.perf_counter() - t0
    delta = engine.io.snapshot() - before
    return SharedTopK(
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        rsk_group=0.0,
        topk_time_s=elapsed,
        io_node_visits=delta.node_visits,
        io_invfile_blocks=delta.invfile_blocks,
    )


def _ensure_traversal_pool(
    engine: "MaxBRSTkNNEngine", k: int, backend: str
) -> SharedTraversalPool:
    """The engine's cross-k pool, (re)walked only when ``k`` outgrows it."""
    pool = engine._traversal_pool
    if pool is None or pool.k < k:
        before = engine.io.snapshot()
        t0 = time.perf_counter()
        traversal = joint_traversal(
            engine.object_tree, engine.dataset, k, store=engine.store,
            backend=backend,
        )
        elapsed = time.perf_counter() - t0
        delta = engine.io.snapshot() - before
        engine.traversal_runs += 1
        # Drop previously derived thresholds: every by_k entry reports
        # the walk that produced the current pool.
        pool = SharedTraversalPool(
            k=k,
            traversal=traversal,
            topk_time_s=elapsed,
            io_node_visits=delta.node_visits,
            io_invfile_blocks=delta.invfile_blocks,
            by_k={},
        )
        engine._traversal_pool = pool
    return pool


def derive_rsk_group(pool: SharedTraversalPool, k: int) -> float:
    """``RSk(us)`` at ``k`` from a pool walked at ``pool.k >= k``.

    Thin wrapper over the shared, pool-independent derivation
    (:func:`repro.core.joint_topk.derive_rsk_group`), memoized per k on
    the pool — kept here because the sharded gather and the per-k
    threshold derivation below both address pools through this module.
    """
    return pool.rsk_group_for(k)


def _derive_shared_topk(
    engine: "MaxBRSTkNNEngine", pool: SharedTraversalPool, k: int, backend: str
) -> SharedTopK:
    """Per-k thresholds from the shared pool (Algorithm 2, memoized).

    ``RSk(u)`` values are exactly what a dedicated ``k``-traversal
    followed by Algorithm 2 yields: the pool contains every object any
    user can rank in a top-``k`` (``k <= pool.k``), refinement computes
    exact scores, and ties resolve by ``(score, object id)`` — pool
    membership beyond the necessary objects cannot change the outcome.
    ``RSk(us)`` equals the k-th best candidate lower bound globally:
    any object with a top-k lower bound survives the ``k_max`` walk.
    """
    if k > pool.k:
        raise ValueError(f"pool walked at k={pool.k} cannot serve k={k}")
    entry = pool.by_k.get(k)
    if entry is not None:
        return entry
    t0 = time.perf_counter()
    per_user = individual_topk(pool.traversal, engine.dataset, k, backend=backend)
    rsk_group = derive_rsk_group(pool, k)
    elapsed = time.perf_counter() - t0
    entry = SharedTopK(
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        rsk_group=rsk_group,
        topk_time_s=pool.topk_time_s + elapsed,
        io_node_visits=pool.io_node_visits,
        io_invfile_blocks=pool.io_invfile_blocks,
    )
    pool.by_k[k] = entry
    return entry


def _select_one(
    dataset,
    query: MaxBRSTkNNQuery,
    shared: SharedTopK,
    mode: str,
    method: str,
    backend: str,
) -> MaxBRSTkNNResult:
    """Phase 2 for one query against the shared thresholds."""
    stats = QueryStats(
        users_total=len(dataset.users),
        topk_time_s=shared.topk_time_s,
        io_node_visits=shared.io_node_visits,
        io_invfile_blocks=shared.io_invfile_blocks,
    )
    t0 = time.perf_counter()
    if mode == "baseline":
        result = baseline_select_candidate(dataset, query, shared.rsk, stats=stats)
    else:
        result = select_candidate(
            dataset,
            query,
            shared.rsk,
            rsk_group=shared.rsk_group,
            method=method,
            stats=stats,
            backend=backend,
        )
    stats.selection_time_s = time.perf_counter() - t0
    result.stats = stats
    return result


# ----------------------------------------------------------------------
# Process-pool fan-out (fork only: workers inherit the indexes for free)
# ----------------------------------------------------------------------

def _select_chunk(dataset, payload: Tuple) -> List[MaxBRSTkNNResult]:
    """One select-stage chunk: several queries against one shared state.

    The in-process / forked twin of the persistent pool's payload
    runner (``repro.serve.pool._run_payload``) — same tuple layout, so
    every execution mode runs identical code.
    """
    from .payload import decode_select_payload

    # Identity on plain payloads; arena-encoded select payloads
    # (config.use_shm) resolve their shared-state ArenaRef here.
    queries, shared, mode, method, backend = decode_select_payload(payload)
    return [
        _select_one(dataset, query, shared, mode, method, backend)
        for query in queries
    ]


#: State handed to forked workers via copy-on-write memory, not pickling.
#: Guarded by _FORK_LOCK: concurrent query_batch calls (e.g. a serving
#: layer with one engine per thread) must not interleave set/fork/clear.
_FORK_STATE: Optional[Tuple] = None
_FORK_LOCK = threading.Lock()


def _run_forked(i: int) -> List[MaxBRSTkNNResult]:
    dataset, payloads = _FORK_STATE
    return _select_chunk(dataset, payloads[i])


def _fork_execute(dataset, payloads: List[Tuple], workers: int) -> List[list]:
    """Run select-stage chunks over an ephemeral fork pool.

    Workers inherit ``dataset`` (and its pre-built kernel arrays)
    through copy-on-write at fork time; only the chunk index crosses
    the worker pipe.
    """
    global _FORK_STATE
    with _FORK_LOCK:
        _FORK_STATE = (dataset, payloads)
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(min(workers, len(payloads))) as fork_pool:
                return fork_pool.map(_run_forked, range(len(payloads)))
        finally:
            _FORK_STATE = None


def query_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    options: Union[QueryOptions, str, None] = None,
    *,
    method: Optional[str] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[MaxBRSTkNNResult]:
    """Answer many MaxBRSTkNN queries, sharing phase 1 per distinct k.

    Parameters
    ----------
    queries:
        Any number of queries (the empty batch returns ``[]``).  Queries
        may repeat; duplicates cost only a selection pass each.
    options:
        A :class:`QueryOptions`; the legacy ``method=`` / ``mode=`` /
        ``backend=`` / ``workers=`` kwargs keep working through the
        deprecation shim.  Results are identical across backends.
    pool:
        Optional persistent worker pool (``repro.serve.pool``) used for
        phase 2 instead of a per-call fork pool; amortizes worker
        startup across batches (the serving layer passes one).
    """
    opts = coerce_options(
        options, method=method, mode=mode, backend=backend, workers=workers,
        api="query_batch",
    )
    queries = list(queries)
    if not queries:
        return []
    plan = plan_batch(
        opts,
        EngineCapabilities.of(engine),
        [q.k for q in queries],
        history=getattr(engine, "flush_history", None),
    )
    return execute_batch(engine, queries, plan, pool=pool)


def execute_batch(
    engine: "MaxBRSTkNNEngine",
    queries: Sequence[MaxBRSTkNNQuery],
    plan: QueryPlan,
    pool: Optional["PersistentWorkerPool"] = None,
) -> List[MaxBRSTkNNResult]:
    """Carry out a planned batch through the unified phase pipeline.

    Thin wrapper: a :class:`repro.core.pipeline.LocalExecutor` drives
    the mode's stage list (traverse → refine → select for joint,
    root-traverse → search for indexed, topk → select for baseline) on
    this one engine; per-stage accounting lands on
    ``engine.last_flush_report``.
    """
    from .history import signature_of
    from .pipeline import LocalExecutor

    executor = LocalExecutor(engine, pool=pool)
    results = executor.execute(queries, plan)
    engine.last_flush_report = executor.last_flush_report
    history = getattr(engine, "flush_history", None)
    if history is not None and executor.last_flush_report is not None:
        history.record(signature_of(plan), executor.last_flush_report)
    return results
