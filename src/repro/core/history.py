"""Flush history: the planner's observed-cost feedback loop.

Every executed flush leaves a :class:`~repro.core.pipeline.FlushReport`
with per-stage wall time, item counts and scatter width — but until
this module nothing *consumed* it: the planner re-derived the same
static plan per flush regardless of what the last hundred flushes
actually cost.  :class:`FlushHistory` closes the loop.  Engines record
every report into a small ring buffer keyed by the flush's
:class:`FlushSignature` — ``(mode, backend, scatter_width)``, the three
coordinates that change a flush's cost profile — and the planner
consults :meth:`FlushHistory.observe` per flush to decide, from
*measured* per-item stage costs, whether dispatching work to a pool can
possibly pay for its round-trip (e.g. keep the search fan-out
in-process when the last flushes' searches were sub-millisecond, or
drop the scatter dispatch when per-shard queue depth is low).  Every
such decision is surfaced by ``QueryPlan.explain()`` with an
``observed`` rationale; a cold engine (fewer than
``MIN_OBSERVED_FLUSHES`` recorded flushes at the signature) falls back
to the static plan and says so.

The history is deliberately *not* a result cache: it stores only
aggregate timings (no query content), is bounded per signature, and
feeds planning, never answers.  Exact-result reuse lives in
:mod:`repro.core.cache`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import FlushReport
    from .planner import QueryPlan

__all__ = [
    "FlushSignature",
    "FlushRecord",
    "ObservedCosts",
    "FlushHistory",
    "signature_of",
]


@dataclass(frozen=True, slots=True)
class FlushSignature:
    """The cost-profile coordinates one history cell aggregates over.

    Two flushes with the same signature are comparable: same pipeline
    (``mode``), same kernels (``backend``), same scatter layout
    (``scatter_width`` — engaged shards, or 1 on a single engine).
    Batch size varies *within* a cell; the per-item normalization in
    :class:`ObservedCosts` absorbs it.
    """

    mode: str
    backend: str
    scatter_width: int


def signature_of(plan: "QueryPlan") -> FlushSignature:
    """The history cell a planned flush records into / reads from."""
    shard = plan.shard
    return FlushSignature(
        mode=plan.mode.value,
        backend=plan.backend,
        scatter_width=shard.scatter_width if shard is not None else 1,
    )


@dataclass(slots=True)
class FlushRecord:
    """One flush's accounting, reduced to what the cost model needs."""

    batch_size: int
    #: Per-stage work-item counts (queries or ks the stage covered).
    stage_items: Dict[str, int]
    #: Per-stage wall time in seconds.
    stage_time_s: Dict[str, float]


@dataclass(slots=True)
class ObservedCosts:
    """Aggregate view over one signature's ring buffer.

    ``per_item_ms(stage)`` is total stage wall time over total stage
    items across the recorded flushes — milliseconds of work one item
    costs, the number the planner compares against the pool-dispatch
    bar.  ``mean_items(stage)`` is the mean items-per-flush of a stage,
    which for user-scatter stages is exactly the per-shard queue depth
    at dispatch (every engaged shard receives the full work list).
    """

    flushes: int
    mean_batch: float
    stage_ms_per_item: Dict[str, float] = field(default_factory=dict)
    stage_mean_items: Dict[str, float] = field(default_factory=dict)

    def per_item_ms(self, stage: str) -> Optional[float]:
        return self.stage_ms_per_item.get(stage)

    def mean_items(self, stage: str) -> Optional[float]:
        return self.stage_mean_items.get(stage)


class FlushHistory:
    """Bounded per-signature ring buffers of executed-flush accounting.

    ``capacity`` bounds each signature's buffer (old flushes age out,
    so the observed model tracks the *recent* cost profile — a dataset
    epoch bump or kernel warm-up shifts the numbers within one window).
    Recording is O(stages); observing is O(capacity x stages) over a
    handful of floats, cheap enough to run per flush.
    """

    def __init__(self, capacity: int = 32) -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int) \
                or capacity < 1:
            raise ValueError(f"capacity must be an int >= 1, got {capacity!r}")
        self.capacity = capacity
        self._by_signature: Dict[FlushSignature, Deque[FlushRecord]] = {}

    def record(self, signature: FlushSignature, report: "FlushReport") -> None:
        """Fold one executed flush's report into the signature's buffer."""
        buf = self._by_signature.get(signature)
        if buf is None:
            buf = self._by_signature[signature] = deque(maxlen=self.capacity)
        buf.append(
            FlushRecord(
                batch_size=report.batch_size,
                stage_items={st.stage: st.items for st in report.stages},
                stage_time_s={st.stage: st.time_s for st in report.stages},
            )
        )

    def observe(self, signature: FlushSignature) -> Optional[ObservedCosts]:
        """Aggregate costs at ``signature``, or ``None`` when unseen."""
        buf = self._by_signature.get(signature)
        if not buf:
            return None
        time_by_stage: Dict[str, float] = {}
        items_by_stage: Dict[str, int] = {}
        flushes_by_stage: Dict[str, int] = {}
        total_batch = 0
        for rec in buf:
            total_batch += rec.batch_size
            for stage, items in rec.stage_items.items():
                items_by_stage[stage] = items_by_stage.get(stage, 0) + items
                time_by_stage[stage] = (
                    time_by_stage.get(stage, 0.0) + rec.stage_time_s[stage]
                )
                flushes_by_stage[stage] = flushes_by_stage.get(stage, 0) + 1
        per_item = {
            stage: 1000.0 * time_by_stage[stage] / items
            for stage, items in items_by_stage.items()
            if items > 0
        }
        mean_items = {
            stage: items / flushes_by_stage[stage]
            for stage, items in items_by_stage.items()
        }
        return ObservedCosts(
            flushes=len(buf),
            mean_batch=total_batch / len(buf),
            stage_ms_per_item=per_item,
            stage_mean_items=mean_items,
        )

    def flushes(self, signature: FlushSignature) -> int:
        buf = self._by_signature.get(signature)
        return len(buf) if buf else 0

    def __len__(self) -> int:
        """Total recorded flushes across every signature."""
        return sum(len(buf) for buf in self._by_signature.values())

    def clear(self) -> None:
        self._by_signature.clear()

    def snapshot(self) -> dict:
        """Plain-dict view per signature (CLI / logging friendly)."""
        out = {}
        for sig in self._by_signature:
            obs = self.observe(sig)
            key = f"{sig.mode}/{sig.backend}/x{sig.scatter_width}"
            out[key] = {
                "flushes": obs.flushes,
                "mean_batch": round(obs.mean_batch, 2),
                "stage_ms_per_item": {
                    stage: round(ms, 4)
                    for stage, ms in sorted(obs.stage_ms_per_item.items())
                },
            }
        return out
