"""Unified phase-pipeline executor: one logical plan, many physical executors.

Before PR 5, batch orchestration lived twice: :mod:`repro.core.batch`
hand-rolled the single-engine flow (phase-1 sharing, fork fan-out,
pool chunking) while :mod:`repro.serve.sharded` re-implemented the same
traverse → refine → shortlist → search flow as per-phase scatter loops.
Keeping the two in lockstep was manual work, and every asymmetry showed
up as a planner rejection (``Mode.INDEXED`` could not shard, could not
share pools across k, could not fan its search out).

This module makes the flow first-class.  A flush is an
:class:`ExecutionPipeline` — an ordered tuple of typed :class:`Stage`\\ s,
each with declared inputs/outputs over a :class:`FlushContext`
blackboard and per-phase time/I-O accounting (:class:`StageStats`).
Central stages run on the root engine; scatter stages obey a **pure
scatter contract**::

    split(ctx, shard)  ->  payload list          (pure, no mutation)
    run(dataset, payload[, context])             (the worker entry)
    merge(ctx, partials per shard)               (gather, writes outputs)

``run`` is :func:`execute_shard_payload` — the ONE worker entry point
shared by forked pool workers and the deterministic in-process
fallback, so both execution modes are the same code path.  Two
executors drive the pipeline:

* :class:`LocalExecutor` — one engine, one implicit shard (the full
  dataset); replaces the hand-rolled orchestration in
  ``batch.execute_batch``.  Phase 2 optionally fans out over a
  persistent pool or an ephemeral fork pool, exactly as before.
* :class:`ShardedExecutor` — N partitioned engines; replaces the
  per-phase fan-out loops in ``ShardedEngine``.  Refine/shortlist
  scatter once per shard per phase, the per-query searches fan out
  over the root search pool.

Pipelines by mode (both executors):

* ``joint``    — traverse → refine → shortlist+search (local fuses the
  last two per query: with one partition there is nothing to merge
  between them; sharded splits them so the merge barrier sits exactly
  where cross-shard data meets).
* ``baseline`` — per-user topk → select (local only; no mergeable
  group traversal).
* ``indexed``  — root-traverse → best-first search per query.  Since
  the node-RSk reformulation (:mod:`repro.core.indexed_users`) every
  per-k quantity derives pool-independently from one ``k_max`` walk,
  so indexed batches share a single traversal like joint batches do,
  and the searches fan out over the root search pool against
  read-only :meth:`~repro.storage.pager.PageStore.ledger_view` stores
  whose :class:`~repro.storage.pager.IOCharge` ledgers replay onto the
  engine's counter at gather time.

Result identity is the invariant throughout: results, I/O traces and
selection stats equal the single sequential engine's across
``{joint, indexed}`` × shards × partitioners × mixed-k × backends
(property-tested in ``tests/core/test_pipeline.py`` and
``tests/serve/test_sharded.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..storage.pager import IOCharge
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.pool import PersistentWorkerPool
    from .engine import MaxBRSTkNNEngine
    from .planner import QueryPlan

__all__ = [
    "ScatterFailure",
    "StageStats",
    "FlushReport",
    "FlushContext",
    "Stage",
    "TraverseStage",
    "RefineStage",
    "ShortlistStage",
    "SearchStage",
    "SelectStage",
    "IndexedSearchStage",
    "ExecutionPipeline",
    "build_pipeline",
    "LocalExecutor",
    "ShardedExecutor",
    "execute_shard_payload",
]


class ScatterFailure(RuntimeError):
    """A pooled scatter round failed to produce results.

    The pool-transport half of the scatter contract: raised (or
    subclassed — see :mod:`repro.serve.errors`) when a worker pool
    could not complete a round for *transport* reasons — a worker
    process died, the round outlived its deadline, the pool is closed
    or broken.  Executors catch exactly this type and re-run the same
    payloads in-process: ``execute_shard_payload`` is pure, so the
    degraded round is bitwise-identical, only slower.  Genuine task
    exceptions (bugs that would reproduce in-process) are re-raised to
    the caller once retries are exhausted, never swallowed.
    """


# ----------------------------------------------------------------------
# Per-phase accounting
# ----------------------------------------------------------------------

@dataclass(slots=True)
class StageStats:
    """Wall time, simulated I/O and scatter width of one stage run."""

    stage: str
    items: int = 0          # work items (queries, ks) the stage covered
    scatter_width: int = 1  # partitions/pools the stage fanned out to
    time_s: float = 0.0
    io_node_visits: int = 0
    io_invfile_blocks: int = 0
    retries: int = 0        # supervised pool rounds re-dispatched
    degraded: int = 0       # partitions that fell back to in-process
    #: Serialized bytes crossing the pool pipes this stage: dispatched
    #: payloads out, returned chunks in.  0 for in-process rounds (the
    #: payloads never leave the parent, there is nothing to serialize).
    payload_bytes_out: int = 0
    payload_bytes_in: int = 0

    def snapshot(self) -> dict:
        return {
            "stage": self.stage,
            "items": self.items,
            "scatter_width": self.scatter_width,
            "time_ms": round(1000 * self.time_s, 3),
            "io_node_visits": self.io_node_visits,
            "io_invfile_blocks": self.io_invfile_blocks,
            "retries": self.retries,
            "degraded": self.degraded,
            "payload_bytes_out": self.payload_bytes_out,
            "payload_bytes_in": self.payload_bytes_in,
        }


@dataclass(slots=True)
class FlushReport:
    """Per-stage accounting of one executed flush (introspection)."""

    mode: str
    batch_size: int
    stages: List[StageStats] = field(default_factory=list)

    def stage(self, name: str) -> Optional[StageStats]:
        for st in self.stages:
            if st.stage == name:
                return st
        return None

    @property
    def total_retries(self) -> int:
        """Pool rounds re-dispatched across every stage of this flush."""
        return sum(st.retries for st in self.stages)

    @property
    def degraded_partitions(self) -> int:
        """Partitions that fell back to in-process across all stages."""
        return sum(st.degraded for st in self.stages)

    @property
    def payload_bytes_out(self) -> int:
        """Serialized payload bytes dispatched to pools this flush."""
        return sum(st.payload_bytes_out for st in self.stages)

    @property
    def payload_bytes_in(self) -> int:
        """Serialized result bytes collected from pools this flush."""
        return sum(st.payload_bytes_in for st in self.stages)

    def snapshot(self) -> dict:
        return {
            "mode": self.mode,
            "batch_size": self.batch_size,
            "payload_bytes_out": self.payload_bytes_out,
            "payload_bytes_in": self.payload_bytes_in,
            "stages": [st.snapshot() for st in self.stages],
        }


class FlushContext(dict):
    """The pipeline blackboard: named slots stages read and write.

    A plain dict plus a checked getter so a mis-wired pipeline fails
    with the missing slot's name instead of a bare ``KeyError``.
    """

    def require(self, key: str):
        if key not in self:
            raise RuntimeError(
                f"pipeline slot {key!r} not produced by any upstream stage"
            )
        return self[key]


# ----------------------------------------------------------------------
# The worker entry point (pure scatter contract's `run`)
# ----------------------------------------------------------------------

def execute_shard_payload(dataset, payload: tuple, context=None):
    """Run one scatter work item against ``dataset``.

    The ONE implementation behind both execution modes: forked pool
    workers call it with their copy-on-write dataset (and ``context`` —
    the MIUR-tree for indexed search payloads), the in-process fallback
    passes both explicitly.  Payload kinds:

    * ``("refine", traversal, ks, backend, shard_id)`` — Algorithm 2
      for the shard's users at each k against the shared pool.
    * ``("shortlist", su, queries, rsk_by_k, group_by_k, backend,
      shard_id)`` — Algorithm 3's per-user shortlist test.
    * ``("search", items, rsk, rsk_group, method, backend)`` — the
      gather-side central best-first searches over merged shortlists
      (``dataset`` = the FULL dataset here).
    * ``("indexed_search", queries, views, traversal, rsk_group,
      users_total, topk_time_s, io_node_visits, io_invfile_blocks,
      method, backend)`` — per-query best-first MIUR searches, each
      against its own read-only
      :meth:`~repro.storage.pager.PageStore.ledger_view` (``views``
      aligns with ``queries``; a view is a tiny (store, charge) pair,
      so shipping them is free); returns ``(result, IOCharge)`` pairs
      so the gather replays the simulated I/O onto the shared counter.
    """
    from .partial import compute_partial, compute_shortlist_partial
    from .payload import decode_shard_payload

    # The ONE decode funnel: arena-encoded payloads (config.use_shm)
    # resolve their ArenaRefs / packed blocks here; plain pickle
    # payloads pass through untouched.  Pool workers, degraded
    # in-process re-runs and the sharded in-process path all land here,
    # so both transports execute identical inputs.
    payload = decode_shard_payload(payload)
    kind = payload[0]
    if kind == "refine":
        _, traversal, ks, backend, shard_id = payload
        return [
            compute_partial(dataset, traversal, k, backend=backend, shard_id=shard_id)
            for k in ks
        ]
    if kind == "shortlist":
        _, su, queries, rsk_by_k, group_by_k, backend, shard_id = payload
        return [
            compute_shortlist_partial(
                dataset, q, rsk_by_k[q.k], group_by_k[q.k], su,
                backend=backend, shard_id=shard_id,
            )
            for q in queries
        ]
    if kind == "search":
        from .partial import run_merged_search

        _, items, rsk, rsk_group, method, backend = payload
        out = []
        for query, kept, ids_per_location, pruned, stats, base_selection_s in items:
            result, _elapsed = run_merged_search(
                dataset, query, kept, ids_per_location, pruned, stats,
                base_selection_s, rsk, rsk_group, method, backend,
            )
            out.append(result)
        return out
    if kind == "indexed_search":
        from .indexed_users import indexed_search
        from .joint_topk import canonical_candidates

        (_, queries, views, traversal, rsk_group, users_total, topk_time_s,
         io_node_visits, io_invfile_blocks, method, backend) = payload
        if context is None:
            raise RuntimeError(
                "indexed_search payload needs the MIUR-tree as worker context"
            )
        # Chunks are grouped per k, so the canonical pool (and its
        # kernel arrays) is one derivation for the whole chunk — the
        # worker-side twin of the RootTraversal per-k memoization.
        canonical = canonical_candidates(traversal, rsk_group)
        pool_arrays = None
        if backend == "numpy":
            from .kernels import CandidatePoolArrays

            pool_arrays = CandidatePoolArrays(dataset, canonical)
        out = []
        for query, (store, charge) in zip(queries, views):
            stats = QueryStats(
                users_total=users_total,
                topk_time_s=topk_time_s,
                io_node_visits=io_node_visits,
                io_invfile_blocks=io_invfile_blocks,
            )
            result = indexed_search(
                context, dataset, query, traversal, rsk_group, stats,
                method=method, backend=backend, store=store,
                canonical=canonical, pool_arrays=pool_arrays,
            )
            out.append((result, charge))
        return out
    raise ValueError(f"unknown shard payload kind {kind!r}")


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------

class Stage:
    """One pipeline phase: declared inputs/outputs over the context.

    Central stages implement :meth:`run_central`; scatter stages
    implement the pure contract :meth:`split` / :func:`run`
    (= :func:`execute_shard_payload`) / :meth:`merge`.
    """

    name: str = "stage"
    scatter: bool = False
    #: Context slots this stage reads / writes (wiring is validated by
    #: the executor before the stage runs).
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    #: Intra-stage slots ``split`` hands to ``merge`` through the
    #: context; the executor drops them when the stage finishes, so
    #: they are never visible downstream.
    scratch: Tuple[str, ...] = ()
    #: Slots read with ``ctx.get(...)`` that may legitimately be
    #: absent (executor hints rather than pipeline products).
    optional: Tuple[str, ...] = ()

    def run_central(self, ctx: FlushContext) -> None:
        raise NotImplementedError

    def split(self, ctx: FlushContext, shard) -> List[tuple]:
        raise NotImplementedError

    #: The scatter contract's `run` — stages share the module-level
    #: worker entry so pooled and in-process execution cannot diverge.
    run = staticmethod(execute_shard_payload)

    def merge(self, ctx: FlushContext, partials_per_shard: List[list]) -> None:
        raise NotImplementedError


class TraverseStage(Stage):
    """Phase 1a (central): ensure the cross-k pool, derive group thresholds.

    Joint mode walks (or reuses) the engine's
    :class:`~repro.core.batch.SharedTraversalPool`; indexed mode the
    MIUR-root :class:`~repro.core.indexed_users.RootTraversal` pool.
    Either way ONE tree walk per pool generation serves every k in the
    batch — ``plan.shared_traversal_k`` names it.
    """

    name = "traverse"
    inputs = ("engine", "plan", "queries")
    outputs = ("pool_state", "group_by_k")

    def run_central(self, ctx: FlushContext) -> None:
        from .batch import _ensure_traversal_pool
        from .config import Mode
        from .indexed_users import ensure_root_pool

        engine = ctx.require("engine")
        plan = ctx.require("plan")
        assert plan.shared_traversal_k is not None
        if plan.mode is Mode.INDEXED:
            pool = ensure_root_pool(engine, plan.shared_traversal_k, plan.backend)
        else:
            pool = _ensure_traversal_pool(engine, plan.shared_traversal_k, plan.backend)
        pool.hits += len(ctx.require("queries"))
        ctx["pool_state"] = pool
        # Both pool kinds memoize the per-k derivation, so repeat
        # flushes pay a dict hit, not an O(pool log pool) sort.
        ctx["group_by_k"] = {
            k: pool.rsk_group_for(k) for k in plan.distinct_ks
        }


class RefineStage(Stage):
    """Phase 1b (scatter over user partitions): exact ``RSk(u)`` per k.

    ``split`` emits one refine payload per worker chunk of the missing
    ks; ``merge`` unions the disjoint per-shard maps back into the
    sequential-identical threshold map per k
    (:func:`repro.core.partial.merge_partials`).
    """

    name = "refine"
    scatter = True
    inputs = ("pool_state", "need_ks", "plan")
    outputs = ("merged_by_k",)

    def split(self, ctx: FlushContext, shard) -> List[tuple]:
        ks = ctx.require("need_ks")
        plan = ctx.require("plan")
        pool_state = ctx.require("pool_state")
        n_chunks = max(1, min(shard.workers, len(ks)))
        return [
            ("refine", pool_state.traversal, ks[c::n_chunks], plan.backend,
             shard.shard_id)
            for c in range(n_chunks)
        ]

    def merge(self, ctx: FlushContext, partials_per_shard: List[list]) -> None:
        from .partial import merge_partials

        ks = ctx.require("need_ks")
        by_k: Dict[int, list] = {k: [] for k in ks}
        for chunks in partials_per_shard:
            for partial in (p for chunk in chunks for p in chunk):
                by_k[partial.k].append(partial)
        merged = ctx.setdefault("merged_by_k", {})
        for k in ks:
            merged[k] = merge_partials(by_k[k])


class ShortlistStage(Stage):
    """Phase 2a (scatter over user partitions): per-user admission test.

    One round covers the whole batch; ``merge`` re-orders every
    location's shard shortlists into dataset user order — the exact
    sequential scan order — at the id level
    (:func:`repro.core.partial.merge_query_shortlist_ids`).
    """

    name = "shortlist"
    scatter = True
    inputs = (
        "queries", "merged_by_k", "group_by_k", "plan", "super_user",
        "pool_state", "user_pos",
    )
    outputs = ("merged_inputs",)

    def split(self, ctx: FlushContext, shard) -> List[tuple]:
        queries = ctx.require("queries")
        plan = ctx.require("plan")
        group_by_k = ctx.require("group_by_k")
        rsk_by_k = {k: shard.rsk_by_k[k] for k in group_by_k}
        n_chunks = max(1, min(shard.workers, len(queries)))
        return [
            ("shortlist", ctx.require("super_user"), queries[c::n_chunks],
             rsk_by_k, group_by_k, plan.backend, shard.shard_id)
            for c in range(n_chunks)
        ]

    def merge(self, ctx: FlushContext, partials_per_shard: List[list]) -> None:
        from .partial import merge_query_shortlist_ids

        queries = ctx.require("queries")
        merged_by_k = ctx.require("merged_by_k")
        pool_state = ctx.require("pool_state")
        user_pos = ctx.require("user_pos")
        # Restore per-query order inside each shard's chunked return.
        per_shard: List[List] = []
        for chunks in partials_per_shard:
            n_chunks = len(chunks)
            ordered = [None] * len(queries)
            for c, chunk in enumerate(chunks):
                for offset, partial in enumerate(chunk):
                    ordered[c + offset * n_chunks] = partial
            per_shard.append(ordered)
        merged_inputs = []
        for qi, q in enumerate(queries):
            merged = merged_by_k[q.k]
            stats = QueryStats(
                users_total=merged.users_total,
                topk_time_s=pool_state.topk_time_s + merged.time_s,
                io_node_visits=pool_state.io_node_visits,
                io_invfile_blocks=pool_state.io_invfile_blocks,
            )
            partials = [shard_partials[qi] for shard_partials in per_shard]
            kept, ids_per_location, pruned = merge_query_shortlist_ids(
                partials, user_pos
            )
            base_selection_s = sum(p.time_s for p in partials)
            merged_inputs.append(
                (q, kept, ids_per_location, pruned, stats, base_selection_s)
            )
        ctx["merged_inputs"] = merged_inputs


class SearchStage(Stage):
    """Phase 2b (scatter over queries): the central best-first searches.

    Each query's search consumes the merged, aggregate-complete inputs,
    so queries are independent — ``split`` chunks them per k (one rsk
    map pickled per chunk) over the root search pool.
    """

    name = "search"
    scatter = True
    inputs = ("merged_inputs", "merged_by_k", "group_by_k", "plan")
    outputs = ("results",)
    scratch = ("search_index_groups",)

    def split(self, ctx: FlushContext, shard) -> List[tuple]:
        plan = ctx.require("plan")
        merged_inputs = ctx.require("merged_inputs")
        merged_by_k = ctx.require("merged_by_k")
        group_by_k = ctx.require("group_by_k")
        by_k: Dict[int, List[int]] = {}
        for i, item in enumerate(merged_inputs):
            by_k.setdefault(item[0].k, []).append(i)
        payloads = []
        index_groups = []
        for k, indices in by_k.items():
            n_chunks = max(1, min(shard.workers, len(indices)))
            merged = merged_by_k[k]
            for c in range(n_chunks):
                chunk = indices[c::n_chunks]
                payloads.append(
                    ("search", [merged_inputs[i] for i in chunk], merged.rsk,
                     group_by_k[k], plan.method.value, plan.backend)
                )
                index_groups.append(chunk)
        ctx["search_index_groups"] = index_groups
        return payloads

    def merge(self, ctx: FlushContext, partials_per_shard: List[list]) -> None:
        merged_inputs = ctx.require("merged_inputs")
        (chunks,) = partials_per_shard  # one logical shard: the root
        index_groups = ctx.require("search_index_groups")
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(merged_inputs)
        for indices, group in zip(index_groups, chunks):
            for i, result in zip(indices, group):
                results[i] = result
        ctx["results"] = results


class SelectStage(Stage):
    """Local phase 2 (scatter over queries): fused shortlist + search.

    The single-partition specialization: with one user partition there
    is no cross-shard merge between the shortlist and the search, so
    the local executor runs Algorithm 3 whole per query
    (:func:`repro.core.batch._select_one`) — one pool round instead of
    two.  Result-identical to the split stages by construction
    (``select_candidate`` *is* ``shortlist_locations`` +
    ``search_shortlists``).
    """

    name = "select"
    scatter = True
    inputs = ("keyed", "shared_by_key", "plan")
    outputs = ("results",)
    scratch = ("select_index_groups",)

    def split(self, ctx: FlushContext, shard) -> List[tuple]:
        plan = ctx.require("plan")
        keyed = ctx.require("keyed")
        shared_by_key = ctx.require("shared_by_key")
        by_key: Dict[tuple, List[int]] = {}
        for i, (_, key) in enumerate(keyed):
            by_key.setdefault(key, []).append(i)
        payloads, index_groups = [], []
        for key, indices in by_key.items():
            n_chunks = max(1, min(shard.workers, len(indices)))
            for c in range(n_chunks):
                chunk = indices[c::n_chunks]
                payloads.append(
                    ([keyed[i][0] for i in chunk], shared_by_key[key],
                     plan.mode.value, plan.method.value, plan.backend)
                )
                index_groups.append(chunk)
        ctx["select_index_groups"] = index_groups
        return payloads

    def merge(self, ctx: FlushContext, partials_per_shard: List[list]) -> None:
        keyed = ctx.require("keyed")
        (chunks,) = partials_per_shard
        index_groups = ctx.require("select_index_groups")
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(keyed)
        for indices, group in zip(index_groups, chunks):
            for i, result in zip(indices, group):
                results[i] = result
        ctx["results"] = results


class IndexedSearchStage(Stage):
    """Indexed phase 2 (scatter over queries): best-first MIUR searches.

    Queries chunk per k (the traversal pool pickles once per chunk) and
    run against read-only ledger stores; ``merge`` replays every
    :class:`~repro.storage.pager.IOCharge` onto the engine's shared
    counter in query order, reproducing the sequential totals exactly.
    """

    name = "indexed-search"
    scatter = True
    inputs = ("queries", "pool_state", "group_by_k", "plan", "store",
              "users_total", "io_counter")
    outputs = ("results",)
    scratch = ("indexed_index_groups",)
    optional = ("use_ledgers",)

    def split(self, ctx: FlushContext, shard) -> List[tuple]:
        plan = ctx.require("plan")
        queries = ctx.require("queries")
        pool = ctx.require("pool_state")
        group_by_k = ctx.require("group_by_k")
        users_total = ctx.require("users_total")
        store = ctx.require("store")
        # Fan-out gets one read-only ledger view per query (the
        # executor sets the flag; in-process execution charges the real
        # store and never builds views — a warm LRU buffer forbids them).
        use_ledgers = bool(ctx.get("use_ledgers"))
        by_k: Dict[int, List[int]] = {}
        for i, q in enumerate(queries):
            by_k.setdefault(q.k, []).append(i)
        payloads, index_groups = [], []
        for k, indices in by_k.items():
            n_chunks = max(1, min(shard.workers, len(indices)))
            for c in range(n_chunks):
                chunk = indices[c::n_chunks]
                views = (
                    [store.ledger_view() for _ in chunk] if use_ledgers else None
                )
                payloads.append(
                    ("indexed_search", [queries[i] for i in chunk], views,
                     pool.traversal, group_by_k[k], users_total,
                     pool.topk_time_s, pool.io_node_visits,
                     pool.io_invfile_blocks, plan.method.value, plan.backend)
                )
                index_groups.append(chunk)
        ctx["indexed_index_groups"] = index_groups
        return payloads

    def merge(self, ctx: FlushContext, partials_per_shard: List[list]) -> None:
        queries = ctx.require("queries")
        io_counter = ctx.require("io_counter")
        (chunks,) = partials_per_shard
        index_groups = ctx.require("indexed_index_groups")
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(queries)
        charges: List[Optional[IOCharge]] = [None] * len(queries)
        for indices, group in zip(index_groups, chunks):
            for i, (result, charge) in zip(indices, group):
                results[i] = result
                charges[i] = charge
        # Replay ledgers in query order: addition commutes, so the
        # shared counter ends exactly where sequential execution would.
        for charge in charges:
            if charge is not None:
                charge.apply(io_counter)
        ctx["results"] = results


def run_indexed_chunk_inprocess(engine, pool_state, payload: tuple) -> list:
    """One indexed-search chunk against the engine's own page store.

    The in-process twin of the worker-side ``indexed_search`` payload
    path: charges go straight to the shared counter (no ledger to
    replay, so the charge slot is ``None``), and the per-k canonical
    pool / kernel arrays come memoized off the
    :class:`~repro.core.indexed_users.RootTraversal` instead of being
    rebuilt per chunk.  Decision-identical to the worker path — both
    call :func:`~repro.core.indexed_users.indexed_search` on the same
    derived inputs.
    """
    from .indexed_users import indexed_search
    from .payload import decode_shard_payload

    (_, queries, _views, traversal, rsk_group, users_total, topk_time_s,
     io_node_visits, io_invfile_blocks, method, backend) = (
        decode_shard_payload(payload)
    )
    out = []
    for query in queries:
        stats = QueryStats(
            users_total=users_total,
            topk_time_s=topk_time_s,
            io_node_visits=io_node_visits,
            io_invfile_blocks=io_invfile_blocks,
        )
        result = indexed_search(
            engine.user_tree, engine.dataset, query, traversal, rsk_group,
            stats, method=method, backend=backend, store=engine.store,
            canonical=pool_state.canonical_for(query.k),
            pool_arrays=(
                pool_state.pool_arrays_for(engine.dataset, query.k)
                if backend == "numpy" else None
            ),
        )
        out.append((result, None))
    return out


# ----------------------------------------------------------------------
# Pipelines
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExecutionPipeline:
    """An ordered, validated tuple of stages for one plan."""

    mode: str
    stages: Tuple[Stage, ...]

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)


def build_pipeline(plan: "QueryPlan", sharded: bool) -> ExecutionPipeline:
    """The stage list executing ``plan`` on the given executor kind."""
    from .config import Mode

    if plan.mode is Mode.INDEXED:
        stages: Tuple[Stage, ...] = (TraverseStage(), IndexedSearchStage())
    elif plan.mode is Mode.JOINT and sharded:
        stages = (TraverseStage(), RefineStage(), ShortlistStage(), SearchStage())
    elif plan.mode is Mode.JOINT:
        # Single partition: the refine phase is the central per-k
        # derivation (memoized on the pool), and shortlist+search fuse.
        stages = (TraverseStage(), DeriveThresholdsStage(), SelectStage())
    else:  # baseline: per-user top-k phase 1, fused per-query phase 2
        stages = (BaselineTopkStage(), SelectStage())
    return ExecutionPipeline(mode=plan.mode.value, stages=stages)


class BaselineTopkStage(Stage):
    """Baseline phase 1 (central): per-user top-k scans per distinct k."""

    name = "baseline-topk"
    inputs = ("engine", "plan", "queries")
    outputs = ("keyed", "shared_by_key")

    def run_central(self, ctx: FlushContext) -> None:
        from .batch import _compute_shared_baseline

        engine = ctx.require("engine")
        plan = ctx.require("plan")
        queries = ctx.require("queries")
        cache = engine._shared_topk_cache
        keyed, shared_by_key = [], {}
        for q in queries:
            key = (plan.mode.value, q.k)
            if key not in cache:
                cache[key] = _compute_shared_baseline(engine, q.k)
            entry = cache[key]
            entry.hits += 1
            shared_by_key[key] = entry
            keyed.append((q, key))
        ctx["keyed"] = keyed
        ctx["shared_by_key"] = shared_by_key


class DeriveThresholdsStage(Stage):
    """Local joint phase 1b (central): per-k thresholds off the pool.

    The single-partition refine: Algorithm 2 over the full user set,
    memoized per k on the engine's pool (``pool.by_k``) — value- and
    hit-count-compatible with the pre-pipeline batch path.
    """

    name = "refine"
    inputs = ("engine", "plan", "queries", "pool_state")
    outputs = ("keyed", "shared_by_key")

    def run_central(self, ctx: FlushContext) -> None:
        from .batch import _derive_shared_topk

        engine = ctx.require("engine")
        plan = ctx.require("plan")
        queries = ctx.require("queries")
        pool = ctx.require("pool_state")
        keyed, shared_by_key = [], {}
        for q in queries:
            key = (plan.mode.value, q.k)
            entry = _derive_shared_topk(engine, pool, q.k, plan.backend)
            entry.hits += 1
            shared_by_key[key] = entry
            keyed.append((q, key))
        ctx["keyed"] = keyed
        ctx["shared_by_key"] = shared_by_key


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

def _encode_payloads(codec, stage_name: str, payloads: list) -> list:
    """Route payloads through the arena codec before a pool dispatch.

    No-op without a codec (``use_shm`` off / arena unavailable) — the
    payloads cross the pipe as plain pickles, the PR-3 path.
    """
    if codec is None:
        return payloads
    from .payload import encode_select_payload, encode_shard_payload

    encode = (
        encode_select_payload if stage_name == "select" else encode_shard_payload
    )
    return [encode(codec, p) for p in payloads]


def _payloads_nbytes(payloads) -> int:
    """Serialized size of a pool round's payloads (or returned chunks).

    Measured as pickle bytes — exactly what the pipe carries — on both
    transports, so the codec's win shows up as a smaller number, not a
    different metric.
    """
    from .payload import payload_nbytes

    return sum(payload_nbytes(p) for p in payloads)


def _decode_gather(chunks: list) -> list:
    """The ONE gather decode funnel for collected pool rounds: inverse
    of the worker-side :func:`repro.core.payload.encode_gather_payload`
    (identity on chunks that were never encoded)."""
    from .payload import decode_gather_payload

    return [decode_gather_payload(c) for c in chunks]


@dataclass(slots=True)
class ShardHandle:
    """What an executor needs to scatter to one partition."""

    shard_id: int
    dataset: object
    workers: int = 1                 # worker chunks to split into
    pool: object = None              # PersistentWorkerPool or None
    rsk_by_k: Dict[int, Dict[int, float]] = field(default_factory=dict)
    context: object = None           # extra worker context (MIUR-tree)
    stats: object = None             # ShardRuntimeStats or None


class _ExecutorBase:
    """Shared drive loop: wiring validation + per-stage accounting."""

    def _drive(self, pipeline: ExecutionPipeline, ctx: FlushContext) -> List[MaxBRSTkNNResult]:
        report = FlushReport(mode=pipeline.mode, batch_size=len(ctx["queries"]))
        io = ctx.get("io_counter")
        for stage in pipeline.stages:
            for slot in stage.inputs:
                if slot not in ctx:
                    raise RuntimeError(
                        f"stage {stage.name!r} needs slot {slot!r} which no "
                        f"upstream stage produced (pipeline "
                        f"{pipeline.stage_names()})"
                    )
            before = io.snapshot() if io is not None else None
            t0 = time.perf_counter()
            if stage.scatter:
                (width, items, retries, degraded,
                 bytes_out, bytes_in) = self._run_scatter(stage, ctx)
            else:
                stage.run_central(ctx)
                width, items, retries, degraded = 1, len(ctx["queries"]), 0, 0
                bytes_out = bytes_in = 0
            stats = StageStats(
                stage=stage.name,
                items=items,
                scatter_width=width,
                time_s=time.perf_counter() - t0,
                retries=retries,
                degraded=degraded,
                payload_bytes_out=bytes_out,
                payload_bytes_in=bytes_in,
            )
            if io is not None:
                delta = io.snapshot() - before
                stats.io_node_visits = delta.node_visits
                stats.io_invfile_blocks = delta.invfile_blocks
            report.stages.append(stats)
            for slot in stage.outputs:
                if slot not in ctx:
                    raise RuntimeError(
                        f"stage {stage.name!r} declared output {slot!r} but "
                        "did not produce it"
                    )
            # Scratch slots are split->merge plumbing, not products:
            # drop them so downstream stages can only see declared
            # outputs (keeps the declared contract enforceable).
            for slot in stage.scratch:
                ctx.pop(slot, None)
        self.last_flush_report = report
        return ctx.require("results")

    def _run_scatter(
        self, stage: Stage, ctx: FlushContext
    ) -> Tuple[int, int, int, int, int, int]:
        """Run one scatter stage: ``(width, items, retries, degraded,
        payload_bytes_out, payload_bytes_in)``."""
        raise NotImplementedError


class LocalExecutor(_ExecutorBase):
    """Drives the pipeline on one engine (the single implicit shard).

    Scatter stages see one :class:`ShardHandle` over the full dataset.
    Query-axis stages (``select``) fan out over the injected persistent
    pool when present, else over an ephemeral fork pool when the plan
    asked for workers, else run in-process; user-axis stages always run
    in-process (there is exactly one partition).
    """

    def __init__(self, engine: "MaxBRSTkNNEngine",
                 pool: Optional["PersistentWorkerPool"] = None) -> None:
        self.engine = engine
        self.pool = pool
        self.last_flush_report: Optional[FlushReport] = None

    def execute(self, queries: Sequence[MaxBRSTkNNQuery], plan: "QueryPlan") -> List[MaxBRSTkNNResult]:
        from .kernels import arrays_for

        engine = self.engine
        ctx = FlushContext(
            engine=engine,
            plan=plan,
            queries=list(queries),
            io_counter=engine.io,
            store=engine.store,
            users_total=len(engine.user_tree) if engine.user_tree is not None else 0,
        )
        if plan.backend == "numpy":
            arrays_for(engine.dataset)  # build before forking: shared via COW
        pipeline = build_pipeline(plan, sharded=False)
        return self._drive(pipeline, ctx)

    # -- scatter routing -----------------------------------------------
    def _run_scatter(
        self, stage: Stage, ctx: FlushContext
    ) -> Tuple[int, int, int, int, int, int]:
        import multiprocessing

        plan = ctx.require("plan")
        queries = ctx.require("queries")
        if stage.name == "indexed-search":
            # Planned in-process on a single engine (the best-first
            # search reads the engine's own page store; per-k pools are
            # memoized on the RootTraversal across flushes).
            pool_state = ctx.require("pool_state")
            payloads = stage.split(
                ctx, ShardHandle(shard_id=0, dataset=self.engine.dataset)
            )
            chunks = [
                run_indexed_chunk_inprocess(self.engine, pool_state, payload)
                for payload in payloads
            ]
            stage.merge(ctx, [chunks])
            return 1, len(queries), 0, 0, 0, 0

        want_pool = (
            stage.name == "select" and self.pool is not None
            and len(queries) > 1 and not plan.select_inprocess
        )
        # A closed/broken pool degrades the round to in-process rather
        # than failing the flush; the split/merge layout is unchanged,
        # so the answer is bitwise-identical (only slower).
        pooled = want_pool and self.pool.available
        degraded = 1 if (want_pool and not pooled) else 0
        forked = (
            not pooled and plan.workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        workers = (
            self.pool.workers if pooled
            else plan.workers if forked
            else 1
        )
        shard = ShardHandle(
            shard_id=0,
            dataset=self.engine.dataset,
            workers=workers,
            pool=self.pool if pooled else None,
            context=self.engine.user_tree,
        )
        payloads = stage.split(ctx, shard)
        retries = 0
        bytes_out = bytes_in = 0
        chunks = None
        if pooled:
            payloads = _encode_payloads(
                getattr(self.engine, "payload_codec", None), stage.name, payloads
            )
            bytes_out = _payloads_nbytes(payloads)
            retries_before = self.pool.health.retries
            try:
                chunks = self.pool.run_selection(payloads)
            except ScatterFailure:
                # Pool transport failed past its retry budget: same
                # payloads, in-process — identity preserved (the decode
                # funnel resolves arena refs in the parent too).
                degraded = 1
            else:
                bytes_in = _payloads_nbytes(chunks)
                chunks = _decode_gather(chunks)
            retries = self.pool.health.retries - retries_before
        if chunks is None:
            if forked:
                chunks = self._fork_round(payloads, plan.workers)
            else:
                from .batch import _select_chunk

                chunks = [_select_chunk(shard.dataset, p) for p in payloads]
        stage.merge(ctx, [chunks])
        return workers, len(queries), retries, degraded, bytes_out, bytes_in

    def _fork_round(self, payloads: List[tuple], workers: int):
        """Ephemeral fork pool for one select round (plan.workers > 1).

        Workers inherit the dataset through copy-on-write at fork time;
        only chunk indices cross the pipe — the PR 3 COW discipline,
        applied per round.
        """
        from .batch import _fork_execute

        return _fork_execute(self.engine.dataset, payloads, workers)


class ShardedExecutor(_ExecutorBase):
    """Drives the pipeline over a :class:`~repro.serve.sharded.ShardedEngine`.

    User-axis stages scatter once per engaged shard (pool-backed shards
    via ``map_async`` — all dispatches before any collect, so shard
    pools run concurrently); query-axis stages scatter over the root
    search pool.  Refine results memoize on the engine across flushes.
    """

    def __init__(self, sharded) -> None:
        self.sharded = sharded
        self.last_flush_report: Optional[FlushReport] = None

    def execute(self, queries: Sequence[MaxBRSTkNNQuery], plan: "QueryPlan") -> List[MaxBRSTkNNResult]:
        from .config import Mode

        sharded = self.sharded
        root = sharded.root
        ctx = FlushContext(
            engine=root,
            plan=plan,
            queries=list(queries),
            io_counter=root.io,
            super_user=sharded._su,
            user_pos=sharded._user_pos,
            merged_by_k=sharded._merged_by_k,
            store=root.store,
            users_total=len(root.user_tree) if root.user_tree is not None else 0,
        )
        if plan.mode is Mode.JOINT:
            ctx["need_ks"] = [
                k for k in plan.distinct_ks if k not in sharded._merged_by_k
            ]
        pipeline = build_pipeline(plan, sharded=True)
        return self._drive(pipeline, ctx)

    # -- scatter routing -----------------------------------------------
    def _run_scatter(
        self, stage: Stage, ctx: FlushContext
    ) -> Tuple[int, int, int, int, int, int]:
        if stage.name in ("search", "indexed-search"):
            return self._scatter_queries(stage, ctx)
        return self._scatter_users(stage, ctx)

    def _scatter_users(
        self, stage: Stage, ctx: FlushContext
    ) -> Tuple[int, int, int, int, int, int]:
        sharded = self.sharded
        queries = ctx.require("queries")
        plan = ctx.require("plan")
        if stage.name == "refine" and not ctx.require("need_ks"):
            # every k already merged (memoized across flushes)
            return 0, 0, 0, 0, 0, 0
        # Observed planner decision: at trivial queue depth the shard
        # pools are pure dispatch overhead — run the same payloads
        # in-process (split/merge and partition layout unchanged).
        inprocess = plan.shard is not None and plan.shard.scatter_inprocess
        degraded = 0
        handles = []
        for shard in sharded._shards:
            if shard.users == 0:
                continue
            pool = None if inprocess else shard.pool
            if pool is not None and not pool.available:
                # Closed/broken pool: this shard's round runs in-process
                # (identical payloads, identical answer) — degradation,
                # not planner choice, so it is counted.
                pool = None
                degraded += 1
                shard.stats.degraded_rounds += 1
            handles.append(
                ShardHandle(
                    shard_id=shard.shard_id,
                    dataset=shard.engine.dataset,
                    workers=pool.workers if pool is not None else 1,
                    pool=pool,
                    rsk_by_k=shard.rsk_by_k,
                    stats=shard.stats,
                )
            )
        items = (
            len(ctx["need_ks"]) if stage.name == "refine" else len(queries)
        )
        for handle in handles:
            handle.stats.queue_depth_peak = max(
                handle.stats.queue_depth_peak, items
            )
            handle.stats.scatter_flushes += 1
        # Dispatch everything before collecting anything: shard pools
        # run concurrently even with one worker each.  A dispatch that
        # fails outright is recovered in the supervised collect below.
        plans = [stage.split(ctx, handle) for handle in handles]
        codec = getattr(sharded.root, "payload_codec", None)
        bytes_out = bytes_in = 0
        for i, handle in enumerate(handles):
            if handle.pool is None:
                continue
            plans[i] = _encode_payloads(codec, stage.name, plans[i])
            bytes_out += _payloads_nbytes(plans[i])
        dispatches: List[Optional[object]] = [None] * len(handles)
        for i, handle in enumerate(handles):
            if handle.pool is None:
                continue
            try:
                dispatches[i] = handle.pool.dispatch(plans[i])
            except ScatterFailure:
                dispatches[i] = None  # run_supervised re-dispatches
        returned: List[Optional[list]] = [None] * len(handles)
        retries = 0
        for i, handle in enumerate(handles):
            if handle.pool is None:
                returned[i] = [
                    execute_shard_payload(handle.dataset, payload)
                    for payload in plans[i]
                ]
                continue
            retries_before = handle.pool.health.retries
            try:
                returned[i] = handle.pool.run_supervised(
                    plans[i], dispatch=dispatches[i]
                )
            except ScatterFailure:
                # Supervision exhausted (respawn failed, repeat
                # deadline, pool broken): re-scatter this shard's round
                # in-process — execute_shard_payload is pure (and the
                # decode funnel resolves arena refs in the parent), so
                # the merged answer is unchanged.
                returned[i] = [
                    execute_shard_payload(handle.dataset, payload)
                    for payload in plans[i]
                ]
                degraded += 1
                handle.stats.degraded_rounds += 1
            else:
                bytes_in += _payloads_nbytes(returned[i])
                returned[i] = _decode_gather(returned[i])
            delta = handle.pool.health.retries - retries_before
            retries += delta
            handle.stats.retries += delta
        self._account(stage, handles, returned, items)
        t_merge = time.perf_counter()
        stage.merge(ctx, returned)
        if stage.name == "shortlist":
            sharded._merge_s += time.perf_counter() - t_merge
        if stage.name == "refine":
            for handle, chunks in zip(handles, returned):
                for partial in (p for chunk in chunks for p in chunk):
                    handle.rsk_by_k[partial.k] = partial.rsk
        return len(handles), items, retries, degraded, bytes_out, bytes_in

    def _account(self, stage, handles, returned, items) -> None:
        for handle, chunks in zip(handles, returned):
            flat = [p for chunk in chunks for p in chunk]
            if stage.name == "refine":
                handle.stats.refine_tasks += items
                handle.stats.refine_time_s += sum(p.time_s for p in flat)
            else:
                handle.stats.queries += items
                handle.stats.shortlist_time_s += sum(p.time_s for p in flat)

    def _scatter_queries(
        self, stage: Stage, ctx: FlushContext
    ) -> Tuple[int, int, int, int, int, int]:
        sharded = self.sharded
        queries = ctx.require("queries")
        plan = ctx.require("plan")
        pool = sharded._search_pool
        root = sharded.root
        # Fan out only when it can pay off AND I/O stays replayable:
        # the indexed search reads MIUR pages, so a warm LRU buffer
        # (global access order) forces the in-process path.  The
        # observed planner can also pull the searches in-process when
        # measured per-query cost is under the dispatch bar.
        want_pool = (
            pool is not None and len(queries) > 1
            and (stage.name != "indexed-search" or root.store.buffer is None)
            and not (plan.shard is not None and plan.shard.search_inprocess)
        )
        use_pool = want_pool and pool.available
        degraded = 1 if (want_pool and not use_pool) else 0
        ctx["use_ledgers"] = use_pool and stage.name == "indexed-search"
        handle = ShardHandle(
            shard_id=-1,
            dataset=sharded.dataset,
            workers=(pool.workers if use_pool else 1),
            pool=pool if use_pool else None,
            context=root.user_tree,
        )
        payloads = stage.split(ctx, handle)
        t0 = time.perf_counter()
        retries = 0
        bytes_out = bytes_in = 0
        chunks = None
        if use_pool:
            payloads = _encode_payloads(
                getattr(sharded.root, "payload_codec", None),
                stage.name, payloads,
            )
            bytes_out = _payloads_nbytes(payloads)
            sharded._search_flushes += 1
            retries_before = pool.health.retries
            try:
                chunks = pool.run_supervised(payloads)
            except ScatterFailure:
                # Search pool lost past its retry budget: re-run the
                # same payloads in the parent.  With ledger views the
                # payloads already carry read-only stores whose
                # IOCharges replay at merge time, so the degraded round
                # charges identically.
                degraded = 1
            else:
                bytes_in = _payloads_nbytes(chunks)
                chunks = _decode_gather(chunks)
            retries = pool.health.retries - retries_before
        if chunks is None:
            if stage.name == "indexed-search" and not ctx["use_ledgers"]:
                # In-process: charge the engine's real store directly
                # (ledger-free), including under a warm buffer.
                chunks = [
                    run_indexed_chunk_inprocess(
                        root, ctx.require("pool_state"), payload
                    )
                    for payload in payloads
                ]
            else:
                chunks = [
                    execute_shard_payload(
                        handle.dataset, payload, context=root.user_tree
                    )
                    for payload in payloads
                ]
        sharded._search_s += time.perf_counter() - t0
        stage.merge(ctx, [chunks])
        return handle.workers, len(queries), retries, degraded, bytes_out, bytes_in
