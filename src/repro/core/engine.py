"""High-level facade: build indexes once, answer queries many times.

``MaxBRSTkNNEngine`` wires together everything the paper's pipeline
needs — the MIR-tree over objects, optionally an MIUR-tree over users,
the simulated page store, the joint top-k, and the candidate selection
— behind a small API:

>>> engine = MaxBRSTkNNEngine(dataset)
>>> result = engine.query(q, method="approx")
>>> result.cardinality, sorted(result.keywords)

Modes
-----
* ``mode="joint"`` (default): users in memory, joint top-k (Section 5)
  then Algorithm 3 candidate selection.
* ``mode="baseline"``: Section 4's per-user top-k + exhaustive scan.
* ``mode="indexed"``: users on disk under the MIUR-tree (Section 7).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..index.irtree import IRTree, MIRTree
from ..index.miurtree import MIURTree
from ..model.dataset import Dataset
from ..spatial.rtree import DEFAULT_FANOUT
from ..storage.iostats import IOCounter
from ..storage.pager import LRUBuffer, PageStore
from ..topk.single import TopKResult, topk_all_users_individually
from .baseline import baseline_maxbrstknn
from .batch import SharedTopK, query_batch
from .candidate_selection import select_candidate
from .indexed_users import indexed_users_maxbrstknn
from .joint_topk import individual_topk, joint_traversal
from .kernels import resolve_backend
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = ["MaxBRSTkNNEngine"]


class MaxBRSTkNNEngine:
    """Index container + query dispatcher for MaxBRSTkNN queries.

    Parameters
    ----------
    dataset:
        The bichromatic dataset (objects, users, relevance, alpha).
    fanout:
        R-tree fanout for all trees.
    index_users:
        Also build the MIUR-tree so ``mode="indexed"`` is available.
    buffer_pages:
        LRU buffer capacity in pages; 0 = cold queries (paper setting).
    """

    def __init__(
        self,
        dataset: Dataset,
        fanout: int = DEFAULT_FANOUT,
        index_users: bool = False,
        buffer_pages: int = 0,
    ) -> None:
        self.dataset = dataset
        self.io = IOCounter()
        buffer = LRUBuffer(buffer_pages) if buffer_pages > 0 else None
        self.store = PageStore(counter=self.io, buffer=buffer)
        self.object_tree = MIRTree(dataset.objects, dataset.relevance, fanout=fanout)
        self.user_tree: Optional[MIURTree] = None
        if index_users:
            if not dataset.users:
                raise ValueError("cannot index an empty user set")
            self.user_tree = MIURTree(dataset.users, dataset.relevance, fanout=fanout)
        #: Per-dataset score cache: (mode, k) -> shared top-k phase state,
        #: filled and reused by :meth:`query_batch`.
        self._shared_topk_cache: Dict[Tuple[str, int], SharedTopK] = {}

    # ------------------------------------------------------------------
    # Top-k entry points (benchmarked separately: Figures 5a/5b etc.)
    # ------------------------------------------------------------------
    def topk_joint(self, k: int) -> Dict[int, TopKResult]:
        """Joint top-k (Algorithms 1+2) for every user."""
        traversal = joint_traversal(self.object_tree, self.dataset, k, store=self.store)
        return individual_topk(traversal, self.dataset, k)

    def topk_baseline(self, k: int) -> Dict[int, TopKResult]:
        """Per-user top-k over the same tree (baseline B)."""
        return topk_all_users_individually(
            self.object_tree, self.dataset, k, store=self.store
        )

    # ------------------------------------------------------------------
    # Full query
    # ------------------------------------------------------------------
    def query(
        self,
        query: MaxBRSTkNNQuery,
        method: str = "approx",
        mode: str = "joint",
        backend: str = "python",
    ) -> MaxBRSTkNNResult:
        """Answer one MaxBRSTkNN query.

        ``method`` picks the keyword selector ("approx" / "exact");
        ``mode`` picks the pipeline ("joint" / "baseline" / "indexed");
        ``backend`` picks the scoring kernels ("python" scalar
        reference, "numpy" vectorized, "auto") — results are identical
        across backends (``mode="baseline"`` is the scalar oracle and
        ignores the choice).
        """
        backend = resolve_backend(backend)
        if mode == "baseline":
            return baseline_maxbrstknn(
                self.object_tree, self.dataset, query, store=self.store
            )
        if mode == "indexed":
            if self.user_tree is None:
                raise ValueError("engine built without index_users=True")
            return indexed_users_maxbrstknn(
                self.object_tree,
                self.user_tree,
                self.dataset,
                query,
                method=method,
                store=self.store,
                backend=backend,
            )
        if mode != "joint":
            raise ValueError(f"unknown mode {mode!r}")

        # Deliberately cold (no _shared_topk_cache): single-query cost
        # and I/O accounting must match the paper's per-query setting
        # (Figure 15 measures it).  batch._compute_shared mirrors this
        # block — keep the stats accounting in sync when editing.
        stats = QueryStats(users_total=len(self.dataset.users))
        before = self.io.snapshot()
        t0 = time.perf_counter()
        traversal = joint_traversal(
            self.object_tree, self.dataset, query.k, store=self.store
        )
        per_user = individual_topk(traversal, self.dataset, query.k, backend=backend)
        stats.topk_time_s = time.perf_counter() - t0
        delta = self.io.snapshot() - before
        stats.io_node_visits = delta.node_visits
        stats.io_invfile_blocks = delta.invfile_blocks

        rsk = {uid: res.kth_score for uid, res in per_user.items()}
        t1 = time.perf_counter()
        result = select_candidate(
            self.dataset,
            query,
            rsk,
            rsk_group=traversal.rsk_group,
            method=method,
            stats=stats,
            backend=backend,
        )
        stats.selection_time_s = time.perf_counter() - t1
        result.stats = stats
        return result

    def query_batch(
        self,
        queries: Sequence[MaxBRSTkNNQuery],
        method: str = "approx",
        mode: str = "joint",
        backend: Optional[str] = None,
        workers: int = 1,
    ) -> List[MaxBRSTkNNResult]:
        """Answer a batch of queries, sharing the top-k phase per k.

        See :func:`repro.core.batch.query_batch`; the shared phase is
        memoized on the engine, so consecutive batches with the same k
        skip it entirely (:meth:`clear_topk_cache` drops it).
        """
        return query_batch(
            self, queries, method=method, mode=mode, backend=backend,
            workers=workers,
        )

    def clear_topk_cache(self) -> None:
        """Drop the shared top-k phase cache used by ``query_batch``."""
        self._shared_topk_cache.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def reset_io(self) -> None:
        self.io.reset()
        if self.store.buffer is not None:
            self.store.buffer.clear()
