"""High-level facade: build indexes once, answer queries many times.

``MaxBRSTkNNEngine`` wires together everything the paper's pipeline
needs — the MIR-tree over objects, optionally an MIUR-tree over users,
the simulated page store, the joint top-k, and the candidate selection
— behind the layered typed API:

>>> engine = MaxBRSTkNNEngine(dataset, EngineConfig(index_users=True))
>>> result = engine.query(q, options=QueryOptions(method=Method.EXACT))
>>> result.cardinality, sorted(result.keywords)

The three layers (see also ``repro/serve`` for the one above):

* :class:`~repro.core.config.QueryOptions` / ``EngineConfig`` — typed,
  validated configuration (strings coerce; legacy kwargs map through a
  deprecation shim);
* :mod:`repro.core.planner` — resolves options against the engine's
  capabilities into an executable :class:`QueryPlan`;
* execution — this facade plus :mod:`repro.core.batch`.

Modes
-----
* ``Mode.JOINT`` (default): users in memory, joint top-k (Section 5)
  then Algorithm 3 candidate selection.
* ``Mode.BASELINE``: Section 4's per-user top-k + exhaustive scan.
* ``Mode.INDEXED``: users on disk under the MIUR-tree (Section 7).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..index.irtree import MIRTree
from ..index.miurtree import MIURTree
from ..model.dataset import Dataset
from ..storage.iostats import IOCounter
from ..storage.pager import LRUBuffer, PageStore
from ..topk.single import TopKResult, topk_all_users_individually
from .baseline import baseline_maxbrstknn
from .batch import query_batch
from .candidate_selection import select_candidate
from .config import EngineConfig, Mode, QueryOptions, coerce_options
from .history import FlushHistory
from .indexed_users import indexed_users_maxbrstknn
from .joint_topk import individual_topk, joint_traversal
from .planner import EngineCapabilities, QueryPlan, plan_batch, plan_query
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = ["MaxBRSTkNNEngine"]


class MaxBRSTkNNEngine:
    """Index container + query dispatcher for MaxBRSTkNN queries.

    Parameters
    ----------
    dataset:
        The bichromatic dataset (objects, users, relevance, alpha).
    config:
        Typed build configuration (:class:`EngineConfig`).  The legacy
        ``fanout`` / ``index_users`` / ``buffer_pages`` kwargs still
        work and map onto an :class:`EngineConfig`; passing both is an
        error.
    object_tree:
        Optional pre-built MIR-tree over the *same* object set to share
        instead of building one (the sharded serving layer reuses the
        root engine's tree across all shard engines).
    """

    #: Serving-layer contract (shared with ShardedEngine, which sets
    #: True): whether the engine owns its worker pools — the server
    #: wraps pool-less engines in a PersistentWorkerPool and leaves
    #: pool-owning engines to size their own via start_pools().
    manages_own_pools = False

    def __init__(
        self,
        dataset: Dataset,
        config: Optional[EngineConfig] = None,
        *,
        fanout: Optional[int] = None,
        index_users: Optional[bool] = None,
        buffer_pages: Optional[int] = None,
        object_tree: Optional[MIRTree] = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("fanout", fanout),
                ("index_users", index_users),
                ("buffer_pages", buffer_pages),
            )
            if value is not None
        }
        if isinstance(config, int):
            # Legacy positional fanout: MaxBRSTkNNEngine(ds, 8).
            if "fanout" in legacy:
                raise TypeError("MaxBRSTkNNEngine() got two values for 'fanout'")
            legacy["fanout"] = config
            config = None
        if config is not None and not isinstance(config, EngineConfig):
            raise TypeError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        if config is not None and legacy:
            raise TypeError(
                "pass either config=EngineConfig(...) or legacy kwargs, "
                f"not both (got {sorted(legacy)})"
            )
        if config is None:
            config = EngineConfig(**legacy)
        if config.num_shards != 1:
            raise ValueError(
                "MaxBRSTkNNEngine executes one partition; for "
                f"num_shards={config.num_shards} build a "
                "repro.serve.sharded.ShardedEngine (or make_engine(dataset, config))"
            )
        self.config = config
        self.dataset = dataset
        self.io = IOCounter()
        buffer = LRUBuffer(config.buffer_pages) if config.buffer_pages > 0 else None
        self.store = PageStore(counter=self.io, buffer=buffer)
        if object_tree is not None:
            # Share an existing (immutable at query time) MIR-tree built
            # over the same object set — the sharded serving layer hands
            # every shard engine the root engine's tree instead of
            # paying N identical builds.  I/O still charges to *this*
            # engine's store (read_node takes the store per call).
            if object_tree._objects.keys() != {o.item_id for o in dataset.objects}:
                raise ValueError(
                    "shared object_tree was built over a different object set "
                    "(object ids do not match this dataset)"
                )
            if object_tree.relevance is not dataset.relevance:
                raise ValueError(
                    "shared object_tree was built with a different relevance "
                    "model; its baked-in term weights would disagree with "
                    "this dataset's scoring"
                )
            if object_tree.fanout != config.fanout:
                raise ValueError(
                    f"shared object_tree fanout {object_tree.fanout} != "
                    f"config fanout {config.fanout}"
                )
            self.object_tree = object_tree
        else:
            self.object_tree = MIRTree(
                dataset.objects, dataset.relevance, fanout=config.fanout
            )
        self.user_tree: Optional[MIURTree] = None
        if config.index_users:
            if not dataset.users:
                raise ValueError("cannot index an empty user set")
            self.user_tree = MIURTree(
                dataset.users, dataset.relevance, fanout=config.fanout
            )
        #: Per-dataset baseline phase-1 cache: ("baseline", k) -> shared
        #: per-user top-k state, filled and reused by :meth:`query_batch`.
        self._shared_topk_cache: Dict[Tuple[str, int], object] = {}
        #: Cross-k candidate-pool cache for joint batches: one tree
        #: walk at the largest k seen serves every smaller k (see
        #: :class:`repro.core.batch.SharedTraversalPool`).
        self._traversal_pool = None
        #: Cross-k MIUR-root pool for indexed batches — the indexed
        #: twin of ``_traversal_pool`` (see
        #: :class:`repro.core.indexed_users.RootTraversal`): one walk
        #: at the largest k seen serves every smaller k, since node-RSk
        #: pruning derives pool-independently.
        self._root_pool = None
        #: Joint/MIUR-root tree walks this engine has executed (single
        #: queries and batch shared phases alike) — the batch benchmarks
        #: assert a mixed-k batch pays exactly one.
        self.traversal_runs = 0
        #: Per-stage accounting of the most recent pipeline flush
        #: (:class:`repro.core.pipeline.FlushReport`), introspection.
        self.last_flush_report = None
        #: Ring buffers of executed-flush accounting per (mode, backend,
        #: scatter-width) signature — the planner's observed-cost model
        #: reads it per flush (:mod:`repro.core.history`).  Survives
        #: :meth:`clear_topk_cache`: it holds timings, never answers.
        self.flush_history = FlushHistory()
        #: Zero-copy storage tier (``config.use_shm``): the owned
        #: :class:`~repro.storage.shm.ShmArena` holding this engine's
        #: dense columns, and the :class:`~repro.core.payload.PayloadCodec`
        #: that ships scatter payloads through it.  Both stay ``None``
        #: until :meth:`ensure_arena` (pool startup / prewarm) runs.
        self._arena = None
        self._payload_codec = None

    # ------------------------------------------------------------------
    # Planning / introspection
    # ------------------------------------------------------------------
    def capabilities(self) -> EngineCapabilities:
        """What this engine can execute (feeds the planner)."""
        return EngineCapabilities.of(self)

    def plan(
        self,
        options: Optional[QueryOptions] = None,
        ks: Sequence[int] = (),
    ) -> QueryPlan:
        """Resolve ``options`` against this engine without executing.

        ``ks`` are the ``k`` values of a prospective batch; empty means
        a single query.  ``plan(...).explain()`` describes the decision.
        """
        options = options if options is not None else QueryOptions.default()
        caps = self.capabilities()
        if ks:
            return plan_batch(options, caps, list(ks), history=self.flush_history)
        return plan_query(options, caps, history=self.flush_history)

    # ------------------------------------------------------------------
    # Top-k entry points (benchmarked separately: Figures 5a/5b etc.)
    # ------------------------------------------------------------------
    def topk_joint(self, k: int) -> Dict[int, TopKResult]:
        """Joint top-k (Algorithms 1+2) for every user."""
        traversal = joint_traversal(self.object_tree, self.dataset, k, store=self.store)
        return individual_topk(traversal, self.dataset, k)

    def topk_baseline(self, k: int) -> Dict[int, TopKResult]:
        """Per-user top-k over the same tree (baseline B)."""
        return topk_all_users_individually(
            self.object_tree, self.dataset, k, store=self.store
        )

    # ------------------------------------------------------------------
    # Full query
    # ------------------------------------------------------------------
    def query(
        self,
        query: MaxBRSTkNNQuery,
        options: Union[QueryOptions, str, None] = None,
        *,
        method: Optional[str] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> MaxBRSTkNNResult:
        """Answer one MaxBRSTkNN query.

        ``options`` is a :class:`QueryOptions`; the legacy string
        kwargs (``method=`` / ``mode=`` / ``backend=``) keep working
        through the deprecation shim.  Results are identical across
        backends (``Mode.BASELINE`` is the scalar oracle and ignores
        the choice).
        """
        opts = coerce_options(
            options, method=method, mode=mode, backend=backend,
            api="MaxBRSTkNNEngine.query",
        )
        plan = plan_query(opts, self.capabilities(), k=query.k)
        return self._execute_single(query, plan)

    def _execute_single(
        self, query: MaxBRSTkNNQuery, plan: QueryPlan
    ) -> MaxBRSTkNNResult:
        """Run one planned query (always cold: no shared-phase cache)."""
        if plan.mode is Mode.BASELINE:
            return baseline_maxbrstknn(
                self.object_tree, self.dataset, query, store=self.store
            )
        if plan.mode is Mode.INDEXED:
            assert self.user_tree is not None  # planner validated
            self.traversal_runs += 1
            return indexed_users_maxbrstknn(
                self.object_tree,
                self.user_tree,
                self.dataset,
                query,
                method=plan.method.value,
                store=self.store,
                backend=plan.backend,
            )

        # Deliberately cold (no shared-phase cache): single-query cost
        # and I/O accounting must match the paper's per-query setting
        # (Figure 15 measures it).  batch._ensure_traversal_pool mirrors
        # this block — keep the stats accounting in sync when editing.
        stats = QueryStats(users_total=len(self.dataset.users))
        before = self.io.snapshot()
        t0 = time.perf_counter()
        self.traversal_runs += 1
        traversal = joint_traversal(
            self.object_tree, self.dataset, query.k, store=self.store,
            backend=plan.backend,
        )
        per_user = individual_topk(
            traversal, self.dataset, query.k, backend=plan.backend
        )
        stats.topk_time_s = time.perf_counter() - t0
        delta = self.io.snapshot() - before
        stats.io_node_visits = delta.node_visits
        stats.io_invfile_blocks = delta.invfile_blocks

        rsk = {uid: res.kth_score for uid, res in per_user.items()}
        t1 = time.perf_counter()
        result = select_candidate(
            self.dataset,
            query,
            rsk,
            rsk_group=traversal.rsk_group,
            method=plan.method.value,
            stats=stats,
            backend=plan.backend,
        )
        stats.selection_time_s = time.perf_counter() - t1
        result.stats = stats
        return result

    def query_batch(
        self,
        queries: Sequence[MaxBRSTkNNQuery],
        options: Union[QueryOptions, str, None] = None,
        *,
        method: Optional[str] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        pool=None,
    ) -> List[MaxBRSTkNNResult]:
        """Answer a batch of queries, sharing phase 1 per distinct k.

        See :func:`repro.core.batch.query_batch`; the shared phase is
        memoized on the engine, so consecutive batches with the same k
        skip it entirely (:meth:`clear_topk_cache` drops it).  ``pool``
        optionally injects a persistent
        :class:`repro.serve.pool.PersistentWorkerPool` for phase 2.
        """
        # Coerce here (not in batch.query_batch) so the deprecation
        # warning's stacklevel lands on the user's call site.
        opts = coerce_options(
            options, method=method, mode=mode, backend=backend, workers=workers,
            api="MaxBRSTkNNEngine.query_batch",
        )
        return query_batch(self, queries, opts, pool=pool)

    def clear_topk_cache(self) -> None:
        """Drop the shared phase-1 caches used by ``query_batch``."""
        self._shared_topk_cache.clear()
        self._traversal_pool = None
        self._root_pool = None

    def prewarm_kernels(self) -> None:
        """Build the numpy kernel caches up front (server startup hook).

        ``DatasetArrays`` plus the object tree's ``TreeArrays`` — so the
        first query pays no build cost and pool workers forked later
        inherit them through copy-on-write.  No-op without numpy.
        """
        from .kernels import HAS_NUMPY, arrays_for, tree_arrays_for

        if not HAS_NUMPY:
            return
        arrays_for(self.dataset)
        tree_arrays_for(self.object_tree)
        self.ensure_arena()

    # ------------------------------------------------------------------
    # Zero-copy storage tier (config.use_shm)
    # ------------------------------------------------------------------
    @property
    def payload_codec(self):
        """The arena-backed scatter codec, or ``None`` (pickle path)."""
        return self._payload_codec

    @property
    def arena_name(self) -> Optional[str]:
        """Name of the owned shm arena, or ``None`` when not materialized."""
        return self._arena.name if self._arena is not None else None

    def ensure_arena(self):
        """Materialize the shm arena + payload codec (idempotent).

        Returns the arena, or ``None`` when ``config.use_shm`` is off or
        numpy is unavailable (the dense columns *are* the numpy arrays).
        Must run before pool workers fork so they inherit shm-backed
        views through copy-on-write; respawned workers re-attach by
        name (:func:`repro.serve.pool._init_worker`).
        """
        if not self.config.use_shm:
            return None
        if self._arena is not None:
            return self._arena
        from .kernels import HAS_NUMPY, arrays_for, tree_arrays_for

        if not HAS_NUMPY:
            return None
        from .payload import PayloadCodec
        from ..storage.shm import ShmArena

        arena = ShmArena()
        try:
            arrays_for(self.dataset).share_into(arena)
            tree_arrays_for(self.object_tree).share_into(arena)
        except BaseException:
            arena.destroy()
            raise
        self._arena = arena
        self._payload_codec = PayloadCodec(
            arena, epoch_fn=lambda: getattr(self.dataset, "epoch", 0)
        )
        return arena

    def close_arena(self) -> None:
        """Unlink and drop the arena (idempotent; safe without one)."""
        arena, self._arena = self._arena, None
        self._payload_codec = None
        if arena is not None:
            arena.destroy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def reset_io(self) -> None:
        self.io.reset()
        if self.store.buffer is not None:
            self.store.buffer.clear()
