"""Extensions beyond the paper's core query, from its related work.

The paper's Section 2 surveys two natural generalizations that its own
machinery supports directly; both are implemented here on top of the
joint top-k thresholds:

* **ℓ-best placements** (Wong et al.'s ℓ-MaxBRkNN, carried to the
  spatial-textual setting): return the ℓ best (location, keyword set)
  tuples ranked by BRSTkNN cardinality rather than only the optimum —
  useful when the best lot is unavailable or placements must be
  short-listed for a human.
* **Collective placement** (Yan et al.'s FILM extension): place ``m``
  *new* objects — each with its own location and keyword set — so the
  number of users won by *at least one* of them is maximized.  The
  problem inherits NP-hardness from single-placement keyword selection,
  so a greedy algorithm places objects one at a time, each step winning
  the most not-yet-covered users.  The classic max-coverage argument
  gives the usual ``1 - 1/e`` factor w.r.t. the best greedy-step
  oracle.

Both functions take precomputed per-user thresholds (``rsk``), so they
compose with the joint top-k exactly like ``select_candidate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Tuple

from ..model.dataset import Dataset
from ..model.objects import User
from ..spatial.geometry import Point
from .candidate_selection import shortlist_locations
from .keyword_selection import select_keywords_exact, select_keywords_greedy
from .query import MaxBRSTkNNQuery

__all__ = ["Placement", "top_placements", "collective_placement"]


@dataclass(frozen=True, slots=True)
class Placement:
    """One (location, keyword set) tuple with the users it wins."""

    location: Point
    keywords: FrozenSet[int]
    brstknn: FrozenSet[int]

    @property
    def cardinality(self) -> int:
        return len(self.brstknn)


def top_placements(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    limit: int = 3,
    rsk_group: float = 0.0,
    method: str = "approx",
) -> List[Placement]:
    """The ℓ best placements, one per candidate location, best first.

    Each surviving location gets its best keyword set (greedy or exact);
    the resulting placements are ranked by cardinality.  Locations whose
    shortlist upper bound cannot beat the current ℓ-th best are skipped,
    mirroring Algorithm 3's early termination but with an ℓ-deep
    incumbent list.
    """
    if method not in ("approx", "exact"):
        raise ValueError(f"unknown method {method!r}")
    if limit <= 0:
        return []
    selector = select_keywords_greedy if method == "approx" else select_keywords_exact
    shortlists, _ = shortlist_locations(dataset, query, rsk, rsk_group)
    shortlists.sort(key=lambda sl: -len(sl.users))

    placements: List[Placement] = []

    def worst_kept() -> int:
        return placements[-1].cardinality if len(placements) >= limit else -1

    for sl in shortlists:
        if len(sl.users) <= worst_kept():
            break  # no later location can enter the top-ℓ
        keywords, winners, _ = selector(
            dataset, query.ox, sl.location, query.keywords, query.ws, sl.users, rsk
        )
        placements.append(
            Placement(location=sl.location, keywords=keywords, brstknn=winners)
        )
        placements.sort(key=lambda p: -p.cardinality)
        del placements[limit:]
    return placements


def collective_placement(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    num_objects: int,
    rsk_group: float = 0.0,
    method: str = "approx",
    reuse_locations: bool = False,
) -> Tuple[List[Placement], FrozenSet[int]]:
    """Greedy placement of ``num_objects`` new objects.

    Each round finds the placement winning the most *uncovered* users,
    commits it, removes its users and (unless ``reuse_locations``) its
    location, and repeats.  Returns the chosen placements and the union
    of users covered.
    """
    if num_objects <= 0:
        return [], frozenset()
    covered: set = set()
    remaining_locations = list(query.locations)
    chosen: List[Placement] = []
    users_by_id: Dict[int, User] = {u.item_id: u for u in dataset.users}

    for _ in range(num_objects):
        if not remaining_locations:
            break
        uncovered_users = [u for u in dataset.users if u.item_id not in covered]
        if not uncovered_users:
            break
        sub_query = MaxBRSTkNNQuery(
            ox=query.ox,
            locations=list(remaining_locations),
            keywords=list(query.keywords),
            ws=query.ws,
            k=query.k,
        )
        sub_dataset = dataset.with_users(uncovered_users)
        best = top_placements(
            sub_dataset, sub_query, rsk, limit=1, rsk_group=0.0, method=method
        )
        if not best or best[0].cardinality == 0:
            break
        placement = best[0]
        chosen.append(placement)
        covered |= set(placement.brstknn)
        if not reuse_locations:
            remaining_locations = [
                loc for loc in remaining_locations if loc != placement.location
            ]
    return chosen, frozenset(covered)
