"""Query planner: resolve (QueryOptions, engine capabilities) to a plan.

The middle layer of the typed API.  :class:`QueryOptions` says what the
caller *wants*; :class:`EngineCapabilities` says what the engine *has*
(an MIUR-tree? numpy? a ``fork`` start method?); the planner resolves
the pair into an executable :class:`QueryPlan` — which pipeline runs,
which kernels score, whether the shared top-k cache applies, and how
phase 2 fans out — and rejects impossible combinations up front
(``Mode.INDEXED`` without a user tree, ``Backend.NUMPY`` without
numpy) before any work is done.

Planning is also where batch execution strategies are chosen.  In
particular, ``Mode.INDEXED`` batches used to fall back silently to
sequential per-query engine calls; the planner now routes them through
a **shared root traversal** per distinct ``k`` (the joint traversal of
the object tree against the MIUR-tree root summary depends only on
``(dataset, k)``), so batched indexed queries amortize the same phase
batched joint queries always did.

Since PR 6 planning is also *adaptive*: callers may pass the engine's
:class:`~repro.core.history.FlushHistory`, and the planner consults the
observed per-item stage costs at the flush's signature before choosing
a fan-out — measured sub-millisecond work stays in-process (a pool
round-trip costs more than it saves), and a joint scatter whose
per-shard queue depth has been consistently trivial dispatches
in-process instead of through the shard pools.  Every such decision is
a :class:`PlanDecision` on the plan, rendered by ``explain()`` with an
``observed`` rationale; a cold engine (fewer than
``MIN_OBSERVED_FLUSHES`` flushes recorded at the signature) falls back
to the static plan and says so.

``QueryPlan.explain()`` renders the decisions as text — the serving
layer and the CLI surface it for observability.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .config import Method, Mode, QueryOptions
from .history import FlushHistory, FlushSignature
from .kernels import HAS_NUMPY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import MaxBRSTkNNEngine

__all__ = [
    "EngineCapabilities",
    "ShardPlan",
    "QueryPlan",
    "PlanDecision",
    "plan_query",
    "plan_batch",
    "MIN_OBSERVED_FLUSHES",
    "INPROCESS_STAGE_MS",
    "LOW_QUEUE_DEPTH",
]

#: Flushes a signature must accumulate before observed costs override
#: the static plan — one or two flushes still carry warm-up noise
#: (kernel array builds, pool forks, cold page store).
MIN_OBSERVED_FLUSHES = 3

#: Per-item stage cost (ms) under which dispatching that stage's items
#: to a process pool cannot pay for the pickle/IPC round-trip.
INPROCESS_STAGE_MS = 1.0

#: Mean per-shard queue depth under which a joint scatter's pool
#: dispatch is pure overhead (each engaged shard receives the full work
#: list, so mean stage items per flush *is* the per-shard depth).
LOW_QUEUE_DEPTH = 2.0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True, slots=True)
class EngineCapabilities:
    """What one engine instance can execute.

    ``traversal_pool_k`` is the ``k`` of the engine's memoized cross-k
    traversal pool, if one exists — planning reads it so the plan (and
    ``explain()``) names the walk that will actually serve the batch,
    which may be a larger-k walk from an earlier batch.
    """

    has_user_tree: bool
    numpy_available: bool = HAS_NUMPY
    fork_available: bool = True
    num_users: int = 0
    num_objects: int = 0
    traversal_pool_k: Optional[int] = None
    #: The k of the engine's memoized cross-k MIUR-root pool (indexed
    #: batches), if one exists — the indexed twin of
    #: ``traversal_pool_k``.
    root_pool_k: Optional[int] = None
    #: > 1 when the engine is a ShardedEngine scattering over user
    #: partitions; plans then carry a ShardPlan and reject baseline
    #: mode (the only pipeline without a mergeable decomposition).
    num_shards: int = 1
    partitioner: Optional[str] = None
    shard_users: Tuple[int, ...] = ()
    #: Width of the sharded engine's gather-side search pool (0 = the
    #: central searches run in-process).
    search_workers: int = 0

    @classmethod
    def of(cls, engine: "MaxBRSTkNNEngine") -> "EngineCapabilities":
        pool = engine._traversal_pool
        root_pool = engine._root_pool
        return cls(
            has_user_tree=engine.user_tree is not None,
            numpy_available=HAS_NUMPY,
            fork_available=_fork_available(),
            num_users=len(engine.dataset.users),
            num_objects=len(engine.dataset.objects),
            traversal_pool_k=pool.k if pool is not None else None,
            root_pool_k=root_pool.k if root_pool is not None else None,
        )


@dataclass(frozen=True, slots=True)
class PlanDecision:
    """One planner choice, with its provenance.

    ``source`` is ``"observed"`` when the choice came from measured
    :class:`~repro.core.history.FlushHistory` costs, ``"static"`` when
    the planner had no (or not yet enough) history at the flush's
    signature and fell back to the capability-driven default.
    """

    name: str
    choice: str
    source: str
    rationale: str


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """How a batch scatters over user partitions and gathers back.

    Attributes
    ----------
    num_shards / partitioner:
        The ShardedEngine's layout (``EngineConfig.num_shards`` /
        ``EngineConfig.partitioner``).
    scatter_width:
        Shards that actually receive work — shards with zero users are
        skipped (their contribution to every merge is empty).
    shard_users:
        Per-shard user counts, for ``explain()`` skew reporting.
    merge:
        Name of the gather strategy.  ``"ordered-union"``: per-shard
        ``RSk(u)`` maps union disjointly; per-location shortlists
        concatenate and re-sort into dataset user order; the best-first
        search then runs once over the merged inputs, reproducing the
        sequential tie-breaking (summed RSk thresholds, object-id order
        inside top-k ties) exactly.
    """

    num_shards: int
    partitioner: str
    scatter_width: int
    shard_users: Tuple[int, ...] = ()
    merge: str = "ordered-union"
    search_workers: int = 0
    #: Largest shard size over the ideal equal share (1.0 = perfectly
    #: even; > num_shards/2 means one shard holds most of the users —
    #: the grid partitioner can do this when users cluster).
    largest_skew: float = 1.0
    #: Observed decision: run the gather-side per-query searches
    #: in-process even though a root search pool exists (measured
    #: sub-millisecond searches cannot pay for pool dispatch).
    search_inprocess: bool = False
    #: Observed decision: execute the user-axis scatter stages
    #: in-process instead of through the shard pools (measured trivial
    #: per-shard queue depth) — partition layout and merge order are
    #: unchanged, only the dispatch transport drops.
    scatter_inprocess: bool = False


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """Executable resolution of one query (or batch) request.

    Attributes
    ----------
    mode / method:
        The validated pipeline and keyword selector.
    backend:
        Concrete kernel backend ("python" or "numpy") — ``Backend.AUTO``
        is resolved here, once, instead of at every call site.
    batch_size:
        Number of queries this plan covers (1 = single query).
    distinct_ks:
        Sorted distinct ``k`` values across the batch; the shared phase
        runs once per entry.
    shared_topk:
        Phase 1 (top-k thresholds) is shared per distinct ``k`` and
        memoized on the engine (joint / baseline batches).
    shared_traversal:
        Phase 1 is a shared MIUR-root joint traversal per distinct
        ``k`` (indexed batches) instead of a per-query one.
    shared_traversal_k:
        The single ``k`` of the shared tree walk serving this batch —
        ``max(distinct_ks)``, or the engine's existing pool ``k`` when
        an earlier batch already walked further (the per-query top-k
        I/O stats report this walk, so the plan names it).  The
        traversal's candidate pool at ``k_max`` provably subsumes the
        pool of every smaller ``k`` (``RSk_max(us) <= RSk(us)``, so
        nothing a smaller-k traversal keeps is pruned), so a mixed-k
        batch pays for **one** tree walk and derives each k's
        thresholds from the shared pool.  Joint batches have pooled
        this way since PR 3; indexed batches joined in PR 5 once
        node-level ``RSk`` pruning was reformulated over the canonical
        per-k candidate set (pool-size-independent, so the best-first
        search makes identical decisions under any qualifying walk).
        ``None`` for baseline batches (no group traversal).
    workers:
        Resolved phase-2 fan-out width; 1 means in-process.
    shard:
        Scatter/gather layout when the executing engine is sharded
        (:class:`ShardPlan`); ``None`` for single-engine execution.
    select_inprocess:
        Observed decision: keep the local selection stage in-process
        even though the caller asked for workers (measured per-query
        selection cost under the pool-dispatch bar); ``workers`` is
        forced to 1 alongside.
    decisions:
        The :class:`PlanDecision` trail — what the planner chose at
        each adaptive point and whether measured history or the static
        default drove it.  Empty when planning ran without a
        :class:`~repro.core.history.FlushHistory`.
    """

    mode: Mode
    method: Method
    backend: str
    batch_size: int
    distinct_ks: Tuple[int, ...]
    shared_topk: bool
    shared_traversal: bool
    workers: int
    shared_traversal_k: Optional[int] = None
    shard: Optional[ShardPlan] = None
    select_inprocess: bool = False
    decisions: Tuple[PlanDecision, ...] = ()

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """Human-readable description of what will execute and why."""
        scope = (
            "single query"
            if self.batch_size == 1
            else f"batch of {self.batch_size}"
        )
        lines = [
            f"plan: {scope} -> mode={self.mode} method={self.method} "
            f"backend={self.backend}"
        ]
        ks = ",".join(str(k) for k in self.distinct_ks) or "?"
        if self.shared_traversal_k is not None and self.mode is Mode.INDEXED:
            lines.append(
                f"  phase 1 (MIUR-root joint traversal): one walk at "
                f"k={self.shared_traversal_k} reused for k={ks} — per-k "
                f"thresholds, group bounds and node-RSk pruning all derive "
                f"pool-independently from the canonical candidate set, "
                f"memoized on the engine"
            )
        elif self.shared_traversal_k is not None:
            lines.append(
                f"  phase 1 (joint traversal): one MIR-tree walk at "
                f"k={self.shared_traversal_k} reused for k={ks} (the k_max "
                f"pool subsumes every smaller k), per-k thresholds derived "
                f"from the shared pool and memoized on the engine"
            )
        elif self.shared_topk:
            lines.append(
                f"  phase 1 (top-k thresholds): shared once per distinct k "
                f"(k={ks}), memoized on the engine across batches"
            )
        elif self.shared_traversal:
            lines.append(
                f"  phase 1 (MIUR-root joint traversal): shared once per "
                f"distinct k (k={ks}), memoized on the engine across batches"
            )
        else:
            lines.append(
                "  phase 1 (top-k): cold per query (single-query cost matches "
                "the paper's per-query setting)"
            )
        if self.shard is not None:
            sp = self.shard
            skew = ""
            if sp.shard_users:
                lo, hi = min(sp.shard_users), max(sp.shard_users)
                total = sum(sp.shard_users)
                # Same condition as the build-time warning: a bare
                # 2-shard majority is noise; flag only a shard holding
                # most users at well over its ideal share.
                unbalanced = (
                    total > 0 and hi > 0.5 * total and sp.largest_skew > 1.5
                )
                skew = (
                    f", shard users min/max {lo}/{hi} "
                    f"(skew {sp.largest_skew:.2f}x ideal"
                    + (", UNBALANCED" if unbalanced else "")
                    + ")"
                )
            if self.mode is Mode.INDEXED:
                lines.append(
                    f"  scatter: {sp.num_shards}-shard layout "
                    f"(partitioner={sp.partitioner}{skew}); indexed flushes "
                    f"run one central MIUR-root walk, then fan the per-query "
                    f"searches out (user partitions idle — pruning replaces "
                    f"the O(|U|) refine)"
                )
            else:
                dispatch = (
                    ", dispatch in-process (observed low queue depth)"
                    if sp.scatter_inprocess
                    else ""
                )
                lines.append(
                    f"  scatter: width {sp.scatter_width} of {sp.num_shards} shards "
                    f"(partitioner={sp.partitioner}{skew}{dispatch}); per-shard "
                    f"k-sharing: refine once per (walk, k), memoized across batches"
                )
                search = (
                    f"per-query searches fan out over the root pool x{sp.search_workers}"
                    if sp.search_workers > 1 and not sp.search_inprocess
                    else "per-query searches run in-process"
                )
                lines.append(
                    f"  gather: merge={sp.merge} — disjoint RSk union + per-location "
                    f"shortlist concat in dataset user order, then the sequential "
                    f"best-first search per query ({search}; tie-breaks identical "
                    f"to a single engine)"
                )
        if self.mode is Mode.INDEXED:
            if (
                self.shard is not None
                and self.shard.search_workers > 1
                and not self.shard.search_inprocess
            ):
                lines.append(
                    f"  phase 2 (best-first MIUR search): fans out over the "
                    f"root search pool x{self.shard.search_workers} against "
                    f"read-only ledger stores (IOCharge replayed at gather)"
                )
            else:
                lines.append(
                    "  phase 2 (best-first MIUR search): in-process per query "
                    "(charges the engine's page store directly)"
                )
        elif self.workers > 1:
            lines.append(
                f"  phase 2 (candidate selection): fork pool x{self.workers}"
            )
        else:
            lines.append("  phase 2 (candidate selection): in-process")
        for d in self.decisions:
            lines.append(f"  {d.source}: {d.name} -> {d.choice} ({d.rationale})")
        return "\n".join(lines)


def _validate(options: QueryOptions, caps: EngineCapabilities) -> str:
    """Shared option/capability checks; returns the concrete backend."""
    if caps.num_shards > 1 and options.mode is Mode.BASELINE:
        raise ValueError(
            f"sharded engines execute mode=joint or mode=indexed (got "
            f"mode={options.mode}): the baseline pipeline has no mergeable "
            "per-user decomposition"
        )
    if options.mode is Mode.INDEXED and not caps.has_user_tree:
        raise ValueError("engine built without index_users=True")
    # Backend.NUMPY without numpy raises resolve()'s canonical RuntimeError.
    return options.backend.resolve()


def _shard_plan(caps: EngineCapabilities) -> Optional[ShardPlan]:
    if caps.num_shards <= 1:
        return None
    users = caps.shard_users
    total = sum(users)
    skew = (
        max(users) / (total / caps.num_shards)
        if users and total > 0
        else 1.0
    )
    return ShardPlan(
        num_shards=caps.num_shards,
        partitioner=caps.partitioner or "hash",
        scatter_width=(
            sum(1 for n in users if n > 0) if users else caps.num_shards
        ),
        shard_users=users,
        search_workers=caps.search_workers,
        largest_skew=skew,
    )


def _consult_history(
    history: FlushHistory,
    options: QueryOptions,
    backend: str,
    workers: int,
    shard: Optional[ShardPlan],
) -> Tuple[int, bool, Optional[ShardPlan], Tuple[PlanDecision, ...]]:
    """Apply the observed-cost model to the static plan's fan-outs.

    Returns ``(workers, select_inprocess, shard, decisions)``.  Each
    adaptive point emits exactly one :class:`PlanDecision`: ``observed``
    when the signature has accumulated ``MIN_OBSERVED_FLUSHES`` flushes
    of history (whether or not the measurement changed the choice),
    ``static`` while the engine is cold at this signature.
    """
    sig = FlushSignature(
        mode=options.mode.value,
        backend=backend,
        scatter_width=shard.scatter_width if shard is not None else 1,
    )
    obs = history.observe(sig)
    seasoned = obs is not None and obs.flushes >= MIN_OBSERVED_FLUSHES
    decisions: List[PlanDecision] = []
    select_inprocess = False

    def static(name: str, choice: str) -> None:
        if obs is None:
            why = (
                f"no flush history at signature {sig.mode}/{sig.backend}/"
                f"x{sig.scatter_width} yet (cold engine)"
            )
        else:
            why = (
                f"only {obs.flushes} flush(es) recorded at this signature "
                f"(need {MIN_OBSERVED_FLUSHES}) — static plan until seasoned"
            )
        decisions.append(
            PlanDecision(name=name, choice=choice, source="static", rationale=why)
        )

    indexed = options.mode is Mode.INDEXED
    if shard is None:
        # Local executor: the one adaptive point is the selection /
        # search fan-out over the query axis.
        stage = "indexed-search" if indexed else "select"
        ms = obs.per_item_ms(stage) if seasoned else None
        if indexed:
            # Single-engine indexed searches always run in-process (they
            # charge the engine's own page store); report the measured
            # cost so the choice is still auditable.
            if ms is not None:
                decisions.append(PlanDecision(
                    name="search-fanout", choice="in-process", source="observed",
                    rationale=(
                        f"searches averaged {ms:.3f} ms/query over the last "
                        f"{obs.flushes} flushes; single-engine indexed "
                        f"searches charge the engine's page store directly"
                    ),
                ))
            else:
                static("search-fanout", "in-process")
        elif ms is not None and ms < INPROCESS_STAGE_MS:
            choice = "in-process"
            if workers > 1:
                workers = 1
                select_inprocess = True
            decisions.append(PlanDecision(
                name="select-fanout", choice=choice, source="observed",
                rationale=(
                    f"selection averaged {ms:.3f} ms/query over the last "
                    f"{obs.flushes} flushes — under the "
                    f"{INPROCESS_STAGE_MS:.1f} ms/item bar, a fork pool "
                    f"cannot pay for its dispatch round-trip"
                ),
            ))
        elif ms is not None:
            choice = f"fork pool x{workers}" if workers > 1 else "in-process"
            extra = (
                ""
                if workers > 1
                else "; pass QueryOptions(workers=N) to fan out"
            )
            decisions.append(PlanDecision(
                name="select-fanout", choice=choice, source="observed",
                rationale=(
                    f"selection averaged {ms:.3f} ms/query over the last "
                    f"{obs.flushes} flushes — heavy enough that dispatch "
                    f"pays{extra}"
                ),
            ))
        else:
            static(
                "select-fanout",
                f"fork pool x{workers}" if workers > 1 else "in-process",
            )
        return workers, select_inprocess, shard, tuple(decisions)

    # Sharded executor: gather-side search fan-out, then (joint only)
    # the user-axis scatter dispatch.
    if shard.search_workers > 0:
        stage = "indexed-search" if indexed else "search"
        ms = obs.per_item_ms(stage) if seasoned else None
        if ms is not None and ms < INPROCESS_STAGE_MS:
            shard = replace(shard, search_inprocess=True)
            decisions.append(PlanDecision(
                name="search-fanout", choice="in-process", source="observed",
                rationale=(
                    f"searches averaged {ms:.3f} ms/query over the last "
                    f"{obs.flushes} flushes — under the "
                    f"{INPROCESS_STAGE_MS:.1f} ms/item bar, the root search "
                    f"pool cannot pay for its dispatch round-trip"
                ),
            ))
        elif ms is not None:
            decisions.append(PlanDecision(
                name="search-fanout",
                choice=f"root pool x{shard.search_workers}",
                source="observed",
                rationale=(
                    f"searches averaged {ms:.3f} ms/query over the last "
                    f"{obs.flushes} flushes — heavy enough that pool "
                    f"dispatch pays"
                ),
            ))
        else:
            static("search-fanout", f"root pool x{shard.search_workers}")
    if not indexed:
        depth = obs.mean_items("shortlist") if seasoned else None
        ms = obs.per_item_ms("shortlist") if seasoned else None
        if (
            depth is not None and depth < LOW_QUEUE_DEPTH
            and ms is not None and ms < INPROCESS_STAGE_MS
        ):
            shard = replace(shard, scatter_inprocess=True)
            decisions.append(PlanDecision(
                name="scatter-dispatch", choice="in-process", source="observed",
                rationale=(
                    f"per-shard queue depth averaged {depth:.2f} (< "
                    f"{LOW_QUEUE_DEPTH:.0f}) at {ms:.3f} ms/item over the "
                    f"last {obs.flushes} flushes — shard-pool dispatch is "
                    f"pure overhead at this depth"
                ),
            ))
        elif depth is not None:
            decisions.append(PlanDecision(
                name="scatter-dispatch",
                choice=f"shard pools, width {shard.scatter_width}",
                source="observed",
                rationale=(
                    f"per-shard queue depth averaged {depth:.2f} over the "
                    f"last {obs.flushes} flushes — deep enough to keep the "
                    f"scatter on the shard pools"
                ),
            ))
        else:
            static("scatter-dispatch", f"shard pools, width {shard.scatter_width}")
    return workers, select_inprocess, shard, tuple(decisions)


def plan_query(
    options: QueryOptions,
    caps: EngineCapabilities,
    k: int = 0,
    history: Optional[FlushHistory] = None,
) -> QueryPlan:
    """Plan one query.  Single queries never share or fan out.

    On a sharded engine a single query still scatters (it is executed
    as a batch of one against the shared pool — ``shared_traversal_k``
    names the walk, exactly like :func:`plan_batch` does).
    """
    backend = _validate(options, caps)
    if caps.num_shards > 1 and k:
        # batch of one, shared pool
        return plan_batch(options, caps, [k], history=history)
    return QueryPlan(
        mode=options.mode,
        method=options.method,
        backend=backend,
        batch_size=1,
        distinct_ks=(k,) if k else (),
        shared_topk=False,
        shared_traversal=False,
        workers=1,
        shard=_shard_plan(caps),
    )


def plan_batch(
    options: QueryOptions,
    caps: EngineCapabilities,
    ks: Sequence[int],
    history: Optional[FlushHistory] = None,
) -> QueryPlan:
    """Plan a batch: share phase 1 per distinct k, fan out phase 2.

    ``ks`` are the queries' ``k`` values (one per query, duplicates
    expected).  Indexed batches share the root traversal but keep the
    best-first search in-process — its MIUR-tree page reads must hit
    the engine's page store, which a forked worker could not report
    back.  With ``history``, observed per-item costs at the flush's
    signature may pull planned fan-outs back in-process (see
    :func:`_consult_history`); the decision trail lands on
    ``QueryPlan.decisions``.
    """
    backend = _validate(options, caps)
    indexed = options.mode is Mode.INDEXED
    fan_out = (
        options.workers > 1
        and len(ks) > 1
        and not indexed
        and caps.fork_available
        # Sharded engines get their parallelism from the scatter and
        # the root search pool (ShardedEngine.start_pools), never from
        # QueryOptions.workers — plan workers=1 so explain() stays
        # truthful about what will execute.
        and caps.num_shards == 1
    )
    distinct_ks = tuple(sorted(set(ks)))
    # Both group-traversal modes run one tree walk at k_max and reuse
    # its pool for every smaller k (joint since PR 3; indexed since the
    # PR 5 node-RSk reformulation made its per-k derivations
    # pool-independent).  An engine pool already walked at a larger k
    # serves this batch without re-walking — the plan names that walk
    # so explain() and the stats contract stay truthful.
    if indexed and distinct_ks:
        pool_k = (caps.root_pool_k,) if caps.root_pool_k else ()
        shared_traversal_k: Optional[int] = max(distinct_ks + pool_k)
    elif options.mode is Mode.JOINT and distinct_ks:
        pool_k = (caps.traversal_pool_k,) if caps.traversal_pool_k else ()
        shared_traversal_k = max(distinct_ks + pool_k)
    else:
        shared_traversal_k = None
    shard = _shard_plan(caps)
    workers = options.workers if fan_out else 1
    select_inprocess = False
    decisions: Tuple[PlanDecision, ...] = ()
    if history is not None:
        workers, select_inprocess, shard, decisions = _consult_history(
            history, options, backend, workers, shard
        )
    return QueryPlan(
        mode=options.mode,
        method=options.method,
        backend=backend,
        batch_size=len(ks),
        distinct_ks=distinct_ks,
        shared_topk=not indexed,
        shared_traversal=indexed,
        workers=workers,
        shared_traversal_k=shared_traversal_k,
        shard=shard,
        select_inprocess=select_inprocess,
        decisions=decisions,
    )
