"""Query planner: resolve (QueryOptions, engine capabilities) to a plan.

The middle layer of the typed API.  :class:`QueryOptions` says what the
caller *wants*; :class:`EngineCapabilities` says what the engine *has*
(an MIUR-tree? numpy? a ``fork`` start method?); the planner resolves
the pair into an executable :class:`QueryPlan` — which pipeline runs,
which kernels score, whether the shared top-k cache applies, and how
phase 2 fans out — and rejects impossible combinations up front
(``Mode.INDEXED`` without a user tree, ``Backend.NUMPY`` without
numpy) before any work is done.

Planning is also where batch execution strategies are chosen.  In
particular, ``Mode.INDEXED`` batches used to fall back silently to
sequential per-query engine calls; the planner now routes them through
a **shared root traversal** per distinct ``k`` (the joint traversal of
the object tree against the MIUR-tree root summary depends only on
``(dataset, k)``), so batched indexed queries amortize the same phase
batched joint queries always did.

``QueryPlan.explain()`` renders the decisions as text — the serving
layer and the CLI surface it for observability.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from .config import Method, Mode, QueryOptions
from .kernels import HAS_NUMPY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import MaxBRSTkNNEngine

__all__ = [
    "EngineCapabilities",
    "ShardPlan",
    "QueryPlan",
    "plan_query",
    "plan_batch",
]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True, slots=True)
class EngineCapabilities:
    """What one engine instance can execute.

    ``traversal_pool_k`` is the ``k`` of the engine's memoized cross-k
    traversal pool, if one exists — planning reads it so the plan (and
    ``explain()``) names the walk that will actually serve the batch,
    which may be a larger-k walk from an earlier batch.
    """

    has_user_tree: bool
    numpy_available: bool = HAS_NUMPY
    fork_available: bool = True
    num_users: int = 0
    num_objects: int = 0
    traversal_pool_k: Optional[int] = None
    #: The k of the engine's memoized cross-k MIUR-root pool (indexed
    #: batches), if one exists — the indexed twin of
    #: ``traversal_pool_k``.
    root_pool_k: Optional[int] = None
    #: > 1 when the engine is a ShardedEngine scattering over user
    #: partitions; plans then carry a ShardPlan and reject baseline
    #: mode (the only pipeline without a mergeable decomposition).
    num_shards: int = 1
    partitioner: Optional[str] = None
    shard_users: Tuple[int, ...] = ()
    #: Width of the sharded engine's gather-side search pool (0 = the
    #: central searches run in-process).
    search_workers: int = 0

    @classmethod
    def of(cls, engine: "MaxBRSTkNNEngine") -> "EngineCapabilities":
        pool = engine._traversal_pool
        root_pool = engine._root_pool
        return cls(
            has_user_tree=engine.user_tree is not None,
            numpy_available=HAS_NUMPY,
            fork_available=_fork_available(),
            num_users=len(engine.dataset.users),
            num_objects=len(engine.dataset.objects),
            traversal_pool_k=pool.k if pool is not None else None,
            root_pool_k=root_pool.k if root_pool is not None else None,
        )


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """How a batch scatters over user partitions and gathers back.

    Attributes
    ----------
    num_shards / partitioner:
        The ShardedEngine's layout (``EngineConfig.num_shards`` /
        ``EngineConfig.partitioner``).
    scatter_width:
        Shards that actually receive work — shards with zero users are
        skipped (their contribution to every merge is empty).
    shard_users:
        Per-shard user counts, for ``explain()`` skew reporting.
    merge:
        Name of the gather strategy.  ``"ordered-union"``: per-shard
        ``RSk(u)`` maps union disjointly; per-location shortlists
        concatenate and re-sort into dataset user order; the best-first
        search then runs once over the merged inputs, reproducing the
        sequential tie-breaking (summed RSk thresholds, object-id order
        inside top-k ties) exactly.
    """

    num_shards: int
    partitioner: str
    scatter_width: int
    shard_users: Tuple[int, ...] = ()
    merge: str = "ordered-union"
    search_workers: int = 0
    #: Largest shard size over the ideal equal share (1.0 = perfectly
    #: even; > num_shards/2 means one shard holds most of the users —
    #: the grid partitioner can do this when users cluster).
    largest_skew: float = 1.0


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """Executable resolution of one query (or batch) request.

    Attributes
    ----------
    mode / method:
        The validated pipeline and keyword selector.
    backend:
        Concrete kernel backend ("python" or "numpy") — ``Backend.AUTO``
        is resolved here, once, instead of at every call site.
    batch_size:
        Number of queries this plan covers (1 = single query).
    distinct_ks:
        Sorted distinct ``k`` values across the batch; the shared phase
        runs once per entry.
    shared_topk:
        Phase 1 (top-k thresholds) is shared per distinct ``k`` and
        memoized on the engine (joint / baseline batches).
    shared_traversal:
        Phase 1 is a shared MIUR-root joint traversal per distinct
        ``k`` (indexed batches) instead of a per-query one.
    shared_traversal_k:
        The single ``k`` of the shared tree walk serving this batch —
        ``max(distinct_ks)``, or the engine's existing pool ``k`` when
        an earlier batch already walked further (the per-query top-k
        I/O stats report this walk, so the plan names it).  The
        traversal's candidate pool at ``k_max`` provably subsumes the
        pool of every smaller ``k`` (``RSk_max(us) <= RSk(us)``, so
        nothing a smaller-k traversal keeps is pruned), so a mixed-k
        batch pays for **one** tree walk and derives each k's
        thresholds from the shared pool.  Joint batches have pooled
        this way since PR 3; indexed batches joined in PR 5 once
        node-level ``RSk`` pruning was reformulated over the canonical
        per-k candidate set (pool-size-independent, so the best-first
        search makes identical decisions under any qualifying walk).
        ``None`` for baseline batches (no group traversal).
    workers:
        Resolved phase-2 fan-out width; 1 means in-process.
    shard:
        Scatter/gather layout when the executing engine is sharded
        (:class:`ShardPlan`); ``None`` for single-engine execution.
    """

    mode: Mode
    method: Method
    backend: str
    batch_size: int
    distinct_ks: Tuple[int, ...]
    shared_topk: bool
    shared_traversal: bool
    workers: int
    shared_traversal_k: Optional[int] = None
    shard: Optional[ShardPlan] = None

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """Human-readable description of what will execute and why."""
        scope = (
            "single query"
            if self.batch_size == 1
            else f"batch of {self.batch_size}"
        )
        lines = [
            f"plan: {scope} -> mode={self.mode} method={self.method} "
            f"backend={self.backend}"
        ]
        ks = ",".join(str(k) for k in self.distinct_ks) or "?"
        if self.shared_traversal_k is not None and self.mode is Mode.INDEXED:
            lines.append(
                f"  phase 1 (MIUR-root joint traversal): one walk at "
                f"k={self.shared_traversal_k} reused for k={ks} — per-k "
                f"thresholds, group bounds and node-RSk pruning all derive "
                f"pool-independently from the canonical candidate set, "
                f"memoized on the engine"
            )
        elif self.shared_traversal_k is not None:
            lines.append(
                f"  phase 1 (joint traversal): one MIR-tree walk at "
                f"k={self.shared_traversal_k} reused for k={ks} (the k_max "
                f"pool subsumes every smaller k), per-k thresholds derived "
                f"from the shared pool and memoized on the engine"
            )
        elif self.shared_topk:
            lines.append(
                f"  phase 1 (top-k thresholds): shared once per distinct k "
                f"(k={ks}), memoized on the engine across batches"
            )
        elif self.shared_traversal:
            lines.append(
                f"  phase 1 (MIUR-root joint traversal): shared once per "
                f"distinct k (k={ks}), memoized on the engine across batches"
            )
        else:
            lines.append(
                "  phase 1 (top-k): cold per query (single-query cost matches "
                "the paper's per-query setting)"
            )
        if self.shard is not None:
            sp = self.shard
            skew = ""
            if sp.shard_users:
                lo, hi = min(sp.shard_users), max(sp.shard_users)
                total = sum(sp.shard_users)
                # Same condition as the build-time warning: a bare
                # 2-shard majority is noise; flag only a shard holding
                # most users at well over its ideal share.
                unbalanced = (
                    total > 0 and hi > 0.5 * total and sp.largest_skew > 1.5
                )
                skew = (
                    f", shard users min/max {lo}/{hi} "
                    f"(skew {sp.largest_skew:.2f}x ideal"
                    + (", UNBALANCED" if unbalanced else "")
                    + ")"
                )
            if self.mode is Mode.INDEXED:
                lines.append(
                    f"  scatter: {sp.num_shards}-shard layout "
                    f"(partitioner={sp.partitioner}{skew}); indexed flushes "
                    f"run one central MIUR-root walk, then fan the per-query "
                    f"searches out (user partitions idle — pruning replaces "
                    f"the O(|U|) refine)"
                )
            else:
                lines.append(
                    f"  scatter: width {sp.scatter_width} of {sp.num_shards} shards "
                    f"(partitioner={sp.partitioner}{skew}); per-shard k-sharing: "
                    f"refine once per (walk, k), memoized across batches"
                )
                search = (
                    f"per-query searches fan out over the root pool x{sp.search_workers}"
                    if sp.search_workers > 1
                    else "per-query searches run in-process"
                )
                lines.append(
                    f"  gather: merge={sp.merge} — disjoint RSk union + per-location "
                    f"shortlist concat in dataset user order, then the sequential "
                    f"best-first search per query ({search}; tie-breaks identical "
                    f"to a single engine)"
                )
        if self.mode is Mode.INDEXED:
            if self.shard is not None and self.shard.search_workers > 1:
                lines.append(
                    f"  phase 2 (best-first MIUR search): fans out over the "
                    f"root search pool x{self.shard.search_workers} against "
                    f"read-only ledger stores (IOCharge replayed at gather)"
                )
            else:
                lines.append(
                    "  phase 2 (best-first MIUR search): in-process per query "
                    "(charges the engine's page store directly)"
                )
        elif self.workers > 1:
            lines.append(
                f"  phase 2 (candidate selection): fork pool x{self.workers}"
            )
        else:
            lines.append("  phase 2 (candidate selection): in-process")
        return "\n".join(lines)


def _validate(options: QueryOptions, caps: EngineCapabilities) -> str:
    """Shared option/capability checks; returns the concrete backend."""
    if caps.num_shards > 1 and options.mode is Mode.BASELINE:
        raise ValueError(
            f"sharded engines execute mode=joint or mode=indexed (got "
            f"mode={options.mode}): the baseline pipeline has no mergeable "
            "per-user decomposition"
        )
    if options.mode is Mode.INDEXED and not caps.has_user_tree:
        raise ValueError("engine built without index_users=True")
    # Backend.NUMPY without numpy raises resolve()'s canonical RuntimeError.
    return options.backend.resolve()


def _shard_plan(caps: EngineCapabilities) -> Optional[ShardPlan]:
    if caps.num_shards <= 1:
        return None
    users = caps.shard_users
    total = sum(users)
    skew = (
        max(users) / (total / caps.num_shards)
        if users and total > 0
        else 1.0
    )
    return ShardPlan(
        num_shards=caps.num_shards,
        partitioner=caps.partitioner or "hash",
        scatter_width=(
            sum(1 for n in users if n > 0) if users else caps.num_shards
        ),
        shard_users=users,
        search_workers=caps.search_workers,
        largest_skew=skew,
    )


def plan_query(
    options: QueryOptions, caps: EngineCapabilities, k: int = 0
) -> QueryPlan:
    """Plan one query.  Single queries never share or fan out.

    On a sharded engine a single query still scatters (it is executed
    as a batch of one against the shared pool — ``shared_traversal_k``
    names the walk, exactly like :func:`plan_batch` does).
    """
    backend = _validate(options, caps)
    if caps.num_shards > 1 and k:
        return plan_batch(options, caps, [k])  # batch of one, shared pool
    return QueryPlan(
        mode=options.mode,
        method=options.method,
        backend=backend,
        batch_size=1,
        distinct_ks=(k,) if k else (),
        shared_topk=False,
        shared_traversal=False,
        workers=1,
        shard=_shard_plan(caps),
    )


def plan_batch(
    options: QueryOptions, caps: EngineCapabilities, ks: Sequence[int]
) -> QueryPlan:
    """Plan a batch: share phase 1 per distinct k, fan out phase 2.

    ``ks`` are the queries' ``k`` values (one per query, duplicates
    expected).  Indexed batches share the root traversal but keep the
    best-first search in-process — its MIUR-tree page reads must hit
    the engine's page store, which a forked worker could not report
    back.
    """
    backend = _validate(options, caps)
    indexed = options.mode is Mode.INDEXED
    fan_out = (
        options.workers > 1
        and len(ks) > 1
        and not indexed
        and caps.fork_available
        # Sharded engines get their parallelism from the scatter and
        # the root search pool (ShardedEngine.start_pools), never from
        # QueryOptions.workers — plan workers=1 so explain() stays
        # truthful about what will execute.
        and caps.num_shards == 1
    )
    distinct_ks = tuple(sorted(set(ks)))
    # Both group-traversal modes run one tree walk at k_max and reuse
    # its pool for every smaller k (joint since PR 3; indexed since the
    # PR 5 node-RSk reformulation made its per-k derivations
    # pool-independent).  An engine pool already walked at a larger k
    # serves this batch without re-walking — the plan names that walk
    # so explain() and the stats contract stay truthful.
    if indexed and distinct_ks:
        pool_k = (caps.root_pool_k,) if caps.root_pool_k else ()
        shared_traversal_k: Optional[int] = max(distinct_ks + pool_k)
    elif options.mode is Mode.JOINT and distinct_ks:
        pool_k = (caps.traversal_pool_k,) if caps.traversal_pool_k else ()
        shared_traversal_k = max(distinct_ks + pool_k)
    else:
        shared_traversal_k = None
    return QueryPlan(
        mode=options.mode,
        method=options.method,
        backend=backend,
        batch_size=len(ks),
        distinct_ks=distinct_ks,
        shared_topk=not indexed,
        shared_traversal=indexed,
        workers=options.workers if fan_out else 1,
        shared_traversal_k=shared_traversal_k,
        shard=_shard_plan(caps),
    )
