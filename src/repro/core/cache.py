"""Cross-flush result cache: repeated queries skip the pipeline whole.

Under repeated traffic (the Zipf-shaped streams
``benchmarks/bench_repeat_traffic.py`` models) most flushes re-answer
queries the server has answered before.  The engine-level memoization
(:class:`~repro.core.batch.SharedTraversalPool`,
:class:`~repro.core.indexed_users.RootTraversal`) already removes the
*query-independent* phase-1 work across flushes; this module removes
the rest for exact repeats: a bounded LRU of full
:class:`~repro.core.query.MaxBRSTkNNResult` objects keyed by

    (canonical query signature, QueryOptions, dataset epoch)

* The **canonical signature** (:func:`canonical_signature`) is a
  value-tuple of everything the answer depends on — the query object's
  identity, location and document, the candidate locations *in order*
  (shortlist tie-breaks scan locations in the given order), the
  deduplicated keyword candidates in order, ``ws`` and ``k`` — so two
  query objects with equal content hit the same entry, while anything
  answer-relevant keeps distinct entries apart.
* :class:`~repro.core.config.QueryOptions` is a frozen (hashable)
  dataclass; including it keeps e.g. ``method=approx`` and
  ``method=exact`` answers separate (they may legitimately differ).
* The **dataset epoch** (``Dataset.epoch``, bumped by
  ``Dataset.bump_epoch()``) invalidates wholesale: any mutation bumps
  the epoch, every existing key stops matching, and the LRU ages the
  stale generation out without a scan.

Hits return the *same* result object the engine produced — results are
treated as immutable by every consumer (the serving layer hands them
to independent futures already).  Hit/miss/eviction accounting lives
with the caller (:class:`~repro.serve.config.ServerStats`); the cache
itself only stores and evicts, returning eviction counts from
:meth:`ResultCache.store`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

from .config import CachePolicy, QueryOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult

__all__ = ["canonical_signature", "ResultCache"]


def canonical_signature(query: "MaxBRSTkNNQuery") -> Tuple:
    """Hashable value-identity of one query.

    Everything the result depends on, nothing else.  Candidate
    locations and keywords stay *in order* — Algorithm 3's shortlist
    scan and the keyword selectors break ties positionally, so
    reordering either can legitimately change the reported optimum
    among equal-cardinality answers.
    """
    ox = query.ox
    return (
        ox.item_id,
        (ox.location.x, ox.location.y),
        tuple(sorted(ox.terms.items())),
        tuple((p.x, p.y) for p in query.locations),
        tuple(query.keywords),
        query.ws,
        query.k,
    )


class ResultCache:
    """Bounded LRU of exact MaxBRSTkNN results (one dataset, one server).

    Not thread-safe by itself; the micro-batching server does every
    lookup/store on the event-loop thread, which is the one writer.
    """

    def __init__(self, policy: Optional[CachePolicy] = None) -> None:
        policy = policy if policy is not None else CachePolicy()
        if not isinstance(policy, CachePolicy):
            raise TypeError(
                f"policy must be a CachePolicy, got {type(policy).__name__}"
            )
        self.policy = policy
        self._entries: "OrderedDict[Tuple, MaxBRSTkNNResult]" = OrderedDict()

    @staticmethod
    def _key(query: "MaxBRSTkNNQuery", options: QueryOptions, epoch: int) -> Tuple:
        return (canonical_signature(query), options, epoch)

    def lookup(
        self, query: "MaxBRSTkNNQuery", options: QueryOptions, epoch: int
    ) -> Optional["MaxBRSTkNNResult"]:
        """The cached result for an exact repeat, or ``None`` (a miss)."""
        entry = self._entries.get(self._key(query, options, epoch))
        if entry is None:
            return None
        self._entries.move_to_end(self._key(query, options, epoch))
        return entry

    def store(
        self,
        query: "MaxBRSTkNNQuery",
        options: QueryOptions,
        epoch: int,
        result: "MaxBRSTkNNResult",
    ) -> int:
        """Insert (or refresh) one result; returns evictions performed."""
        key = self._key(query, options, epoch)
        self._entries[key] = result
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.policy.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
