"""Query and result types of the MaxBRSTkNN problem (Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..model.objects import STObject
from ..spatial.geometry import Point

__all__ = ["MaxBRSTkNNQuery", "MaxBRSTkNNResult", "QueryStats"]


@dataclass(slots=True)
class MaxBRSTkNNQuery:
    """``q(ox, L, W, ws, k)`` of Definition 1.

    Attributes
    ----------
    ox:
        The query object to place.  Its existing text description
        ``ox.d`` (possibly empty) is always kept; chosen candidate
        keywords are added to it.
    locations:
        Candidate locations ``L`` (non-empty).
    keywords:
        Candidate keyword ids ``W``.
    ws:
        Maximum number of candidate keywords to select (``|W'| <= ws``).
    k:
        Top-k horizon of the reverse query.
    """

    ox: STObject
    locations: List[Point]
    keywords: List[int]
    ws: int
    k: int

    def __post_init__(self) -> None:
        if not self.locations:
            raise ValueError("MaxBRSTkNN query needs at least one candidate location")
        if self.ws < 0:
            raise ValueError("ws must be non-negative")
        if self.ws > len(set(self.keywords)):
            # Definition 1 requires ws <= |W|; clamping keeps the query
            # well-formed without forcing callers to special-case.
            self.ws = len(set(self.keywords))
        if self.k <= 0:
            raise ValueError("k must be positive")
        if len(set(self.keywords)) != len(self.keywords):
            self.keywords = list(dict.fromkeys(self.keywords))


@dataclass(slots=True)
class QueryStats:
    """Instrumentation collected while answering one query."""

    topk_time_s: float = 0.0
    selection_time_s: float = 0.0
    io_node_visits: int = 0
    io_invfile_blocks: int = 0
    users_pruned: int = 0
    users_total: int = 0
    locations_pruned: int = 0
    keyword_combinations_scored: int = 0

    @property
    def io_total(self) -> int:
        return self.io_node_visits + self.io_invfile_blocks

    @property
    def users_pruned_pct(self) -> float:
        if self.users_total == 0:
            return 0.0
        return 100.0 * self.users_pruned / self.users_total


@dataclass(slots=True)
class MaxBRSTkNNResult:
    """The optimal placement: location, keyword set, and its BRSTkNN."""

    location: Optional[Point]
    keywords: FrozenSet[int]
    brstknn: FrozenSet[int]  # user ids that now rank ox in their top-k
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def cardinality(self) -> int:
        return len(self.brstknn)

    def summary(self) -> str:
        loc = (
            f"({self.location.x:.3f}, {self.location.y:.3f})"
            if self.location is not None
            else "<none>"
        )
        return (
            f"location={loc} keywords={sorted(self.keywords)} "
            f"|BRSTkNN|={self.cardinality}"
        )
