"""Candidate keyword selection: greedy approximation and pruned exact.

Lemma 1 reduces Maximum Coverage to keyword selection, so even with one
candidate location the problem is NP-hard.  Section 6.2 gives two
solvers, both implemented here:

**Greedy approximation (Section 6.2.1).**  For each candidate keyword
``w`` a user list ``LUW_w`` is precomputed: user ``u`` enters the list
when placing ``ox`` at the chosen location with the *most optimistic*
keyword set containing ``w`` (``HW_{w,u}``: the ``ws`` highest-weight
candidates from ``W ∩ u.d`` including ``w``) reaches ``RSk(u)``.  The
classic max-coverage greedy then picks ``ws`` keywords maximizing the
union of their lists; since the lists are optimistic, the *actual*
BRSTkNN of the chosen set is recomputed before the caller compares
candidates.  Greedy max coverage is the best possible polynomial
approximation (``1 − 1/e``) unless P = NP.

**Exact (Section 6.2.2, Algorithm 4).**  Enumerates combinations of
size up to ``ws`` (see DESIGN.md §3.5 on why "up to" rather than the
paper's "exactly") of the *useful* candidates (``W ∩ Wu`` where ``Wu``
is the union of the shortlisted users' keywords) with the paper's
prunings — users outside ``LU_l`` are never touched; users whose
location-only lower bound already meets ``RSk(u)`` count for every
combination; a combination is scored against a user only when it
shares a keyword with them — plus a memoized per-user won/lost table
(DESIGN.md §3.8) that turns the scan into set intersections.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..model.dataset import Dataset
from ..model.objects import STObject, User
from ..spatial.geometry import Point
from .bounds import BoundCalculator, augmented_document, candidate_term_weight

__all__ = [
    "KeywordSelection",
    "compute_brstknn",
    "select_keywords_greedy",
    "select_keywords_exact",
    "greedy_max_coverage",
]


#: Result of one keyword-selection call: the chosen keyword set, the
#: users it actually wins, and how many combinations were scored (for
#: the benchmark instrumentation).
KeywordSelection = Tuple[FrozenSet[int], FrozenSet[int], int]


def compute_brstknn(
    dataset: Dataset,
    ox: STObject,
    location: Point,
    keywords: Iterable[int],
    users: Sequence[User],
    rsk: Mapping[int, float],
) -> FrozenSet[int]:
    """Users for whom ``ox`` at ``location`` with ``ox.d ∪ keywords``
    enters the top-k (``STS >= RSk(u)``, ties admit as in the paper)."""
    doc = augmented_document(ox.terms, keywords)
    winners = {
        u.item_id
        for u in users
        if dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
    }
    return frozenset(winners)


def greedy_max_coverage(
    sets: Mapping[int, Set[int]], budget: int
) -> Tuple[List[int], Set[int]]:
    """Plain greedy Maximum Coverage over ``{key: element-set}``.

    Picks up to ``budget`` keys, each step taking the key covering the
    most yet-uncovered elements (ties broken by key for determinism).
    Stops early when no key adds coverage.  Exposed separately so the
    property tests can verify the ``(1 − 1/e)`` guarantee directly.
    """
    chosen: List[int] = []
    covered: Set[int] = set()
    remaining = dict(sets)
    for _ in range(max(0, budget)):
        best_key, best_gain = None, 0
        for key in sorted(remaining):
            gain = len(remaining[key] - covered)
            if gain > best_gain:
                best_key, best_gain = key, gain
        if best_key is None:
            break
        chosen.append(best_key)
        covered |= remaining.pop(best_key)
    return chosen, covered


def select_keywords_greedy(
    dataset: Dataset,
    ox: STObject,
    location: Point,
    candidate_keywords: Sequence[int],
    ws: int,
    users: Sequence[User],
    rsk: Mapping[int, float],
) -> KeywordSelection:
    """Section 6.2.1: greedy approximate keyword selection at ``location``.

    ``users`` is the shortlist ``LU_l`` of Algorithm 3 (only they can be
    BRSTkNNs by the location upper bound); ``rsk`` maps user id to
    ``RSk(u)``.
    """
    rel = dataset.relevance
    cand_set = set(candidate_keywords)
    # Optimistic per-keyword weight (Lemma 3 style): candidate added to
    # ox.d alone.  Used to rank candidates inside HW_{w,u}.
    opt_weight = {t: candidate_term_weight(rel, ox.terms, t) for t in cand_set}

    luw: Dict[int, Set[int]] = {}
    scored = 0
    for user in users:
        useful = sorted(
            cand_set & user.keyword_set, key=lambda t: (-opt_weight[t], t)
        )
        if not useful:
            continue
        top = useful[: max(ws, 1)]
        for w in useful:
            # HW_{w,u}: ws highest-weight useful candidates, forced to
            # contain w.
            hw = list(top[: max(ws - 1, 0)]) if w not in top[: max(ws, 1)] else list(top[:ws])
            if w not in hw:
                hw = hw[: max(ws - 1, 0)] + [w]
            doc = augmented_document(ox.terms, hw)
            scored += 1
            if dataset.sts_parts(location, doc, user) >= rsk[user.item_id]:
                luw.setdefault(w, set()).add(user.item_id)

    best_set: FrozenSet[int] = frozenset()
    best_users = compute_brstknn(dataset, ox, location, best_set, users, rsk)

    coverage_estimate = 0
    if luw:
        chosen, covered = greedy_max_coverage(luw, ws)
        coverage_estimate = len(covered)
        # The LUW lists are optimistic, and under length-normalized
        # measures a longer keyword set can score *worse*; evaluating
        # every greedy prefix costs ws extra evaluations and only
        # improves the answer (the full set remains a candidate).
        for end in range(1, len(chosen) + 1):
            prefix = frozenset(chosen[:end])
            actual = compute_brstknn(dataset, ox, location, prefix, users, rsk)
            scored += 1
            if len(actual) > len(best_users):
                best_set, best_users = prefix, actual

    # Fallback pass: greedy on the *true* objective, run only when the
    # LUW optimism demonstrably misled — the actual wins fall well short
    # of the coverage estimate.  The LUW lists rank keywords by what
    # they could win under the most optimistic companion set, which can
    # fail when weights are skewed (TF-IDF) or heavily tied (KO).  The
    # pool is capped to the candidates with the largest LUW lists so the
    # pass stays a small constant number of actual BRSTkNN evaluations
    # (DESIGN.md §3); the better of the two greedy answers is returned.
    if luw and len(best_users) >= 0.8 * coverage_estimate:
        return best_set, best_users, scored
    ranked_pool = sorted(
        cand_set & {t for u in users for t in u.keyword_set},
        key=lambda t: (-len(luw.get(t, ())), t),
    )[: 2 * ws + 6]
    current: FrozenSet[int] = frozenset()
    current_users = compute_brstknn(dataset, ox, location, current, users, rsk)
    for _ in range(ws):
        step_set, step_users = None, current_users
        for w in ranked_pool:
            if w in current:
                continue
            trial = current | {w}
            winners = compute_brstknn(dataset, ox, location, trial, users, rsk)
            scored += 1
            if len(winners) > len(step_users):
                step_set, step_users = trial, winners
        if step_set is None:
            break
        current, current_users = step_set, step_users
    if len(current_users) > len(best_users):
        best_set, best_users = current, current_users
    return best_set, best_users, scored


def select_keywords_exact(
    dataset: Dataset,
    ox: STObject,
    location: Point,
    candidate_keywords: Sequence[int],
    ws: int,
    users: Sequence[User],
    rsk: Mapping[int, float],
    bounds: Optional[BoundCalculator] = None,
) -> KeywordSelection:
    """Algorithm 4: exact keyword selection with pruning at ``location``."""
    bounds = bounds or BoundCalculator(dataset)

    # Pruning 1+2: only shortlisted users; only candidates some
    # shortlisted user actually has.
    wu: Set[int] = set()
    for u in users:
        wu |= u.keyword_set
    useful = sorted(set(candidate_keywords) & wu)

    # Users already won by location alone count for every combination
    # (Algorithm 4 lines 4.6–4.7).
    always_in: Set[int] = set()
    contested: List[User] = []
    for u in users:
        if bounds.location_lower_user(location, ox, u) >= rsk[u.item_id]:
            always_in.add(u.item_id)
        else:
            contested.append(u)

    # Definition 1 asks for |W'| <= ws, and under length-normalized
    # measures (LM) adding a keyword can *lower* other term weights, so
    # a smaller set can strictly beat every size-ws set.  The paper's
    # Algorithm 4 enumerates only size-ws combinations (implicitly
    # assuming monotone text scores); to stay exact for all three
    # measures we enumerate every size from 0 up to ws.  See DESIGN.md.
    #
    # Scoring is memoized: for a fixed location and combo size s, a
    # user's STS depends only on (combo ∩ u.d, s) — the other combo
    # keywords contribute nothing but document length.  Each user has
    # at most 2^|W ∩ u.d| * ws reachable states, precomputed once, so
    # the combinatorial loop reduces to set intersections and lookups.
    best_set: FrozenSet[int] = frozenset()
    best_users: FrozenSet[int] = frozenset(
        compute_brstknn(dataset, ox, location, frozenset(), users, rsk)
    )
    scored = 1
    max_size = min(ws, len(useful))

    # won[user_index][(matched_subset, size)] -> bool
    won: List[Dict[Tuple[FrozenSet[int], int], bool]] = []
    user_useful: List[FrozenSet[int]] = []
    by_keyword: Dict[int, List[int]] = {t: [] for t in useful}
    fillers = [-(i + 1) for i in range(max_size)]  # pad terms outside any u.d
    for idx, u in enumerate(contested):
        ku = frozenset(set(useful) & u.keyword_set)
        user_useful.append(ku)
        table: Dict[Tuple[FrozenSet[int], int], bool] = {}
        threshold = rsk[u.item_id]
        subsets: List[Tuple[int, ...]] = [()]
        for t in sorted(ku):
            subsets += [s + (t,) for s in subsets]
        for sub in subsets:
            if not sub:
                continue
            for size in range(len(sub), max_size + 1):
                doc = augmented_document(ox.terms, sub)
                for f in fillers[: size - len(sub)]:
                    doc[f] = 1
                table[(frozenset(sub), size)] = (
                    dataset.sts_parts(location, doc, u) >= threshold
                )
        won.append(table)
        for t in ku:
            by_keyword[t].append(idx)

    base_count = len(always_in)
    for size in range(1, max_size + 1):
        for combo in combinations(useful, size):
            combo_set = frozenset(combo)
            count = base_count
            touched: Set[int] = set()
            for t in combo:
                for idx in by_keyword[t]:
                    if idx in touched:
                        continue
                    touched.add(idx)
                    matched = combo_set & user_useful[idx]
                    if won[idx][(matched, size)]:
                        count += 1
            scored += 1
            if count > len(best_users):
                winners = set(always_in)
                doc = augmented_document(ox.terms, combo_set)
                for u in contested:
                    if combo_set & u.keyword_set and (
                        dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
                    ):
                        winners.add(u.item_id)
                best_set = combo_set
                best_users = frozenset(winners)
    return best_set, best_users, scored
