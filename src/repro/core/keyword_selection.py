"""Candidate keyword selection: greedy approximation and pruned exact.

Lemma 1 reduces Maximum Coverage to keyword selection, so even with one
candidate location the problem is NP-hard.  Section 6.2 gives two
solvers, both implemented here:

**Greedy approximation (Section 6.2.1).**  For each candidate keyword
``w`` a user list ``LUW_w`` is precomputed: user ``u`` enters the list
when placing ``ox`` at the chosen location with the *most optimistic*
keyword set containing ``w`` (``HW_{w,u}``: the ``ws`` highest-weight
candidates from ``W ∩ u.d`` including ``w``) reaches ``RSk(u)``.  The
classic max-coverage greedy then picks ``ws`` keywords maximizing the
union of their lists; since the lists are optimistic, the *actual*
BRSTkNN of the chosen set is recomputed before the caller compares
candidates.  Greedy max coverage is the best possible polynomial
approximation (``1 − 1/e``) unless P = NP.

**Exact (Section 6.2.2, Algorithm 4).**  Enumerates combinations of
size up to ``ws`` (see DESIGN.md §3.5 on why "up to" rather than the
paper's "exactly") of the *useful* candidates (``W ∩ Wu`` where ``Wu``
is the union of the shortlisted users' keywords) with the paper's
prunings — users outside ``LU_l`` are never touched; a combination
is scored against a user only through a memoized per-user won/lost
table (DESIGN.md §3.8) keyed by ``(combo ∩ u.d, |combo|)``, which
turns the scan into set intersections.  The paper's further shortcut
(users won by location alone count for every combination, lines
4.6–4.7) is applied *per combination size* instead of globally: under
length-normalized measures a bare-document win can be lost again once
unmatched keywords dilute the document, so the global version
over-counts (the cross-method equivalence tests caught it against the
exhaustive baseline).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..model.dataset import Dataset
from ..model.objects import STObject, User
from ..spatial.geometry import Point
from .bounds import augmented_document, candidate_term_weight
from .kernels import arrays_for, resolve_backend

__all__ = [
    "KeywordSelection",
    "compute_brstknn",
    "select_keywords_greedy",
    "select_keywords_exact",
    "greedy_max_coverage",
]


#: Result of one keyword-selection call: the chosen keyword set, the
#: users it actually wins, and how many combinations were scored (for
#: the benchmark instrumentation).
KeywordSelection = Tuple[FrozenSet[int], FrozenSet[int], int]


def compute_brstknn(
    dataset: Dataset,
    ox: STObject,
    location: Point,
    keywords: Iterable[int],
    users: Sequence[User],
    rsk: Mapping[int, float],
    backend: str = "python",
) -> FrozenSet[int]:
    """Users for whom ``ox`` at ``location`` with ``ox.d ∪ keywords``
    enters the top-k (``STS >= RSk(u)``, ties admit as in the paper).

    ``backend="numpy"`` scores all users as one kernel call; the winner
    set is guaranteed identical to the scalar scan (guard-banded).
    """
    if resolve_backend(backend) == "numpy":
        return arrays_for(dataset).brstknn(ox, location, keywords, users, rsk)
    doc = augmented_document(ox.terms, keywords)
    winners = {
        u.item_id
        for u in users
        if dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
    }
    return frozenset(winners)


def greedy_max_coverage(
    sets: Mapping[int, Set[int]], budget: int
) -> Tuple[List[int], Set[int]]:
    """Plain greedy Maximum Coverage over ``{key: element-set}``.

    Picks up to ``budget`` keys, each step taking the key covering the
    most yet-uncovered elements (ties broken by key for determinism).
    Stops early when no key adds coverage.  Exposed separately so the
    property tests can verify the ``(1 − 1/e)`` guarantee directly.
    """
    chosen: List[int] = []
    covered: Set[int] = set()
    remaining = dict(sets)
    for _ in range(max(0, budget)):
        best_key, best_gain = None, 0
        for key in sorted(remaining):
            gain = len(remaining[key] - covered)
            if gain > best_gain:
                best_key, best_gain = key, gain
        if best_key is None:
            break
        chosen.append(best_key)
        covered |= remaining.pop(best_key)
    return chosen, covered


def select_keywords_greedy(
    dataset: Dataset,
    ox: STObject,
    location: Point,
    candidate_keywords: Sequence[int],
    ws: int,
    users: Sequence[User],
    rsk: Mapping[int, float],
    backend: str = "python",
    cache: Optional[Dict] = None,
) -> KeywordSelection:
    """Section 6.2.1: greedy approximate keyword selection at ``location``.

    ``users`` is the shortlist ``LU_l`` of Algorithm 3 (only they can be
    BRSTkNNs by the location upper bound); ``rsk`` maps user id to
    ``RSk(u)``.  ``cache`` is an optional per-query scratch dict
    (Algorithm 3 calls this once per candidate location): the optimistic
    keyword weights and each user's HW sets depend only on
    ``(ox, candidate_keywords, ws)``, so they are computed for the first
    location and replayed for the rest.
    """
    rel = dataset.relevance
    cache = cache if cache is not None else {}
    cand_set = cache.get("cand_set")
    if cand_set is None:
        cand_set = cache["cand_set"] = set(candidate_keywords)
    # Optimistic per-keyword weight (Lemma 3 style): candidate added to
    # ox.d alone.  Used to rank candidates inside HW_{w,u}.
    opt_weight = cache.get("opt_weight")
    if opt_weight is None:
        opt_weight = cache["opt_weight"] = {
            t: candidate_term_weight(rel, ox.terms, t) for t in cand_set
        }

    # HW_{w,u} evaluations, grouped by the augmented document they
    # score: distinct HW sets are few (subsets of the candidate pool of
    # size <= ws), so the numpy backend scores each document once
    # against all the users that need it instead of one scalar STS per
    # (user, w) pair — the hot loop of the greedy selector.
    hw_by_user: Dict[int, List[Tuple[FrozenSet[int], int]]] = cache.setdefault(
        "hw_by_user", {}
    )
    hw_evals: Dict[FrozenSet[int], List[Tuple[User, int]]] = {}
    scored = 0
    for user in users:
        entries = hw_by_user.get(user.item_id)
        if entries is None:
            entries = []
            useful = sorted(
                cand_set & user.keyword_set, key=lambda t: (-opt_weight[t], t)
            )
            top = useful[: max(ws, 1)]
            for w in useful:
                # HW_{w,u}: ws highest-weight useful candidates, forced
                # to contain w.
                hw = list(top[: max(ws - 1, 0)]) if w not in top[: max(ws, 1)] else list(top[:ws])
                if w not in hw:
                    hw = hw[: max(ws - 1, 0)] + [w]
                entries.append((frozenset(hw), w))
            hw_by_user[user.item_id] = entries
        for hw_set, w in entries:
            hw_evals.setdefault(hw_set, []).append((user, w))
            scored += 1

    luw: Dict[int, Set[int]] = {}
    if resolve_backend(backend) == "numpy" and hw_evals:
        arrays = arrays_for(dataset)
        groups = [
            (augmented_document(ox.terms, hw_set), members)
            for hw_set, members in hw_evals.items()
        ]
        masks = arrays.threshold_mask_many(
            location,
            [(doc, [u for u, _ in members]) for doc, members in groups],
            rsk,
        )
        for (_doc, members), passed in zip(groups, masks):
            for ok, (user, w) in zip(passed, members):
                if ok:
                    luw.setdefault(w, set()).add(user.item_id)
    else:
        for hw_set, members in hw_evals.items():
            doc = augmented_document(ox.terms, hw_set)
            for user, w in members:
                if dataset.sts_parts(location, doc, user) >= rsk[user.item_id]:
                    luw.setdefault(w, set()).add(user.item_id)

    best_set: FrozenSet[int] = frozenset()
    best_users = compute_brstknn(
        dataset, ox, location, best_set, users, rsk, backend=backend
    )

    coverage_estimate = 0
    if luw:
        chosen, covered = greedy_max_coverage(luw, ws)
        coverage_estimate = len(covered)
        # The LUW lists are optimistic, and under length-normalized
        # measures a longer keyword set can score *worse*; evaluating
        # every greedy prefix costs ws extra evaluations and only
        # improves the answer (the full set remains a candidate).
        for end in range(1, len(chosen) + 1):
            prefix = frozenset(chosen[:end])
            actual = compute_brstknn(
                dataset, ox, location, prefix, users, rsk, backend=backend
            )
            scored += 1
            if len(actual) > len(best_users):
                best_set, best_users = prefix, actual

    # Fallback pass: greedy on the *true* objective, run only when the
    # LUW optimism demonstrably misled — the actual wins fall well short
    # of the coverage estimate.  The LUW lists rank keywords by what
    # they could win under the most optimistic companion set, which can
    # fail when weights are skewed (TF-IDF) or heavily tied (KO).  The
    # pool is capped to the candidates with the largest LUW lists so the
    # pass stays a small constant number of actual BRSTkNN evaluations
    # (DESIGN.md §3); the better of the two greedy answers is returned.
    if luw and len(best_users) >= 0.8 * coverage_estimate:
        return best_set, best_users, scored
    ranked_pool = sorted(
        cand_set & {t for u in users for t in u.keyword_set},
        key=lambda t: (-len(luw.get(t, ())), t),
    )[: 2 * ws + 6]
    current: FrozenSet[int] = frozenset()
    current_users = compute_brstknn(
        dataset, ox, location, current, users, rsk, backend=backend
    )
    for _ in range(ws):
        step_set, step_users = None, current_users
        for w in ranked_pool:
            if w in current:
                continue
            trial = current | {w}
            winners = compute_brstknn(
                dataset, ox, location, trial, users, rsk, backend=backend
            )
            scored += 1
            if len(winners) > len(step_users):
                step_set, step_users = trial, winners
        if step_set is None:
            break
        current, current_users = step_set, step_users
    if len(current_users) > len(best_users):
        best_set, best_users = current, current_users
    return best_set, best_users, scored


def select_keywords_exact(
    dataset: Dataset,
    ox: STObject,
    location: Point,
    candidate_keywords: Sequence[int],
    ws: int,
    users: Sequence[User],
    rsk: Mapping[int, float],
    backend: str = "python",
) -> KeywordSelection:
    """Algorithm 4: exact keyword selection with pruning at ``location``."""
    # Pruning 1+2: only shortlisted users; only candidates some
    # shortlisted user actually has.
    wu: Set[int] = set()
    for u in users:
        wu |= u.keyword_set
    useful = sorted(set(candidate_keywords) & wu)

    # Definition 1 asks for |W'| <= ws, and under length-normalized
    # measures (LM) adding a keyword can *lower* other term weights, so
    # a smaller set can strictly beat every size-ws set.  The paper's
    # Algorithm 4 enumerates only size-ws combinations (implicitly
    # assuming monotone text scores); to stay exact for all three
    # measures we enumerate every size from 0 up to ws.  See DESIGN.md.
    #
    # Scoring is memoized: for a fixed location and combo size s, a
    # user's STS depends only on (combo ∩ u.d, s) — the other combo
    # keywords contribute nothing but document length, which filler
    # terms outside every u.d simulate exactly.  Each user has at most
    # 2^|W ∩ u.d| * ws reachable states, precomputed once, so the
    # combinatorial loop reduces to set intersections and lookups.
    #
    # NB: Algorithm 4's lines 4.6–4.7 count users whose location-only
    # lower bound meets RSk(u) for *every* combination.  That shortcut
    # is unsound for length-normalized measures: a user won by the bare
    # ``ox.d`` can lose it again once unmatched keywords dilute the
    # document.  The memo therefore also carries the *empty* matched
    # subset per size — the user's fate under a combination sharing
    # nothing with them — and per-size base counts replace the
    # "always in" set.
    best_set: FrozenSet[int] = frozenset()
    best_users: FrozenSet[int] = frozenset(
        compute_brstknn(dataset, ox, location, frozenset(), users, rsk, backend=backend)
    )
    scored = 1
    max_size = min(ws, len(useful))

    # won[user_index][(matched_subset, size)] -> bool.  Entries are
    # grouped by their (subset, size) document first: the numpy backend
    # scores each distinct padded document once against every user that
    # reaches that state, the scalar backend evaluates the same groups
    # pair by pair.
    won: List[Dict[Tuple[FrozenSet[int], int], bool]] = [{} for _ in users]
    user_useful: List[FrozenSet[int]] = []
    by_keyword: Dict[int, List[int]] = {t: [] for t in useful}
    fillers = [-(i + 1) for i in range(max_size)]  # pad terms outside any u.d
    states: Dict[Tuple[FrozenSet[int], int], List[int]] = {}
    for idx, u in enumerate(users):
        ku = frozenset(set(useful) & u.keyword_set)
        user_useful.append(ku)
        subsets: List[Tuple[int, ...]] = [()]
        for t in sorted(ku):
            subsets += [s + (t,) for s in subsets]
        for sub in subsets:
            for size in range(max(len(sub), 1), max_size + 1):
                states.setdefault((frozenset(sub), size), []).append(idx)
        for t in ku:
            by_keyword[t].append(idx)

    state_docs = []
    for (sub, size), indices in states.items():
        doc = augmented_document(ox.terms, sub)
        for f in fillers[: size - len(sub)]:
            doc[f] = 1
        state_docs.append(((sub, size), doc, indices))
    if resolve_backend(backend) == "numpy" and state_docs:
        arrays = arrays_for(dataset)
        masks = arrays.threshold_mask_many(
            location,
            [(doc, [users[idx] for idx in indices]) for _, doc, indices in state_docs],
            rsk,
        )
        for (key, _doc, indices), passed in zip(state_docs, masks):
            for idx, ok in zip(indices, passed):
                won[idx][key] = ok
    else:
        for key, doc, indices in state_docs:
            for idx in indices:
                u = users[idx]
                won[idx][key] = (
                    dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
                )

    # Users winning a size-s combination they share no keyword with.
    empty = frozenset()
    base_wins = [0] * (max_size + 1)
    for size in range(1, max_size + 1):
        base_wins[size] = sum(1 for table in won if table[(empty, size)])

    for size in range(1, max_size + 1):
        for combo in combinations(useful, size):
            combo_set = frozenset(combo)
            count = base_wins[size]
            touched: Set[int] = set()
            for t in combo:
                for idx in by_keyword[t]:
                    if idx in touched:
                        continue
                    touched.add(idx)
                    matched = combo_set & user_useful[idx]
                    count += won[idx][(matched, size)] - won[idx][(empty, size)]
            scored += 1
            if count > len(best_users):
                winners = set()
                doc = augmented_document(ox.terms, combo_set)
                for idx, u in enumerate(users):
                    if combo_set & u.keyword_set:
                        if dataset.sts_parts(location, doc, u) >= rsk[u.item_id]:
                            winners.add(u.item_id)
                    elif won[idx][(empty, size)]:
                        # Sharing nothing with the combo, the padded
                        # memo document scores term-for-term identically
                        # to the real augmented one.
                        winners.add(u.item_id)
                best_set = combo_set
                best_users = frozenset(winners)
    return best_set, best_users, scored
