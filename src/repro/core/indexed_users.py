"""MaxBRSTkNN with users on disk under an MIUR-tree (Section 7).

With the flat super-user, ``RSk(u)`` is computed for *every* user, even
those no candidate location can ever win.  Section 7 replaces the flat
group by a hierarchy: the MIUR-tree, whose root is exactly the
super-user and whose every node acts as the super-user of its subtree.

The processing is best-first over *locations* exactly as Algorithm 3,
except that a location's shortlist ``LU_l`` may contain whole user
*nodes*.  The node-level admission test uses

    ``UBL(l, node) >= RSk(node)``

where ``RSk(node)`` is the k-th best *lower* bound over the traversal's
**canonical** candidate pool w.r.t. the node's summary.  Both sides
bound every user in the subtree (``UBL(l, node) >= UBL(l, u)`` and
``RSk(node) <= RSk(u)``), so failing the test proves no user below can
be a BRSTkNN at ``l`` — the subtree is pruned without ever computing
individual top-k results.  Only nodes surviving for the currently most
promising location are expanded; leaves yield real users whose exact
``RSk(u)`` is then resolved from the joint traversal's pools
(Algorithm 2 on the node's user group).

Pool-independence (the PR 5 reformulation)
------------------------------------------
``RSk(node)`` used to be an order statistic over *whatever* candidate
pool the walk happened to keep — a ``k_max`` walk keeps a superset of a
dedicated ``k``-walk's pool, so sharing one walk across a mixed-k batch
would silently change node pruning thresholds, best-first visit order,
and tie winners.  The bound is now computed over the **canonical**
candidate set ``{o : UB(o, us) >= RSk_k(us)}`` in a total
(lower-bound desc, object id asc) order
(:func:`repro.core.joint_topk.canonical_candidates`): identical under
any qualifying walk, which is what lets indexed batches share one
``k_max`` pool (:class:`RootTraversal` now carries per-k derivations,
exactly like the joint :class:`~repro.core.batch.SharedTraversalPool`)
and lets the sharded engine fan the search out without changing a
single decision.

The search itself (:func:`indexed_search`) is a pure function of
``(user_tree, dataset, query, traversal, rsk_group)`` plus a page
store: forked workers run it against a
:meth:`~repro.storage.pager.PageStore.ledger_view` and return the
:class:`~repro.storage.pager.IOCharge` alongside the result, so the
engine's shared counter sees exactly the charges an in-process run
would have made.

The fraction of users whose top-k was never resolved is the paper's
"Users pruned (%)" metric (Figure 15).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..index.irtree import MIRTree
from ..index.miurtree import MIURTree, UserNodeView
from ..model.dataset import Dataset
from ..model.objects import SuperUser, User
from ..spatial.geometry import Point, Rect
from ..storage.pager import PageStore
from .bounds import BoundCalculator
from .joint_topk import (
    CandidateObject,
    JointTraversalResult,
    canonical_candidates,
    derive_rsk_group,
    individual_topk,
    joint_traversal,
)
from .kernels import resolve_backend
from .keyword_selection import select_keywords_exact, select_keywords_greedy
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = [
    "RootTraversal",
    "compute_root_traversal",
    "ensure_root_pool",
    "indexed_search",
    "indexed_users_maxbrstknn",
]

#: A shortlist entry: either a resolved user or a whole user node.
_Entry = Union[User, UserNodeView]


@dataclass
class _LocationState:
    """Mutable per-location shortlist during the best-first search."""

    location: Point
    entries: List[_Entry]

    def user_count(self) -> int:
        return sum(
            e.user_count if isinstance(e, UserNodeView) else 1 for e in self.entries
        )

    def has_nodes(self) -> bool:
        return any(isinstance(e, UserNodeView) for e in self.entries)


def _node_rsk(
    candidates: Sequence[CandidateObject],
    bounds: BoundCalculator,
    summary: SuperUser,
    k: int,
    pool_arrays=None,
) -> float:
    """``RSk(node)``: k-th best canonical-candidate lower bound.

    Lower bounds w.r.t. a subtree summary under-estimate every member
    user's STS, so the k-th best is <= every member's true ``RSk(u)``.
    ``candidates`` must be the canonical per-k set
    (:func:`~repro.core.joint_topk.canonical_candidates`) — a total,
    pool-size-independent order — so the value is identical whether the
    pool came from a dedicated ``k``-walk or a shared ``k_max`` walk.
    (The canonical set always holds >= k members when any walk kept k:
    the walk's own top-k lower bounds all clear the group threshold.)

    ``pool_arrays`` injects a
    :class:`~repro.core.kernels.CandidatePoolArrays` built over the
    *same* canonical set (numpy backend): the per-node scalar loop
    collapses into a few array passes with **bitwise identical** bound
    values — the PR 3 convention, so the best-first search visits the
    same nodes in the same order either way.
    """
    if pool_arrays is not None:
        return pool_arrays.node_rsk(summary, k)
    lows: List[float] = []
    for cand in candidates:
        rect = Rect.from_point(cand.obj.location)
        lows.append(bounds.node_lower(rect, cand.weights, summary))
    if len(lows) < k:
        return 0.0
    lows.sort(reverse=True)
    return lows[k - 1]


@dataclass
class RootTraversal:
    """Query-independent phase-1 state for indexed queries — cross-k.

    The joint traversal of the object tree against the MIUR-tree root
    summary depends only on ``(dataset, k)`` — the root's summary *is*
    the super-user of all users — and, since the node-RSk
    reformulation, its ``k``-walk pool serves **every smaller k** too:
    per-user thresholds resolve by subsumption (Algorithm 2 over a
    qualifying superset pool is value-identical), the group threshold
    derives per k, and node-level pruning reads the canonical per-k
    candidate set.  Batched indexed queries therefore share ONE walk at
    ``k_max`` (planned by :func:`repro.core.planner.plan_batch`,
    memoized on the engine exactly like the joint-mode
    :class:`~repro.core.batch.SharedTraversalPool`).
    """

    k: int
    traversal: JointTraversalResult
    topk_time_s: float
    io_node_visits: int
    io_invfile_blocks: int
    hits: int = 0  # queries served from this entry (introspection)
    #: Per-k derivations, memoized: group threshold, canonical pool,
    #: and (numpy) the flattened pool arrays the node-RSk kernel reads.
    _rsk_group_by_k: Dict[int, float] = field(default_factory=dict)
    _canonical_by_k: Dict[int, List[CandidateObject]] = field(default_factory=dict)
    _arrays_by_k: Dict[int, object] = field(default_factory=dict)

    def rsk_group_for(self, k: int) -> float:
        value = self._rsk_group_by_k.get(k)
        if value is None:
            value = derive_rsk_group(self.traversal, self.k, k)
            self._rsk_group_by_k[k] = value
        return value

    def canonical_for(self, k: int) -> List[CandidateObject]:
        pool = self._canonical_by_k.get(k)
        if pool is None:
            pool = canonical_candidates(self.traversal, self.rsk_group_for(k))
            self._canonical_by_k[k] = pool
        return pool

    def pool_arrays_for(self, dataset: Dataset, k: int):
        arrays = self._arrays_by_k.get(k)
        if arrays is None:
            from .kernels import CandidatePoolArrays

            arrays = CandidatePoolArrays(dataset, self.canonical_for(k))
            self._arrays_by_k[k] = arrays
        return arrays


def compute_root_traversal(
    object_tree: MIRTree,
    user_tree: MIURTree,
    dataset: Dataset,
    k: int,
    store: Optional[PageStore] = None,
    backend: str = "python",
) -> RootTraversal:
    """Run the shared phase once: joint traversal vs the root summary.

    ``backend="numpy"`` uses the wave-vectorized frontier traversal
    (bitwise-identical pools and I/O; see :mod:`repro.core.kernels`).
    """
    counter = store.counter if store is not None else None
    before = counter.snapshot() if counter is not None else None
    t0 = time.perf_counter()
    traversal = joint_traversal(
        object_tree, dataset, k, super_user=user_tree.root.summary, store=store,
        backend=backend,
    )
    elapsed = time.perf_counter() - t0
    if counter is not None:
        delta = counter.snapshot() - before
        node_visits, invfile_blocks = delta.node_visits, delta.invfile_blocks
    else:
        node_visits = invfile_blocks = 0
    return RootTraversal(
        k=k,
        traversal=traversal,
        topk_time_s=elapsed,
        io_node_visits=node_visits,
        io_invfile_blocks=invfile_blocks,
    )


def ensure_root_pool(engine, k: int, backend: str) -> RootTraversal:
    """The engine's cross-k MIUR-root pool, (re)walked only when ``k``
    outgrows it — the indexed twin of
    :func:`repro.core.batch._ensure_traversal_pool`."""
    pool = engine._root_pool
    if pool is None or pool.k < k:
        assert engine.user_tree is not None  # planner validated
        pool = compute_root_traversal(
            engine.object_tree, engine.user_tree, engine.dataset, k,
            store=engine.store, backend=backend,
        )
        engine.traversal_runs += 1
        engine._root_pool = pool
    return pool


def indexed_search(
    user_tree: MIURTree,
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    traversal: JointTraversalResult,
    rsk_group: float,
    stats: QueryStats,
    method: str = "approx",
    backend: str = "python",
    store: Optional[PageStore] = None,
    canonical: Optional[Sequence[CandidateObject]] = None,
    pool_arrays=None,
) -> MaxBRSTkNNResult:
    """The per-query best-first MIUR search (Section 7, phase 2).

    A pure function of its arguments plus the page store it charges:
    ``traversal`` is any qualifying walk's pool (``walk k >= query.k``),
    ``rsk_group`` the per-k group threshold derived from it, and
    ``canonical`` / ``pool_arrays`` optionally inject the (memoized)
    canonical per-k candidate set — every decision is identical for any
    qualifying pool, which is what lets batch execution share one
    ``k_max`` walk and fan this search out to forked workers against
    :meth:`~repro.storage.pager.PageStore.ledger_view` stores.

    ``stats`` must arrive primed with the phase-1 fields
    (``users_total``, ``topk_time_s``, ``io_*``); the search adds its
    own selection time, I/O delta, and pruning counters.
    """
    backend = resolve_backend(backend)
    bounds = BoundCalculator(dataset)
    root = user_tree.root
    io_counter = store.counter if store is not None else None
    search_before = io_counter.snapshot() if io_counter is not None else None
    search_t0 = time.perf_counter()

    if canonical is None:
        canonical = canonical_candidates(traversal, rsk_group)
    if pool_arrays is None and backend == "numpy":
        from .kernels import CandidatePoolArrays

        pool_arrays = CandidatePoolArrays(dataset, canonical)

    # Per-resolved-user exact thresholds, filled lazily per leaf group.
    rsk: Dict[int, float] = {}
    resolved_users: Dict[int, User] = {}

    def resolve_users(users: Sequence[User]) -> None:
        """Algorithm 2 restricted to one leaf's user group."""
        fresh = [u for u in users if u.item_id not in rsk]
        if not fresh:
            return
        results = individual_topk(
            traversal, dataset, query.k, users=fresh, backend=backend
        )
        for u in fresh:
            rsk[u.item_id] = results[u.item_id].kth_score
            resolved_users[u.item_id] = u

    # Node-level RSk cache over the canonical per-k candidate set.
    node_rsk_cache: Dict[int, float] = {}

    def rsk_of_node(view: UserNodeView) -> float:
        val = node_rsk_cache.get(view.page_id)
        if val is None:
            val = _node_rsk(
                canonical, bounds, view.summary, query.k, pool_arrays=pool_arrays
            )
            node_rsk_cache[view.page_id] = val
        return val

    def admits(loc: Point, entry: _Entry) -> bool:
        if isinstance(entry, UserNodeView):
            ub = bounds.location_upper_group(
                loc, query.ox, query.keywords, query.ws, entry.summary
            )
            return ub >= rsk_of_node(entry)
        ub = bounds.location_upper_user(loc, query.ox, query.keywords, query.ws, entry)
        return ub >= rsk[entry.item_id]

    # Step 2: initialize every location's shortlist with the root,
    # pruning whole locations by the group bound first.
    states: List[_LocationState] = []
    for loc in query.locations:
        ub = bounds.location_upper_group(
            loc, query.ox, query.keywords, query.ws, root.summary
        )
        if ub < rsk_group:
            stats.locations_pruned += 1
            continue
        states.append(_LocationState(location=loc, entries=[root]))

    counter = itertools.count()
    heap: List[Tuple[int, int, _LocationState]] = []
    for st in states:
        heapq.heappush(heap, (-st.user_count(), next(counter), st))

    best_location: Optional[Point] = None
    best_keywords: FrozenSet[int] = frozenset()
    best_users: FrozenSet[int] = frozenset()
    selector: Callable = (
        select_keywords_greedy if method == "approx" else select_keywords_exact
    )
    selector_kwargs = {"backend": backend}
    if method == "approx":
        selector_kwargs["cache"] = {}

    while heap:
        neg_count, _, st = heapq.heappop(heap)
        if -neg_count <= len(best_users):
            break  # early termination on the cardinality upper bound
        if st.has_nodes():
            # Expand the node with the most users below it (Section 7,
            # step 1), then refresh *every* state containing it so each
            # MIUR-tree node is read at most once.
            node = max(
                (e for e in st.entries if isinstance(e, UserNodeView)),
                key=lambda v: v.user_count,
            )
            child_views, leaf_users = user_tree.read_children(node, store)
            if leaf_users:
                resolve_users(leaf_users)
            replacements: List[_Entry] = list(child_views) + list(leaf_users)
            for other in states:
                if any(
                    isinstance(e, UserNodeView) and e.page_id == node.page_id
                    for e in other.entries
                ):
                    kept = [
                        e
                        for e in other.entries
                        if not (
                            isinstance(e, UserNodeView) and e.page_id == node.page_id
                        )
                    ]
                    kept.extend(
                        r for r in replacements if admits(other.location, r)
                    )
                    other.entries = kept
            # Re-enqueue this state with its refreshed count.
            heapq.heappush(heap, (-st.user_count(), next(counter), st))
            continue
        # All entries are resolved users: run keyword selection.
        users_l = [e for e in st.entries if isinstance(e, User)]
        if not users_l:
            continue
        local_rsk = {u.item_id: rsk[u.item_id] for u in users_l}
        keywords, winners, scored = selector(
            dataset, query.ox, st.location, query.keywords, query.ws, users_l,
            local_rsk, **selector_kwargs,
        )
        stats.keyword_combinations_scored += scored
        if len(winners) > len(best_users):
            best_location, best_keywords, best_users = st.location, keywords, winners

    stats.users_pruned = stats.users_total - len(rsk)
    stats.selection_time_s = time.perf_counter() - search_t0
    if io_counter is not None:
        search_delta = io_counter.snapshot() - search_before
        stats.io_node_visits += search_delta.node_visits
        stats.io_invfile_blocks += search_delta.invfile_blocks
    if best_location is None and query.locations:
        best_location = query.locations[0]
    return MaxBRSTkNNResult(
        location=best_location,
        keywords=best_keywords,
        brstknn=best_users,
        stats=stats,
    )


def indexed_users_maxbrstknn(
    object_tree: MIRTree,
    user_tree: MIURTree,
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    method: str = "approx",
    store: Optional[PageStore] = None,
    backend: str = "python",
    shared: Optional[RootTraversal] = None,
) -> MaxBRSTkNNResult:
    """Answer a MaxBRSTkNN query with both sets on (simulated) disk.

    ``shared`` injects a precomputed phase-1 :class:`RootTraversal`
    walked at any ``k >= query.k`` (batch execution: the cross-k pool);
    when omitted the traversal runs here, cold, at ``query.k``.  The
    per-query best-first search always starts from fresh caches, and
    every per-k quantity it reads is derived pool-independently, so
    results *and stats* are identical either way (top-k phase I/O
    reports the walk that actually produced the pool, like joint-mode
    batches).
    """
    if method not in ("approx", "exact"):
        raise ValueError(f"unknown keyword-selection method {method!r}")
    backend = resolve_backend(backend)
    if shared is None:
        shared = compute_root_traversal(
            object_tree, user_tree, dataset, query.k, store=store, backend=backend
        )
    stats = QueryStats(
        users_total=len(user_tree),
        topk_time_s=shared.topk_time_s,
        io_node_visits=shared.io_node_visits,
        io_invfile_blocks=shared.io_invfile_blocks,
    )
    pool_arrays = (
        shared.pool_arrays_for(dataset, query.k) if backend == "numpy" else None
    )
    return indexed_search(
        user_tree,
        dataset,
        query,
        shared.traversal,
        shared.rsk_group_for(query.k),
        stats,
        method=method,
        backend=backend,
        store=store,
        canonical=shared.canonical_for(query.k),
        pool_arrays=pool_arrays,
    )
