"""Joint top-k processing over the MIR-tree (Section 5, Algorithms 1–2).

The baseline runs one top-k query per user and pays for every page again
and again.  The joint algorithm traverses the MIR-tree **once** for the
whole user group:

1. **Tree traversal (Algorithm 1).**  The group is summarized by the
   super-user ``us``.  Nodes are dequeued from a max-priority queue
   keyed by their *lower bound* ``LB(E, us)`` (best-lower-bound first,
   so strong thresholds form early).  Two object pools are maintained:

   * ``LO`` — a min-heap of the k objects with the best lower bounds
     seen so far; ``RSk(us)``, the k-th best lower bound, is the global
     pruning threshold;
   * ``RO`` — objects displaced from (or never admitted to) ``LO``
     whose *upper* bound still reaches ``RSk(us)``; they may yet belong
     to some individual user's top-k.

   A node or object whose upper bound falls below ``RSk(us)`` is
   discarded: ``LO`` already holds k objects that every user scores at
   least ``RSk(us)``, while no user can score the discarded entry that
   high (Lemma 2), so it can appear in nobody's top-k.

2. **Individual refinement (Algorithm 2).**  For each user the exact
   STS is computed against the ``LO`` objects, then the ``RO`` objects
   are scanned in descending upper bound with a per-user early break
   once ``UB(o, us) < RSk(u)`` (Example 4's stopping rule — every later
   object has an even smaller upper bound).

The result is identical to running the baseline per user (the gold
tests check this), at a fraction of the I/O.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..index.irtree import IRTree, MIRTree
from ..model.dataset import Dataset
from ..model.objects import STObject, SuperUser, User
from ..spatial.geometry import Rect
from ..storage.pager import PageStore
from ..topk.single import TopKResult
from .bounds import BoundCalculator
from .kernels import arrays_for, resolve_backend

__all__ = [
    "CandidateObject",
    "JointTraversalResult",
    "joint_traversal",
    "individual_topk",
    "joint_topk",
    "derive_rsk_group",
    "canonical_candidates",
]


@dataclass(slots=True)
class CandidateObject:
    """An object surviving the traversal, with its group-level bounds."""

    obj: STObject
    lower: float
    upper: float
    #: Actual term weights restricted to the group's union keywords.
    weights: Dict[int, Tuple[float, float]] = field(default_factory=dict)


@dataclass(slots=True)
class JointTraversalResult:
    """Output of Algorithm 1: the candidate pools and the threshold."""

    lo: List[CandidateObject]  # the k best-lower-bound objects
    ro: List[CandidateObject]  # descending upper bound
    rsk_group: float  # RSk(us)

    def all_candidates(self) -> List[CandidateObject]:
        return self.lo + self.ro


def joint_traversal(
    tree: MIRTree | IRTree,
    dataset: Dataset,
    k: int,
    super_user: Optional[SuperUser] = None,
    store: Optional[PageStore] = None,
    backend: str = "python",
) -> JointTraversalResult:
    """Algorithm 1: single best-lower-bound-first traversal for a group.

    ``super_user`` defaults to the dataset-wide super-user; the
    MIUR-tree mode of Section 7 passes node summaries instead.

    ``backend="numpy"`` runs the wave-vectorized frontier traversal: the
    tree's entry bounds are evaluated against ``su`` in a handful of
    array passes over the flattened :class:`~repro.core.kernels.TreeArrays`
    (built once per tree), and the frontier loop prunes each expanded
    node's children as one vectorized wave.  The kernels are bitwise
    identical to the scalar :class:`BoundCalculator` (see the exactness
    contract in :mod:`repro.core.kernels`), so the returned pools,
    ``rsk_group``, and every simulated-I/O charge match the python
    backend exactly.
    """
    if k <= 0:
        return JointTraversalResult(lo=[], ro=[], rsk_group=0.0)
    su = dataset.super_user if super_user is None else super_user
    if resolve_backend(backend) == "numpy":
        return _joint_traversal_numpy(tree, dataset, k, su, store)
    bounds = BoundCalculator(dataset)

    counter = itertools.count()
    # Max-heap on the lower bound (negated); holds nodes and objects.
    pq: List[Tuple[float, int, object]] = []
    root = tree.root
    heapq.heappush(pq, (0.0, next(counter), ("node", root)))

    # LO: min-heap of (lower_bound, tiebreak, CandidateObject), size <= k.
    lo_heap: List[Tuple[float, int, CandidateObject]] = []
    ro: List[CandidateObject] = []
    rsk = float("-inf")

    def admit(cand: CandidateObject) -> None:
        """Lines 1.9–1.18: maintain LO/RO and the RSk(us) threshold."""
        nonlocal rsk
        if len(lo_heap) < k:
            heapq.heappush(lo_heap, (cand.lower, next(counter), cand))
            if len(lo_heap) == k:
                rsk = lo_heap[0][0]
            return
        if cand.upper < rsk:
            return  # cannot be in any user's top-k
        if cand.lower > lo_heap[0][0]:
            _, __, displaced = heapq.heapreplace(
                lo_heap, (cand.lower, next(counter), cand)
            )
            rsk = lo_heap[0][0]
            if displaced.upper >= rsk:
                ro.append(displaced)
        else:
            ro.append(cand)

    while pq:
        neg_lb, _, payload = heapq.heappop(pq)
        kind, item = payload  # type: ignore[misc]
        if kind == "object":
            admit(item)  # type: ignore[arg-type]
            continue
        node = item
        # Line 1.20: expand only while the node may contribute.
        children, objects = tree.read_node(node, su.union_terms, store)
        for ov in objects:
            rect = Rect.from_point(ov.obj.location)
            ub = bounds.node_upper(rect, ov.weights, su)
            if len(lo_heap) >= k and ub < rsk:
                continue
            lb = bounds.node_lower(rect, ov.weights, su)
            cand = CandidateObject(obj=ov.obj, lower=lb, upper=ub, weights=ov.weights)
            heapq.heappush(pq, (-lb, next(counter), ("object", cand)))
        for cv in children:
            ub = bounds.node_upper(cv.node.rect, cv.weights, su)
            if len(lo_heap) >= k and ub < rsk:
                continue
            lb = bounds.node_lower(cv.node.rect, cv.weights, su)
            heapq.heappush(pq, (-lb, next(counter), ("node", cv.node)))

    lo = [cand for _, __, cand in sorted(lo_heap, key=lambda t: -t[0])]
    ro.sort(key=lambda c: -c.upper)
    return JointTraversalResult(
        lo=lo, ro=ro, rsk_group=(rsk if rsk != float("-inf") else 0.0)
    )


def _joint_traversal_numpy(
    tree: MIRTree | IRTree,
    dataset: Dataset,
    k: int,
    su: SuperUser,
    store: Optional[PageStore],
) -> JointTraversalResult:
    """Wave-vectorized Algorithm 1 over the flattened tree arrays.

    The control flow mirrors the scalar traversal statement for
    statement — same priority-queue discipline, same tie-breaking
    counter sequence, same admit logic — but every bound is an O(1)
    lookup into :meth:`TreeArrays.frontier_bounds` (one vectorized wave
    over all tree entries per traversal), each expanded node's children
    are pruned with one array comparison, and node visits charge their
    precomputed inverted-list blocks instead of walking the inverted
    files.  Because the bound values are bitwise identical to the
    scalar path, every decision — and therefore the pools, the
    threshold, and the I/O trace — is identical too.
    """
    from .kernels import tree_arrays_for

    ta = tree_arrays_for(tree)
    fb = ta.frontier_bounds(dataset, su, store=store)
    lb_arr, ub_arr = fb.lb, fb.ub  # python lists: O(1) cheap reads

    counter = itertools.count()
    # PQ payload encoding: >= 0 is an object's entry index; < 0 is a
    # node encoded as -(node_index + 1).  Unique counters mean payloads
    # are never compared.
    pq: List[Tuple[float, int, int]] = []
    heapq.heappush(pq, (0.0, next(counter), -(ta.root_index + 1)))

    lo_heap: List[Tuple[float, int, CandidateObject]] = []
    ro: List[CandidateObject] = []
    rsk = float("-inf")

    def make_cand(idx: int, lower: float, upper: float) -> CandidateObject:
        return CandidateObject(
            obj=ta.ent_payload[idx], lower=lower, upper=upper,
            weights=fb.weights_of(idx),
        )

    def admit(lower: float, upper: float, idx: int) -> None:
        """Lines 1.9–1.18, with the CandidateObject built only when the
        entry actually enters a pool (dropped entries never need the
        weight dict)."""
        nonlocal rsk
        if len(lo_heap) < k:
            heapq.heappush(lo_heap, (lower, next(counter), make_cand(idx, lower, upper)))
            if len(lo_heap) == k:
                rsk = lo_heap[0][0]
            return
        if upper < rsk:
            return
        if lower > lo_heap[0][0]:
            _, __, displaced = heapq.heapreplace(
                lo_heap, (lower, next(counter), make_cand(idx, lower, upper))
            )
            rsk = lo_heap[0][0]
            if displaced.upper >= rsk:
                ro.append(displaced)
        else:
            ro.append(make_cand(idx, lower, upper))

    while pq:
        neg_lb, _, code = heapq.heappop(pq)
        if code >= 0:
            admit(lb_arr[code], ub_arr[code], code)
            continue
        nidx = -code - 1
        node = ta.nodes[nidx]
        if store is not None:
            if fb.node_blocks is not None:
                # Cold store: charge the node visit plus the exact block
                # count the scalar read_node would have accumulated.
                store.counter.visit_node()
                store.counter.load_blocks(fb.node_blocks[nidx])
            else:
                store.read_node(ta.index_name, node.page_id)
                tree.invfile_of(node).charge_lists(
                    store, ta.index_name, node.page_id, su.union_terms
                )
        start, end = ta.node_start[nidx], ta.node_end[nidx]
        if len(lo_heap) >= k:
            # Prune the node's whole child wave against RSk(us); the
            # bounds themselves were one vectorized evaluation.
            survivors = [i for i in range(start, end) if ub_arr[i] >= rsk]
        else:
            survivors = range(start, end)
        if ta.node_is_leaf[nidx]:
            for i in survivors:
                heapq.heappush(pq, (-lb_arr[i], next(counter), i))
        else:
            child = ta.ent_child
            for i in survivors:
                heapq.heappush(pq, (-lb_arr[i], next(counter), -(child[i] + 1)))

    lo = [cand for _, __, cand in sorted(lo_heap, key=lambda t: -t[0])]
    ro.sort(key=lambda c: -c.upper)
    return JointTraversalResult(
        lo=lo, ro=ro, rsk_group=(rsk if rsk != float("-inf") else 0.0)
    )


def derive_rsk_group(traversal: JointTraversalResult, walk_k: int, k: int) -> float:
    """``RSk(us)`` at ``k`` from a traversal walked at ``walk_k >= k``.

    For ``k == walk_k`` it is the walk's own threshold; for smaller
    ``k`` it is the k-th best candidate lower bound over the pool —
    exactly the value a dedicated ``k``-walk converges to.  The value
    is **pool-independent**: any pool superset still contains every
    object whose lower bound ranks top-``k`` (such an object has
    ``UB >= LB >= RSk(us) >= RSk_walk(us)``, so no walk at ``walk_k``
    prunes it), and extra candidates sit strictly below the k-th rank.
    Shared by joint cross-k pool sharing (:mod:`repro.core.batch`), the
    sharded gather, and the indexed MIUR-root pool
    (:mod:`repro.core.indexed_users`).
    """
    if k > walk_k:
        raise ValueError(f"pool walked at k={walk_k} cannot serve k={k}")
    if k == walk_k:
        return traversal.rsk_group
    lows = sorted((c.lower for c in traversal.all_candidates()), reverse=True)
    return lows[k - 1] if 0 < k <= len(lows) else 0.0


def canonical_candidates(
    traversal: JointTraversalResult, rsk_group: float
) -> List[CandidateObject]:
    """The pool-independent candidate set at one ``k``.

    ``{o : UB(o, us) >= RSk_k(us)}``, read off any pool walked at
    ``walk_k >= k`` by filtering on the group upper bound.  The
    traversal only ever prunes entries whose upper bound is below its
    (monotone-increasing, hence final) threshold, so every object in
    this set survives *any* qualifying walk — the filtered set, and
    therefore every bound computed over it, is identical whether the
    pool came from a dedicated ``k``-walk or a shared ``k_max`` walk.
    This is what makes node-level ``RSk`` pruning (Section 7)
    tie-break-stable under cross-k pool sharing: the k-th best node
    lower bound is an order statistic of a *canonical* multiset.
    Candidates are returned in a total, pool-independent order —
    (lower bound desc, object id asc) — so downstream consumers never
    see pool-dependent tie ordering.
    """
    kept = [c for c in traversal.all_candidates() if c.upper >= rsk_group]
    kept.sort(key=lambda c: (-c.lower, c.obj.item_id))
    return kept


def individual_topk(
    traversal: JointTraversalResult,
    dataset: Dataset,
    k: int,
    users: Optional[Sequence[User]] = None,
    backend: str = "python",
) -> Dict[int, TopKResult]:
    """Algorithm 2: refine the candidate pools into per-user top-k lists.

    ``LO`` objects are scored exactly for every user; ``RO`` objects are
    scanned in descending group upper bound and the scan stops per user
    as soon as ``UB(o, us) < RSk(u)`` — no later object can qualify.

    ``backend="numpy"`` scores the whole user x candidate pool as one
    matrix (see :mod:`repro.core.kernels`); the selected top-k entries
    are re-scored through the scalar path so the returned scores — and
    hence every downstream ``RSk(u)`` threshold — are bitwise identical
    to the python backend.
    """
    users = dataset.users if users is None else users
    out: Dict[int, TopKResult] = {}
    if k <= 0:
        return {u.item_id: TopKResult(user_id=u.item_id, ranked=[]) for u in users}
    if resolve_backend(backend) == "numpy":
        return _individual_topk_numpy(traversal, dataset, k, users)
    for user in users:
        # Min-heap of the k best (score, -object_id).
        best: List[Tuple[float, int]] = []
        for cand in traversal.lo:
            score = dataset.sts(cand.obj, user)
            entry = (score, -cand.obj.item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
        rsk_u = best[0][0] if len(best) >= k else float("-inf")
        for cand in traversal.ro:
            if len(best) >= k and cand.upper < rsk_u:
                break  # Example 4's per-user early termination
            score = dataset.sts(cand.obj, user)
            entry = (score, -cand.obj.item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            rsk_u = best[0][0] if len(best) >= k else float("-inf")
        ranked = sorted(((s, -negid) for s, negid in best), key=lambda t: (-t[0], t[1]))
        out[user.item_id] = TopKResult(user_id=user.item_id, ranked=ranked)
    return out


def _individual_topk_numpy(
    traversal: JointTraversalResult,
    dataset: Dataset,
    k: int,
    users: Sequence[User],
) -> Dict[int, TopKResult]:
    """Vectorized Algorithm 2: one score matrix, then per-user selection.

    The early-termination scan of the python backend only skips objects
    that provably cannot enter a top-k, so scoring the full pool yields
    the same candidates.  Selection is guard-banded like every other
    decision kernel: a candidate is *surely out* only when its array
    score trails the k-th best by more than ``GUARD_EPS``; everything
    else — a superset of the scalar top-k — is re-scored through the
    scalar path and selected with the scalar heap's exact key, so the
    returned lists (and the ``RSk(u)`` thresholds read from them) are
    bitwise identical to the python backend, ties included.
    """
    import numpy as np

    from .kernels import GUARD_EPS

    cands = traversal.all_candidates()
    if not cands:
        return {u.item_id: TopKResult(user_id=u.item_id, ranked=[]) for u in users}
    arrays = arrays_for(dataset)
    rows = arrays.rows_for(users)
    scores = arrays.candidate_score_matrix(cands, rows)
    obj_ids = np.array([c.obj.item_id for c in cands], dtype=np.int64)
    out: Dict[int, TopKResult] = {}
    for row, user in enumerate(users):
        srow = scores[row]
        if len(cands) > k:
            kth = -np.partition(-srow, k - 1)[k - 1]
            contenders = np.nonzero(srow >= kth - GUARD_EPS)[0]
        else:
            contenders = np.arange(len(cands))
        # Scalar re-score of the contenders, scalar selection key.
        ranked = sorted(
            ((dataset.sts(cands[j].obj, user), int(obj_ids[j])) for j in contenders),
            key=lambda t: (-t[0], t[1]),
        )[:k]
        out[user.item_id] = TopKResult(user_id=user.item_id, ranked=ranked)
    return out


def joint_topk(
    tree: MIRTree | IRTree,
    dataset: Dataset,
    k: int,
    store: Optional[PageStore] = None,
    backend: str = "python",
) -> Dict[int, TopKResult]:
    """Sections 5.4's full pipeline: traversal + individual refinement."""
    traversal = joint_traversal(tree, dataset, k, store=store, backend=backend)
    return individual_topk(traversal, dataset, k, backend=backend)
