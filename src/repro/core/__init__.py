"""The paper's primary contribution: MaxBRSTkNN query processing."""

from .baseline import baseline_maxbrstknn, baseline_select_candidate
from .batch import SharedTopK, SharedTraversalPool, query_batch
from .bounds import BoundCalculator, augmented_document
from .candidate_selection import select_candidate, shortlist_locations
from .engine import MaxBRSTkNNEngine
from .extensions import Placement, collective_placement, top_placements
from .indexed_users import indexed_users_maxbrstknn
from .joint_topk import individual_topk, joint_topk, joint_traversal
from .kernels import (
    BACKENDS,
    HAS_NUMPY,
    DatasetArrays,
    TreeArrays,
    arrays_for,
    resolve_backend,
    tree_arrays_for,
)
from .keyword_selection import (
    compute_brstknn,
    greedy_max_coverage,
    select_keywords_exact,
    select_keywords_greedy,
)
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = [
    "BACKENDS",
    "BoundCalculator",
    "DatasetArrays",
    "HAS_NUMPY",
    "MaxBRSTkNNEngine",
    "MaxBRSTkNNQuery",
    "MaxBRSTkNNResult",
    "Placement",
    "QueryStats",
    "SharedTopK",
    "SharedTraversalPool",
    "TreeArrays",
    "arrays_for",
    "tree_arrays_for",
    "augmented_document",
    "baseline_maxbrstknn",
    "baseline_select_candidate",
    "collective_placement",
    "compute_brstknn",
    "greedy_max_coverage",
    "indexed_users_maxbrstknn",
    "individual_topk",
    "joint_topk",
    "joint_traversal",
    "query_batch",
    "resolve_backend",
    "select_candidate",
    "select_keywords_exact",
    "select_keywords_greedy",
    "shortlist_locations",
    "top_placements",
]
