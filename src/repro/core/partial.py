"""Mergeable per-shard results for sharded MaxBRSTkNN execution.

The sharded serving layer (``repro.serve.sharded``) partitions the
*user* set across N engines and runs the two O(|U|) phases per shard:

* **refine** (Algorithm 2): each shard resolves exact ``RSk(u)``
  thresholds for *its* users against the one shared traversal pool —
  per-user work, independent across users, so per-shard maps are a
  disjoint cover of the sequential map and merge by plain union;
* **shortlist** (Algorithm 3's per-user admission test): each shard
  evaluates ``UBL(l, u) >= RSk(u)`` for its users at every surviving
  candidate location — again per-user, so per-shard shortlists
  concatenate into the sequential ``LU_l`` exactly.

Everything *aggregate*-dependent (the group threshold ``RSk(us)``, the
best-first search with its ``|LU_l|`` heap and tie-breaks) runs once on
the merged data, which is why sharded answers are identical to the
single-engine answers: the merge reconstructs the sequential inputs bit
for bit, and the sequential code consumes them.

Determinism contract of the merge
---------------------------------
* ``RSk(u)`` values merge keyed by original user id (stable remapping:
  shards never renumber users), and a user id appearing in two partials
  is an error, not a last-write-wins.
* Each merged ``LU_l`` is ordered by the user's position in the full
  dataset — the exact order the sequential shortlist scan emits — so
  every downstream consumer (greedy coverage ties, winner scans) sees
  the sequential iteration order regardless of shard count.  Within the
  per-user top-k lists behind each ``RSk(u)``, ties were already broken
  by (score desc, object id asc); the merge preserves those values
  untouched, so the summed-RSk / object-id tie-breaking of the
  sequential pipeline survives sharding exactly.
* Per-phase times and I/O charges are *summed* across partials; the
  counters a sequential run reports once (group pruning, location
  survivors) must agree across shards and are asserted, then counted
  once.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..model.dataset import Dataset
from ..model.objects import SuperUser
from .candidate_selection import (
    LocationShortlist,
    search_shortlists,
    shortlist_locations,
)
from .joint_topk import JointTraversalResult, individual_topk
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = [
    "PartialResult",
    "ShortlistPartial",
    "MergedThresholds",
    "compute_partial",
    "compute_shortlist_partial",
    "merge_partials",
    "merge_query_shortlist_ids",
    "materialize_shortlists",
    "merge_query_shortlists",
    "run_merged_search",
]


@dataclass(slots=True)
class PartialResult:
    """One shard's phase-1 contribution at one ``k``.

    ``rsk`` holds the exact ``RSk(u)`` of every user living on the
    shard (original ids).  The values are computed against the globally
    shared traversal pool, so they are bitwise identical to what the
    sequential Algorithm 2 produces for the same users.
    """

    shard_id: int
    k: int
    rsk: Dict[int, float]
    users_total: int
    time_s: float

    def __reduce__(self):
        # Compact wire form: the rsk map — the payload's bulk — crosses
        # the worker->parent pipe as one RSK1 binary block instead of a
        # pickled dict (repro.core.payload).  Decode restores the dict
        # in insertion order, so the merge sees identical inputs.
        from .payload import encode_rsk

        try:
            blob = encode_rsk(self.rsk)
        except (TypeError, OverflowError):
            return (
                PartialResult,
                (self.shard_id, self.k, self.rsk, self.users_total, self.time_s),
            )
        return (
            _rebuild_partial,
            (self.shard_id, self.k, blob, self.users_total, self.time_s),
        )


@dataclass(slots=True)
class ShortlistPartial:
    """One shard's phase-2 shortlist contribution for one query.

    ``kept`` lists the surviving candidate locations as
    ``(location index, UBL(l, us), LBL(l, us))`` — identical on every
    shard because the group bounds read only the *global* super-user
    and threshold; ``users`` holds, per surviving location, the shard's
    shortlisted user ids in the shard's (= dataset's) user order.
    """

    shard_id: int
    kept: List[Tuple[int, float, float]]
    users: List[List[int]]
    locations_pruned: int
    time_s: float

    def __reduce__(self):
        # Same wire-compaction as PartialResult: kept becomes three
        # parallel primitive arrays, users one PackedIds block.  The
        # rebuild restores exact python tuples/lists, so the merge's
        # ``p.kept == first.kept`` agreement check still holds.
        from .payload import PackedIds

        try:
            loc = array("q", [t[0] for t in self.kept])
            ub = array("d", [t[1] for t in self.kept])
            lb = array("d", [t[2] for t in self.kept])
            users = PackedIds.pack(self.users)
        except (TypeError, OverflowError):
            return (
                ShortlistPartial,
                (
                    self.shard_id, self.kept, self.users,
                    self.locations_pruned, self.time_s,
                ),
            )
        return (
            _rebuild_shortlist_partial,
            (
                self.shard_id,
                loc.tobytes(), ub.tobytes(), lb.tobytes(),
                (users.offsets, users.flat),
                self.locations_pruned, self.time_s,
            ),
        )


@dataclass(slots=True)
class MergedThresholds:
    """The gathered phase-1 state: a full, sequential-identical rsk map."""

    k: int
    rsk: Dict[int, float]
    users_total: int
    time_s: float  # summed shard refine time (scatter work, not wall clock)
    shards: int = 0
    per_shard_users: List[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Wire-form rebuilders (module-level so pickles resolve them by name)
# ----------------------------------------------------------------------

def _rebuild_partial(shard_id, k, rsk_blob, users_total, time_s):
    from .payload import decode_rsk

    return PartialResult(
        shard_id=shard_id, k=k, rsk=decode_rsk(rsk_blob),
        users_total=users_total, time_s=time_s,
    )


def _rebuild_shortlist_partial(
    shard_id, kept_loc, kept_ub, kept_lb, users, locations_pruned, time_s
):
    from .payload import PackedIds

    loc = array("q")
    loc.frombytes(kept_loc)
    ub = array("d")
    ub.frombytes(kept_ub)
    lb = array("d")
    lb.frombytes(kept_lb)
    return ShortlistPartial(
        shard_id=shard_id,
        kept=list(zip(loc, ub, lb)),
        users=PackedIds(*users).unpack(),
        locations_pruned=locations_pruned,
        time_s=time_s,
    )


# ----------------------------------------------------------------------
# Shard-side computations (run in-process or inside pool workers)
# ----------------------------------------------------------------------

def compute_partial(
    dataset: Dataset,
    traversal: JointTraversalResult,
    k: int,
    backend: str = "python",
    shard_id: int = 0,
) -> PartialResult:
    """Algorithm 2 for one shard: exact ``RSk(u)`` for the shard's users.

    ``dataset`` is the shard's subset dataset (shared objects/relevance
    /``dmax``); ``traversal`` is the *global* pool walked at
    ``k_pool >= k`` (subsumption: every object any user can rank in a
    top-``k`` survives the larger walk, see
    :class:`repro.core.batch.SharedTraversalPool`).
    """
    t0 = time.perf_counter()
    per_user = individual_topk(traversal, dataset, k, backend=backend)
    return PartialResult(
        shard_id=shard_id,
        k=k,
        rsk={uid: res.kth_score for uid, res in per_user.items()},
        users_total=len(dataset.users),
        time_s=time.perf_counter() - t0,
    )


def compute_shortlist_partial(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    rsk_group: float,
    super_user: SuperUser,
    backend: str = "python",
    shard_id: int = 0,
) -> ShortlistPartial:
    """Algorithm 3's shortlist phase for one shard.

    ``super_user`` and ``rsk_group`` are the *global* aggregates: every
    shard prunes the same locations (the group bound does not depend on
    which users live here) and admits its own users with the same
    per-user test the sequential scan applies.
    """
    t0 = time.perf_counter()
    shortlists, pruned = shortlist_locations(
        dataset, query, rsk, rsk_group, super_user=super_user, backend=backend
    )
    return ShortlistPartial(
        shard_id=shard_id,
        kept=[(sl.index, sl.upper_group, sl.lower_group) for sl in shortlists],
        users=[[u.item_id for u in sl.users] for sl in shortlists],
        locations_pruned=pruned,
        time_s=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Gather-side reducers
# ----------------------------------------------------------------------

def merge_partials(partials: Sequence[PartialResult]) -> MergedThresholds:
    """Union the per-shard ``RSk(u)`` maps into the sequential map.

    Shard contributions are disjoint by construction (each user lives
    on exactly one shard); an overlap means the partitioner or the
    scatter is broken, so it raises instead of silently preferring one
    shard's value.  Per-shard times are summed — the total refine work,
    which equals the sequential refine cost modulo parallelism.
    """
    if not partials:
        raise ValueError("merge_partials needs at least one partial")
    ks = {p.k for p in partials}
    if len(ks) > 1:
        raise ValueError(f"cannot merge partials across k values {sorted(ks)}")
    merged: Dict[int, float] = {}
    total = 0
    time_s = 0.0
    per_shard: List[int] = []
    for p in sorted(partials, key=lambda p: p.shard_id):
        overlap = merged.keys() & p.rsk.keys()
        if overlap:
            raise ValueError(
                f"shard {p.shard_id} re-reports users {sorted(overlap)[:5]} "
                "already merged from another shard"
            )
        merged.update(p.rsk)
        total += p.users_total
        time_s += p.time_s
        per_shard.append(p.users_total)
    return MergedThresholds(
        k=next(iter(ks)),
        rsk=merged,
        users_total=total,
        time_s=time_s,
        shards=len(partials),
        per_shard_users=per_shard,
    )


def merge_query_shortlist_ids(
    partials: Sequence[ShortlistPartial],
    user_pos: Mapping[int, int],
) -> Tuple[List[Tuple[int, float, float]], List[List[int]], int]:
    """Merge shard shortlists at the user-*id* level.

    Every shard must have kept the same locations with the same group
    bounds (they compute them from identical global inputs; a mismatch
    is a bug and raises).  The merged id list of each location is
    ordered by position in the full dataset's user list — exactly the
    order the sequential scan ``[u for u in users if ...]`` produces.
    Returns ``(kept, ids_per_location, locations_pruned)`` — the
    pickle-light form the root search pool ships to workers, which
    re-materialize :class:`LocationShortlist`\\ s against their
    copy-on-write full dataset.
    """
    if not partials:
        raise ValueError("merge_query_shortlist_ids needs at least one partial")
    first = partials[0]
    for p in partials[1:]:
        if p.kept != first.kept or p.locations_pruned != first.locations_pruned:
            raise ValueError(
                f"shard {p.shard_id} disagrees with shard {first.shard_id} on "
                "group pruning — global super-user/threshold not shared?"
            )
    ids_per_location: List[List[int]] = []
    for pos in range(len(first.kept)):
        ids: List[int] = []
        for p in partials:
            ids.extend(p.users[pos])
        ids.sort(key=lambda uid: user_pos[uid])
        ids_per_location.append(ids)
    return list(first.kept), ids_per_location, first.locations_pruned


def materialize_shortlists(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    kept: Sequence[Tuple[int, float, float]],
    ids_per_location: Sequence[Sequence[int]],
) -> List[LocationShortlist]:
    """Id-level merged shortlists -> the :class:`LocationShortlist`\\ s
    :func:`~repro.core.candidate_selection.search_shortlists` consumes.

    ``dataset`` must be the *full* dataset (ids resolve against it).
    """
    return [
        LocationShortlist(
            location=query.locations[loc_index],
            users=[dataset.user_by_id(uid) for uid in ids],
            upper_group=upper_group,
            lower_group=lower_group,
            index=loc_index,
        )
        for (loc_index, upper_group, lower_group), ids in zip(kept, ids_per_location)
    ]


def run_merged_search(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    kept: Sequence[Tuple[int, float, float]],
    ids_per_location: Sequence[Sequence[int]],
    pruned: int,
    stats: QueryStats,
    base_selection_s: float,
    rsk: Mapping[int, float],
    rsk_group: float,
    method: str,
    backend: str,
) -> Tuple[MaxBRSTkNNResult, float]:
    """Gather-side central search for one query over merged shortlists.

    The ONE implementation both execution modes run — the sharded
    engine's in-process loop and the root search pool's workers — so
    pooled and in-process execution stay the same code path
    structurally, not by hand-synced copies.  Materialization is timed
    inside the search window; ``selection_time_s`` ends up as the
    shards' shortlist work (``base_selection_s``) plus this call.
    Returns ``(result, elapsed_s)``.
    """
    t0 = time.perf_counter()
    shortlists = materialize_shortlists(dataset, query, kept, ids_per_location)
    stats.locations_pruned += pruned
    result = search_shortlists(
        dataset, query, rsk, rsk_group, shortlists,
        method=method, stats=stats, backend=backend,
    )
    elapsed = time.perf_counter() - t0
    stats.selection_time_s = base_selection_s + elapsed
    result.stats = stats
    return result, elapsed


def merge_query_shortlists(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    partials: Sequence[ShortlistPartial],
    user_pos: Optional[Mapping[int, int]] = None,
) -> Tuple[List[LocationShortlist], int]:
    """Rebuild the sequential ``LU_l`` shortlists from shard partials.

    Composition of :func:`merge_query_shortlist_ids` (ordering and
    agreement checks live there) and :func:`materialize_shortlists`.
    Returns ``(shortlists, locations_pruned)`` with the pruned count
    taken once (it is a per-query, not per-shard, statistic).
    """
    if user_pos is None:
        user_pos = {u.item_id: i for i, u in enumerate(dataset.users)}
    kept, ids_per_location, pruned = merge_query_shortlist_ids(partials, user_pos)
    return materialize_shortlists(dataset, query, kept, ids_per_location), pruned
