"""Upper and lower bound estimations (Section 5.3 and Section 6.1).

All pruning in the system rests on two families of bounds:

**Node-vs-group bounds (Lemma 2).**  For an MIR-tree node ``E`` and a
group of users summarized by a super-user ``us``::

    UB(E, us) = alpha * MinSS(E.l, us.l) + (1-alpha) * MaxTS(E.d, us.dUni)
    LB(E, us) = alpha * MaxSS(E.l, us.l) + (1-alpha) * MinTS(E.d, us.dInt)

``MinSS`` converts the *minimum* rect-to-rect distance (closest possible
pair) into the *largest* possible spatial score and vice versa.
``MaxTS`` sums the node's **maximum** term weights over the union of the
group's keywords; ``MinTS`` sums the node's **minimum** weights over the
intersection.

**Normalization fix.**  The paper normalizes text scores per user
(``Z(u.d)``, the Pmax of Eq. 4), but states the group bounds with a
group-side normalizer.  As written that can *under*-estimate: a user
whose single keyword is matched at collection-max weight has
``TS = 1``, yet dividing the group numerator by ``Pmax(us.dUni)`` can
yield less.  We therefore carry ``Zmin = min_u Z(u.d)`` and
``Zmax = max_u Z(u.d)`` in every :class:`~repro.model.objects.SuperUser`
and divide upper bounds by ``Zmin`` (largest quotient) and lower bounds
by ``Zmax`` (smallest quotient).  Then for every user ``u`` in the
group and every object ``o`` under ``E``::

    LB(E, us) <= STS(o, u) <= UB(E, us)

The property tests in ``tests/core/test_bounds.py`` verify this on
randomized instances, and ``examples``/benchmarks rely on it.

**Candidate-location bounds (Section 6.1, Lemma 3).**  For a candidate
location ``l`` the text side must additionally account for the *best
possible keyword augmentation*: at most ``ws`` candidate keywords can be
added to ``ox.d``.  ``best_augmentation_weights`` implements Lemma 3's
``Wh`` — the ``ws`` highest-weight candidate keywords (restricted to
keywords the user group actually has), each weighted optimistically as
if it were the only addition.  Both over-estimates keep the bound sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from ..model.dataset import Dataset
from ..model.objects import STObject, SuperUser, User
from ..spatial.geometry import Point, Rect
from ..text.relevance import TextRelevance

__all__ = [
    "BoundCalculator",
    "candidate_term_weight",
    "best_augmentation_weights",
    "augmented_document",
]


def augmented_document(base: Mapping[int, int], added: Iterable[int]) -> Dict[int, int]:
    """``ox.d ∪ W'``: add each candidate keyword once (tf += 1)."""
    doc = dict(base)
    for tid in added:
        doc[tid] = doc.get(tid, 0) + 1
    return doc


def candidate_term_weight(
    relevance: TextRelevance, base_doc: Mapping[int, int], term_id: int
) -> float:
    """Optimistic weight of adding ``term_id`` once to ``base_doc``.

    The weight is computed as if this were the *only* addition (document
    length ``|ox.d| + 1``).  Adding more keywords can only lengthen the
    document and hence (for length-normalized measures like the LM)
    shrink every term's weight, so per-term this is an upper bound on
    the weight the term can have in any augmented document.
    """
    doc = augmented_document(base_doc, [term_id])
    return relevance.term_weight(term_id, doc)


def best_augmentation_weights(
    relevance: TextRelevance,
    base_doc: Mapping[int, int],
    candidate_terms: Iterable[int],
    group_terms: FrozenSet[int] | Set[int],
    ws: int,
) -> float:
    """Lemma 3: optimistic text mass addable with <= ``ws`` keywords.

    Only candidate keywords present in the group's union can raise any
    group member's score.  Each useful candidate contributes its
    optimistic *gain*:

    * a keyword absent from ``ox.d`` contributes its full optimistic
      weight (:func:`candidate_term_weight`);
    * a keyword already in ``ox.d`` contributes the weight *increase*
      from one more occurrence (its base weight is already counted in
      the caller's base sum) — for TF-IDF this doubles the tf component,
      so ignoring it would break the upper bound.

    The ``ws`` largest gains are summed.  Every per-term gain is an
    over-estimate of the term's contribution in any real augmented
    document (longer documents only shrink length-normalized weights),
    so the sum is a sound upper bound.
    """
    if ws <= 0:
        return 0.0
    gains: List[float] = []
    for t in set(candidate_terms):
        if t not in group_terms:
            continue
        optimistic = candidate_term_weight(relevance, base_doc, t)
        if t in base_doc:
            gain = optimistic - relevance.term_weight(t, base_doc)
        else:
            gain = optimistic
        if gain > 0.0:
            gains.append(gain)
    if not gains:
        return 0.0
    gains.sort(reverse=True)
    return sum(gains[:ws])


@dataclass
class BoundCalculator:
    """Bound computations shared by the joint top-k and candidate search.

    One instance per query; it caches the per-user normalizer and the
    base document's term weights because they are reused for every node
    and candidate.
    """

    dataset: Dataset

    # ------------------------------------------------------------------
    # Spatial components
    # ------------------------------------------------------------------
    def min_spatial_rr(self, a: Rect, b: Rect) -> float:
        """Largest possible SS between a point in ``a`` and one in ``b``."""
        return self.dataset.spatial_score_from_distance(
            self.dataset.metric.min_distance_rects(a, b)
        )

    def max_spatial_rr(self, a: Rect, b: Rect) -> float:
        """Smallest possible SS between points of the two rects."""
        return self.dataset.spatial_score_from_distance(
            self.dataset.metric.max_distance_rects(a, b)
        )

    def min_spatial_pr(self, p: Point, r: Rect) -> float:
        return self.dataset.spatial_score_from_distance(
            self.dataset.metric.min_distance_point_rect(p, r)
        )

    def max_spatial_pr(self, p: Point, r: Rect) -> float:
        return self.dataset.spatial_score_from_distance(
            self.dataset.metric.max_distance_point_rect(p, r)
        )

    # ------------------------------------------------------------------
    # Textual components against a super-user
    # ------------------------------------------------------------------
    def max_text(
        self, weights: Mapping[int, Tuple[float, float]], su: SuperUser
    ) -> float:
        """``MaxTS``: max weights over the union / smallest normalizer.

        Terms are summed in ascending id order — the canonical
        association the numpy frontier kernels reproduce exactly, so
        both backends compute bitwise-identical bounds (floating-point
        addition is not associative; a shared order makes the traversal
        backends interchangeable down to heap tie-breaks).
        """
        if su.min_normalizer <= 0.0:
            return 0.0
        total = 0.0
        if len(weights) <= len(su.union_terms):
            for tid in sorted(weights):
                if tid in su.union_terms:
                    total += weights[tid][0]
        else:
            for tid in su.sorted_union():
                pair = weights.get(tid)
                if pair is not None:
                    total += pair[0]
        return min(1.0, total / su.min_normalizer)

    def min_text(
        self, weights: Mapping[int, Tuple[float, float]], su: SuperUser
    ) -> float:
        """``MinTS``: min weights over the intersection / largest normalizer.

        Ascending-id summation order, like :meth:`max_text`.
        """
        if su.max_normalizer <= 0.0 or not su.intersection_terms:
            return 0.0
        total = 0.0
        for tid in su.sorted_intersection():
            pair = weights.get(tid)
            if pair is not None:
                total += pair[1]
        return min(1.0, total / su.max_normalizer)

    # ------------------------------------------------------------------
    # Node bounds (Lemma 2)
    # ------------------------------------------------------------------
    def node_upper(
        self, rect: Rect, weights: Mapping[int, Tuple[float, float]], su: SuperUser
    ) -> float:
        """``UB(E, us)`` — no user in the group can score ``E`` higher."""
        alpha = self.dataset.alpha
        return alpha * self.min_spatial_rr(rect, su.mbr) + (1.0 - alpha) * self.max_text(
            weights, su
        )

    def node_lower(
        self, rect: Rect, weights: Mapping[int, Tuple[float, float]], su: SuperUser
    ) -> float:
        """``LB(E, us)`` — every user in the group scores ``E`` at least this."""
        alpha = self.dataset.alpha
        return alpha * self.max_spatial_rr(rect, su.mbr) + (1.0 - alpha) * self.min_text(
            weights, su
        )

    # ------------------------------------------------------------------
    # Candidate-location bounds (Section 6.1)
    # ------------------------------------------------------------------
    def location_upper_group(
        self,
        location: Point,
        ox: STObject,
        candidate_terms: Iterable[int],
        ws: int,
        su: SuperUser,
    ) -> float:
        """``UBL(l, us)``: best achievable STS of ``ox`` at ``l`` for any
        grouped user, under the best possible keyword augmentation."""
        alpha = self.dataset.alpha
        ss = self.min_spatial_pr(location, su.mbr)
        if su.min_normalizer <= 0.0:
            return alpha * ss
        rel = self.dataset.relevance
        base = sum(
            w
            for tid, w in rel.document_weights(ox.terms).items()
            if tid in su.union_terms
        ) if ox.terms else 0.0
        extra = best_augmentation_weights(
            rel, ox.terms, candidate_terms, su.union_terms, ws
        )
        ts = min(1.0, (base + extra) / su.min_normalizer)
        return alpha * ss + (1.0 - alpha) * ts

    def location_upper_user(
        self,
        location: Point,
        ox: STObject,
        candidate_terms: Iterable[int],
        ws: int,
        user: User,
    ) -> float:
        """``UBL(l, u)``: per-user variant using ``Wu ⊆ u.d`` (Section 6.1)."""
        alpha = self.dataset.alpha
        ss = self.dataset.spatial_score(location, user.location)
        rel = self.dataset.relevance
        kws = user.keyword_set
        z = rel.user_normalizer(kws)
        if z <= 0.0:
            return alpha * ss
        base = sum(
            w for tid, w in rel.document_weights(ox.terms).items() if tid in kws
        ) if ox.terms else 0.0
        extra = best_augmentation_weights(rel, ox.terms, candidate_terms, kws, ws)
        ts = min(1.0, (base + extra) / z)
        return alpha * ss + (1.0 - alpha) * ts

    def location_lower_group(self, location: Point, ox: STObject, su: SuperUser) -> float:
        """``LBL(l, us)``: guaranteed STS with *no* added keywords.

        Spatial part uses the max distance to the group MBR; text part
        scores only the original ``ox.d`` against the intersection of the
        group's keywords (every grouped user has at least those terms).
        """
        alpha = self.dataset.alpha
        ss = self.max_spatial_pr(location, su.mbr)
        if su.max_normalizer <= 0.0 or not su.intersection_terms:
            return alpha * ss
        rel = self.dataset.relevance
        total = sum(
            w
            for tid, w in rel.document_weights(ox.terms).items()
            if tid in su.intersection_terms
        ) if ox.terms else 0.0
        ts = min(1.0, total / su.max_normalizer)
        return alpha * ss + (1.0 - alpha) * ts

    def location_lower_user(self, location: Point, ox: STObject, user: User) -> float:
        """``LBL(l, u)``: exact STS of un-augmented ``ox`` at ``l`` for ``u``."""
        return self.dataset.sts_parts(location, ox.terms, user)
