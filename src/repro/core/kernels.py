"""NumPy-vectorized scoring kernels for batch query processing.

The scalar pipeline scores one ``(user, object/location)`` pair at a
time through :meth:`repro.model.dataset.Dataset.sts_parts` and the
:class:`~repro.core.bounds.BoundCalculator` methods.  Every per-query
hot loop in the system — the per-user shortlist test ``UBL(l, u) >=
RSk(u)`` of Algorithm 3, the BRSTkNN winner scan of the keyword
selectors, and the Algorithm 2 refinement of the candidate pools — is a
dense "one location/document against *all* users" computation, which
this module evaluates as array arithmetic instead of Python loops.

Exactness contract
------------------
``backend="numpy"`` must return *identical results* to the scalar
``backend="python"`` reference (the equivalence tests enforce it).
Floating-point sums evaluated in a different association order can
differ in the last ulp, so every kernel that feeds a *decision*
(``score >= threshold``) uses a **guard band**: comparisons decided by
a margin wider than ``GUARD_EPS`` are trusted, while pairs inside the
band are re-checked with the scalar code path.  Accumulated rounding
error across the handful of ``[0, 1]``-bounded terms a score sums is
orders of magnitude below ``GUARD_EPS``, so the band only ever catches
genuine ties — which the scalar re-check resolves exactly as the
python backend does.

Array layout
------------
:class:`DatasetArrays` caches, per dataset (stored on the dataset
itself, so clones from ``with_alpha``/``with_users`` get their own):

* user locations ``(M, 2)`` and user-side normalizers ``Z(u.d)``;
* a dense user/term incidence matrix over the *union of user keywords*
  (terms no user holds can never contribute to any text score).

Documents then become weight vectors over those term columns and text
sums become one mat-vec per location/document.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..model.objects import STObject, User
from ..spatial.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.dataset import Dataset

try:  # numpy is an optional accelerator; everything gates on HAS_NUMPY
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "BACKENDS",
    "GUARD_EPS",
    "CandidatePoolArrays",
    "DatasetArrays",
    "TreeArrays",
    "FrontierBounds",
    "arrays_for",
    "tree_arrays_for",
    "resolve_backend",
]

#: Recognized backend names; "auto" resolves to numpy when available.
BACKENDS = ("python", "numpy", "auto")

#: Width of the guard band around decision thresholds.  Must exceed the
#: worst-case association-order rounding difference between a numpy
#: reduction and the scalar sum of the same values (scores sum tens of
#: values bounded by 1, so the true difference is ~1e-15).
GUARD_EPS = 1e-9


def resolve_backend(backend: Optional[str]) -> str:
    """Map a user-facing backend choice to "python" or "numpy".

    ``None`` and ``"auto"`` pick numpy when it is importable.  Asking
    for ``"numpy"`` explicitly without numpy installed is an error.
    """
    if backend is None:
        backend = "auto"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise RuntimeError("backend='numpy' requested but numpy is not installed")
    return backend


def _pairwise_norm(dx, dy, p: float):
    """Vectorized Lp norm mirroring ``LpMetric._norm`` op for op."""
    dx = np.abs(dx)
    dy = np.abs(dy)
    if p == float("inf"):
        return np.maximum(dx, dy)
    if p == 1:
        return dx + dy
    if p == 2:
        # Same expression as LpMetric._norm: *, + and sqrt are all
        # correctly rounded under IEEE-754, so this is bitwise-equal to
        # the scalar metric on every platform (np.hypot/C hypot is not).
        return np.sqrt(dx * dx + dy * dy)
    return (dx**p + dy**p) ** (1.0 / p)


class DatasetArrays:
    """Array mirror of a :class:`Dataset`'s users for vectorized scoring.

    Built once per dataset and cached (see :func:`arrays_for`); all
    kernels are methods so the term-column mapping stays private.
    """

    #: Process-wide construction counter.  Fork-pool regression tests
    #: compare a worker's value against the parent's pre-fork value to
    #: prove the arrays were inherited through copy-on-write memory
    #: instead of being rebuilt (or worse, pickled) per worker.
    build_count = 0

    def __init__(self, dataset: "Dataset") -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError("DatasetArrays requires numpy")
        DatasetArrays.build_count += 1
        self.dataset = dataset
        users = dataset.users
        self.num_users = len(users)
        self.user_ids = np.array([u.item_id for u in users], dtype=np.int64)
        self.user_row: Dict[int, int] = {
            u.item_id: i for i, u in enumerate(users)
        }
        self.user_xy = np.array(
            [(u.location.x, u.location.y) for u in users], dtype=np.float64
        ).reshape(self.num_users, 2)

        rel = dataset.relevance
        self.user_z = np.array(
            [rel.user_normalizer(u.keyword_set) for u in users], dtype=np.float64
        )
        # Term columns: union of all user keywords, ascending for
        # deterministic summation order inside reductions.
        union: set = set()
        for u in users:
            union |= u.keyword_set
        self.term_col: Dict[int, int] = {t: j for j, t in enumerate(sorted(union))}
        self.num_terms = len(self.term_col)
        self.user_terms = np.zeros((self.num_users, self.num_terms), dtype=np.float64)
        for i, u in enumerate(users):
            for t in u.keyword_set:
                self.user_terms[i, self.term_col[t]] = 1.0
        self._doc_vec_cache: Dict[frozenset, "np.ndarray"] = {}

    def __reduce__(self):
        raise TypeError(
            "DatasetArrays must never be pickled: workers inherit the arrays "
            "through fork/copy-on-write (repro.serve.pool), and shipping the "
            "dense matrices through a pipe would silently undo that.  Pickle "
            "the Dataset instead; arrays_for() rebuilds lazily on the far side."
        )

    #: Dense buffers the shared-memory tier lifts into arena columns.
    SHARED_ATTRS = ("user_ids", "user_xy", "user_z", "user_terms")

    def share_into(self, arena, prefix: str = "dataset") -> List[str]:
        """Move the dense arrays into ``arena`` columns (zero-copy tier).

        Afterwards the attributes are read-only views over named
        shared-memory segments — byte-identical to the private copies
        they replace, so every kernel result is unchanged, but any
        process that attaches the arena maps the same physical pages
        instead of holding a per-process copy.  The python-side lookup
        tables (``user_row``, ``term_col``, the doc-vector cache) stay
        local: they are small and mutable.
        """
        return arena.share_arrays(self, self.SHARED_ATTRS, prefix)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def rows_for(self, users: Optional[Sequence[User]]):
        """Row-index array for a user subset (None = all users)."""
        if users is None:
            return np.arange(self.num_users)
        return np.array([self.user_row[u.item_id] for u in users], dtype=np.intp)

    def _doc_weight_vector(self, doc: Mapping[int, int]):
        """Document term weights as a vector over the user-term columns.

        Memoized per document content: candidate selection scores the
        same handful of augmented documents at every candidate location.
        """
        key = frozenset(doc.items())
        w = self._doc_vec_cache.get(key)
        if w is not None:
            return w
        w = np.zeros(self.num_terms, dtype=np.float64)
        if doc:
            for tid, wt in self.dataset.relevance.document_weights(doc).items():
                col = self.term_col.get(tid)
                if col is not None:
                    w[col] = wt
        if len(self._doc_vec_cache) >= 4096:  # bound memory across queries
            self._doc_vec_cache.clear()
        self._doc_vec_cache[key] = w
        return w

    # ------------------------------------------------------------------
    # Score kernels (vectorized over users)
    # ------------------------------------------------------------------
    def spatial_scores(self, location: Point, rows=None):
        """``SS(location, u)`` for every selected user."""
        xy = self.user_xy if rows is None else self.user_xy[rows]
        d = _pairwise_norm(
            xy[:, 0] - location.x, xy[:, 1] - location.y, self.dataset.metric.p
        )
        return np.clip(1.0 - d / self.dataset.dmax, 0.0, 1.0)

    def text_scores(self, doc: Mapping[int, int], rows=None):
        """``TS(doc, u.d)`` for every selected user."""
        w = self._doc_weight_vector(doc)
        terms = self.user_terms if rows is None else self.user_terms[rows]
        z = self.user_z if rows is None else self.user_z[rows]
        sums = terms @ w
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(z > 0.0, np.minimum(1.0, sums / np.where(z > 0.0, z, 1.0)), 0.0)
        return ts

    def sts(self, location: Point, doc: Mapping[int, int], rows=None):
        """``STS`` of a (location, document) pair against every user."""
        alpha = self.dataset.alpha
        return alpha * self.spatial_scores(location, rows) + (
            1.0 - alpha
        ) * self.text_scores(doc, rows)

    # ------------------------------------------------------------------
    # Bound kernels (Section 6.1, vectorized over users)
    # ------------------------------------------------------------------
    def _augmentation_gains(
        self, ox: STObject, candidate_terms: Iterable[int]
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Per-candidate optimistic gains (Lemma 3), user-independent.

        Returns (column indices, gains) for the candidates some user
        holds and whose gain is positive — the only ones
        ``best_augmentation_weights`` ever sums.
        """
        from .bounds import candidate_term_weight

        rel = self.dataset.relevance
        cols: List[int] = []
        gains: List[float] = []
        for t in sorted(set(candidate_terms)):
            col = self.term_col.get(t)
            if col is None:
                continue
            optimistic = candidate_term_weight(rel, ox.terms, t)
            gain = (
                optimistic - rel.term_weight(t, ox.terms)
                if t in ox.terms
                else optimistic
            )
            if gain > 0.0:
                cols.append(col)
                gains.append(gain)
        return np.array(cols, dtype=np.intp), np.array(gains, dtype=np.float64)

    def location_upper(
        self,
        location: Point,
        ox: STObject,
        candidate_terms: Iterable[int],
        ws: int,
        rows=None,
    ):
        """``UBL(l, u)`` for every selected user (Lemma 3, per-user)."""
        alpha = self.dataset.alpha
        ss = self.spatial_scores(location, rows)
        z = self.user_z if rows is None else self.user_z[rows]
        terms = self.user_terms if rows is None else self.user_terms[rows]

        base = terms @ self._doc_weight_vector(ox.terms)
        extra = np.zeros(len(base))
        if ws > 0:
            cols, gains = self._augmentation_gains(ox, candidate_terms)
            if len(cols):
                per_user = terms[:, cols] * gains
                if len(cols) > ws:
                    per_user = -np.sort(-per_user, axis=1)[:, :ws]
                extra = per_user.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(
                z > 0.0,
                np.minimum(1.0, (base + extra) / np.where(z > 0.0, z, 1.0)),
                0.0,
            )
        out = alpha * ss + (1.0 - alpha) * ts
        # z <= 0 users score alpha * ss exactly (scalar short-circuit).
        return np.where(z > 0.0, out, alpha * ss)

    def location_lower(self, location: Point, ox: STObject, rows=None):
        """``LBL(l, u)``: exact STS of the un-augmented ``ox`` at ``l``."""
        return self.sts(location, ox.terms, rows)

    # ------------------------------------------------------------------
    # Decision kernels (guard-banded; results match the scalar backend)
    # ------------------------------------------------------------------
    def threshold_mask(
        self,
        location: Point,
        doc: Mapping[int, int],
        users: Sequence[User],
        rsk: Mapping[int, float],
    ) -> List[bool]:
        """Guard-banded ``STS(location, doc, u) >= RSk(u)`` per user.

        Pairs whose vectorized score lands within ``GUARD_EPS`` of the
        threshold are re-scored with the scalar path, so the decisions
        match the scalar scan exactly, ties included.
        """
        rows = self.rows_for(users)
        scores = self.sts(location, doc, rows)
        thresholds = np.array([rsk[u.item_id] for u in users], dtype=np.float64)
        passed = scores >= thresholds + GUARD_EPS
        for i in np.nonzero(np.abs(scores - thresholds) < GUARD_EPS)[0]:
            u = users[i]
            passed[i] = (
                self.dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
            )
        return passed.tolist()

    def threshold_mask_many(
        self,
        location: Point,
        evals: Sequence[Tuple[Mapping[int, int], Sequence[User]]],
        rsk: Mapping[int, float],
    ) -> List[List[bool]]:
        """:meth:`threshold_mask` for many (document, users) groups at one
        location in a single kernel dispatch.

        All (user, document) pairs share one spatial-score vector and
        one gathered text reduction, which matters when the groups are
        small (the greedy selector's HW evaluations: tens of documents
        with a handful of users each per location).
        """
        if not evals:
            return []
        ss_full = self.spatial_scores(location)
        w_mat = np.stack([self._doc_weight_vector(doc) for doc, _ in evals])
        pair_rows: List[int] = []
        pair_docs: List[int] = []
        thresholds: List[float] = []
        for d, (_doc, members) in enumerate(evals):
            for u in members:
                pair_rows.append(self.user_row[u.item_id])
                pair_docs.append(d)
                thresholds.append(rsk[u.item_id])
        rows = np.array(pair_rows, dtype=np.intp)
        docs = np.array(pair_docs, dtype=np.intp)
        thr = np.array(thresholds, dtype=np.float64)
        sums = np.einsum("ij,ij->i", self.user_terms[rows], w_mat[docs])
        z = self.user_z[rows]
        ts = np.where(z > 0.0, np.minimum(1.0, sums / np.where(z > 0.0, z, 1.0)), 0.0)
        alpha = self.dataset.alpha
        scores = alpha * ss_full[rows] + (1.0 - alpha) * ts
        passed = scores >= thr + GUARD_EPS
        banded = np.nonzero(np.abs(scores - thr) < GUARD_EPS)[0]
        out: List[List[bool]] = []
        i = 0
        flat = passed.tolist()
        banded_set = set(banded.tolist())
        for doc, members in evals:
            group: List[bool] = []
            for u in members:
                ok = flat[i]
                if i in banded_set:
                    ok = self.dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
                group.append(ok)
                i += 1
            out.append(group)
        return out

    def brstknn(
        self,
        ox: STObject,
        location: Point,
        keywords: Iterable[int],
        users: Sequence[User],
        rsk: Mapping[int, float],
    ) -> frozenset:
        """Vectorized :func:`~repro.core.keyword_selection.compute_brstknn`.

        Winner membership is ``STS >= RSk(u)`` via :meth:`threshold_mask`.
        """
        from .bounds import augmented_document

        if not users:
            return frozenset()
        doc = augmented_document(ox.terms, keywords)
        passed = self.threshold_mask(location, doc, users, rsk)
        return frozenset(u.item_id for u, ok in zip(users, passed) if ok)

    def shortlist(
        self,
        location: Point,
        ox: STObject,
        candidate_terms: Sequence[int],
        ws: int,
        users: Sequence[User],
        rsk: Mapping[int, float],
        bounds=None,
    ) -> List[User]:
        """``LU_l``: users with ``UBL(l, u) >= RSk(u)``, scalar-exact.

        Membership identical to the python backend: the guard band sends
        near-threshold users through ``BoundCalculator.location_upper_user``.
        """
        from .bounds import BoundCalculator

        if not users:
            return []
        rows = self.rows_for(users)
        ub = self.location_upper(location, ox, candidate_terms, ws, rows)
        thresholds = np.array([rsk[u.item_id] for u in users], dtype=np.float64)
        keep = ub >= thresholds + GUARD_EPS
        banded = np.abs(ub - thresholds) < GUARD_EPS
        if banded.any():
            bounds = bounds or BoundCalculator(self.dataset)
            for i in np.nonzero(banded)[0]:
                u = users[i]
                keep[i] = (
                    bounds.location_upper_user(location, ox, candidate_terms, ws, u)
                    >= rsk[u.item_id]
                )
        return [u for i, u in enumerate(users) if keep[i]]

    # ------------------------------------------------------------------
    # Candidate-pool scoring (Algorithm 2 refinement)
    # ------------------------------------------------------------------
    def candidate_score_matrix(self, candidates: Sequence, rows=None) -> "np.ndarray":
        """``STS(o, u)`` for selected users x candidate objects.

        ``candidates`` is a sequence of
        :class:`~repro.core.joint_topk.CandidateObject`; text weights
        are recomputed from the full object documents (the traversal's
        ``weights`` are restricted to the group union, but so are user
        keyword sets, which is all the text score ever reads).
        """
        alpha = self.dataset.alpha
        n = len(candidates)
        user_xy = self.user_xy if rows is None else self.user_xy[rows]
        user_terms = self.user_terms if rows is None else self.user_terms[rows]
        user_z = self.user_z if rows is None else self.user_z[rows]
        cand_xy = np.array(
            [(c.obj.location.x, c.obj.location.y) for c in candidates],
            dtype=np.float64,
        ).reshape(n, 2)
        d = _pairwise_norm(
            user_xy[:, 0:1] - cand_xy[:, 0][None, :],
            user_xy[:, 1:2] - cand_xy[:, 1][None, :],
            self.dataset.metric.p,
        )
        ss = np.clip(1.0 - d / self.dataset.dmax, 0.0, 1.0)
        w = np.zeros((self.num_terms, n), dtype=np.float64)
        for j, c in enumerate(candidates):
            w[:, j] = self._doc_weight_vector(c.obj.terms)
        sums = user_terms @ w
        z = user_z[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(z > 0.0, np.minimum(1.0, sums / np.where(z > 0.0, z, 1.0)), 0.0)
        return alpha * ss + (1.0 - alpha) * ts


# ----------------------------------------------------------------------
# MIR-tree frontier kernels (Algorithm 1's wave-based traversal)
# ----------------------------------------------------------------------

class TreeArrays:
    """Flattened (M)IR-tree entry bounds and term summaries.

    The joint traversal (Algorithm 1) spends its time computing
    ``LB(E, us)`` / ``UB(E, us)`` for every entry of every node it
    expands — in the scalar path that means rebuilding per-entry weight
    dicts from the node's inverted file and summing them one Python
    float at a time, per traversal.  ``TreeArrays`` flattens the tree
    **once per tree**: every entry (a child pointer of an internal node
    or an object of a leaf) gets a row in dense MBR arrays and a slice
    of one CSR holding its ``(term, max weight, min weight)`` summary in
    ascending term order; every node gets a CSR of its inverted-list
    sizes for exact I/O charging.  A traversal then derives the bounds
    of *all* entries with a handful of array passes
    (:meth:`frontier_bounds`) and the frontier loop does O(1) lookups
    and bulk pruning instead of per-entry dict arithmetic.

    Exactness contract
    ------------------
    Stronger than the guard-banded kernels above: the frontier kernels
    are **bitwise identical** to the scalar
    :class:`~repro.core.bounds.BoundCalculator`.  Both sides sum term
    weights in ascending term order with strictly left-to-right
    association (the column-accumulation loop in
    :func:`_masked_segment_sums`; ``np.add.reduceat`` would re-associate
    long segments), spatial terms use only correctly-rounded IEEE ops
    written exactly as the scalar metric writes them, and the combining
    expressions mirror the scalar ones operation for operation.
    Identical bound values make
    every priority-queue pop, pruning decision, pool admission, and
    I/O charge of the numpy traversal identical to the python one — the
    property tests in ``tests/core/test_traversal_kernels.py`` assert
    pool-level equality (LO/RO, ``rsk_group``, per-phase stats) on
    randomized MIR-trees.
    """

    #: Process-wide construction counter (see DatasetArrays.build_count).
    build_count = 0

    def __init__(self, tree) -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError("TreeArrays requires numpy")
        TreeArrays.build_count += 1
        self.tree = tree
        self.index_name = tree.index_name

        # Walk the tree once; entries of one node form a contiguous row
        # span, in the node's own child/entry order (the order the
        # scalar traversal pushes them, which tie-breaks the heap).
        self.nodes: List = []               # RTreeNode per node index
        node_index: Dict[int, int] = {}     # page_id -> node index
        node_start: List[int] = []
        node_end: List[int] = []
        node_is_leaf: List[bool] = []

        ent_rect: List[Tuple[float, float, float, float]] = []
        ent_payload: List[object] = []      # STObject (leaf) | RTreeNode
        ent_child: List[int] = []           # child node index, -1 for objects
        ent_indptr: List[int] = [0]
        ent_term: List[int] = []
        ent_maxw: List[float] = []
        ent_minw: List[float] = []

        nio_indptr: List[int] = [0]
        nio_term: List[int] = []
        nio_bytes: List[int] = []

        stack = [tree.root]
        order = []
        while stack:
            node = stack.pop()
            order.append(node)
            if not node.is_leaf:
                stack.extend(reversed(node.children))
        for node in order:
            node_index[node.page_id] = len(self.nodes)
            self.nodes.append(node)
        for node in order:
            node_start.append(len(ent_rect))
            node_is_leaf.append(node.is_leaf)
            if node.is_leaf:
                for entry in node.entries:
                    obj = tree.object_by_id(entry.item)
                    weights = tree.document_weights(entry.item)
                    x, y = obj.location.x, obj.location.y
                    ent_rect.append((x, y, x, y))
                    ent_payload.append(obj)
                    ent_child.append(-1)
                    for tid in sorted(weights):
                        w = weights[tid]
                        ent_term.append(tid)
                        ent_maxw.append(w)
                        ent_minw.append(w)
                    ent_indptr.append(len(ent_term))
            else:
                for child in node.children:
                    max_w, min_w = tree.subtree_summary(child)
                    r = child.rect
                    ent_rect.append((r.min_x, r.min_y, r.max_x, r.max_y))
                    ent_payload.append(child)
                    ent_child.append(node_index[child.page_id])
                    for tid in sorted(max_w):
                        ent_term.append(tid)
                        ent_maxw.append(max_w[tid])
                        ent_minw.append(min_w.get(tid, 0.0))
                    ent_indptr.append(len(ent_term))
            node_end.append(len(ent_rect))
            inv = tree.invfile_of(node)
            for tid in sorted(inv.terms()):
                nio_term.append(tid)
                nio_bytes.append(inv.list_bytes(tid))
            nio_indptr.append(len(nio_term))

        self.root_index = node_index[tree.root.page_id]
        # Plain-python twins of the per-entry structures: the frontier
        # loop reads bounds/terms element-wise, where list indexing is
        # several times faster than numpy scalar indexing.
        self.node_start = node_start
        self.node_end = node_end
        self.node_is_leaf = node_is_leaf
        self.ent_rect = np.array(ent_rect, dtype=np.float64).reshape(len(ent_rect), 4)
        self.ent_payload = ent_payload
        self.ent_child = ent_child
        self.ent_indptr = ent_indptr
        self.ent_term = ent_term
        self.ent_maxw = ent_maxw
        self.ent_minw = ent_minw
        self.ent_indptr_np = np.array(ent_indptr, dtype=np.intp)
        self.ent_term_np = np.array(ent_term, dtype=np.int64)
        self.ent_maxw_np = np.array(ent_maxw, dtype=np.float64)
        self.ent_minw_np = np.array(ent_minw, dtype=np.float64)
        self.nio_indptr = np.array(nio_indptr, dtype=np.intp)
        self.nio_term = np.array(nio_term, dtype=np.int64)
        self.nio_bytes = np.array(nio_bytes, dtype=np.int64)
        self.max_term = int(self.ent_term_np.max()) if ent_term else -1
        self.num_entries = len(ent_rect)

    def __reduce__(self):
        raise TypeError(
            "TreeArrays must never be pickled: build once per engine and let "
            "forked workers inherit it via copy-on-write (tree_arrays_for)."
        )

    #: Dense buffers the shared-memory tier lifts into arena columns.
    #: The plain-python twins (``ent_term``/``ent_maxw``/…) and the node
    #: payload lists stay process-local — they hold object references.
    SHARED_ATTRS = (
        "ent_rect", "ent_indptr_np", "ent_term_np", "ent_maxw_np",
        "ent_minw_np", "nio_indptr", "nio_term", "nio_bytes",
    )

    def share_into(self, arena, prefix: Optional[str] = None) -> List[str]:
        """Move the flattened tree buffers into ``arena`` columns.

        Same contract as :meth:`DatasetArrays.share_into`: the views are
        byte-identical, read-only, and mappable by any process that
        knows the arena name.
        """
        if prefix is None:
            prefix = f"tree.{self.index_name}"
        return arena.share_arrays(self, self.SHARED_ATTRS, prefix)

    # ------------------------------------------------------------------
    def _term_mask(self, terms) -> "np.ndarray":
        """Boolean lookup over term ids; index -1 (padding) stays False."""
        mask = np.zeros(self.max_term + 2, dtype=bool)
        for t in terms:
            if 0 <= t <= self.max_term:
                mask[t] = True
        return mask

    def frontier_bounds(self, dataset: "Dataset", su, store=None) -> "FrontierBounds":
        """Evaluate ``LB``/``UB`` of every tree entry against ``su``.

        One vectorized wave over the flattened tree replaces the scalar
        per-entry bound computations of an entire traversal.  Also
        precomputes, per node, the inverted-list blocks a visit charges
        (exact ``ceil`` arithmetic of ``IOCounter.load_bytes``) so the
        traversal can charge I/O without touching the inverted files.
        """
        alpha = dataset.alpha
        mbr = su.mbr
        rect = self.ent_rect
        p = dataset.metric.p

        # Spatial sides of Lemma 2, operation for operation as the
        # scalar LpMetric rect-to-rect distances.
        dx_min = np.maximum(np.maximum(rect[:, 0] - mbr.max_x, 0.0), mbr.min_x - rect[:, 2])
        dy_min = np.maximum(np.maximum(rect[:, 1] - mbr.max_y, 0.0), mbr.min_y - rect[:, 3])
        dx_max = np.maximum(np.abs(rect[:, 2] - mbr.min_x), np.abs(mbr.max_x - rect[:, 0]))
        dy_max = np.maximum(np.abs(rect[:, 3] - mbr.min_y), np.abs(mbr.max_y - rect[:, 1]))
        dmax = dataset.dmax
        ss_best = np.maximum(0.0, np.minimum(1.0, 1.0 - _pairwise_norm(dx_min, dy_min, p) / dmax))
        ss_worst = np.maximum(0.0, np.minimum(1.0, 1.0 - _pairwise_norm(dx_max, dy_max, p) / dmax))

        # Text sides: MaxTS over the union, MinTS over the intersection,
        # summed in the scalar association order (ascending term ids,
        # strictly left to right).
        union_mask = self._term_mask(su.union_terms)
        in_union = union_mask[self.ent_term_np]
        if su.min_normalizer > 0.0:
            sums = _masked_segment_sums(self.ent_maxw_np, in_union, self.ent_indptr_np)
            maxts = np.minimum(1.0, sums / su.min_normalizer)
        else:
            maxts = np.zeros(self.num_entries)
        if su.max_normalizer > 0.0 and su.intersection_terms:
            in_inter = self._term_mask(su.intersection_terms)[self.ent_term_np]
            sums = _masked_segment_sums(self.ent_minw_np, in_inter, self.ent_indptr_np)
            mints = np.minimum(1.0, sums / su.max_normalizer)
        else:
            mints = np.zeros(self.num_entries)

        lb = alpha * ss_worst + (1.0 - alpha) * mints
        ub = alpha * ss_best + (1.0 - alpha) * maxts

        node_blocks = None
        if store is not None and store.buffer is None and len(self.nio_term):
            page = np.int64(store.counter.page_size)
            masked = np.where(
                union_mask[self.nio_term],
                (self.nio_bytes + page - 1) // page,
                np.int64(0),
            )
            csum = np.concatenate(([0], np.cumsum(masked)))
            node_blocks = csum[self.nio_indptr[1:]] - csum[self.nio_indptr[:-1]]
        return FrontierBounds(self, lb, ub, in_union, node_blocks)


class FrontierBounds:
    """Per-traversal view over :class:`TreeArrays`: bounds + I/O charges.

    ``lb``/``ub``/``in_union``/``node_blocks`` are plain python lists —
    the frontier loop and the weight-dict builder read them one element
    at a time, and a single ``.tolist()`` here beats thousands of numpy
    scalar reads there.
    """

    __slots__ = ("arrays", "lb", "ub", "in_union", "node_blocks")

    def __init__(self, arrays: TreeArrays, lb, ub, in_union, node_blocks) -> None:
        self.arrays = arrays
        self.lb = lb.tolist()
        self.ub = ub.tolist()
        self.in_union = in_union.tolist()
        self.node_blocks = node_blocks.tolist() if node_blocks is not None else None

    def weights_of(self, entry: int) -> Dict[int, Tuple[float, float]]:
        """The entry's ``{term: (maxw, minw)}`` restricted to the union —
        exactly what ``InvertedFile.entry_weights`` hands the scalar path."""
        ta = self.arrays
        in_union = self.in_union
        terms, maxw, minw = ta.ent_term, ta.ent_maxw, ta.ent_minw
        return {
            terms[j]: (maxw[j], minw[j])
            for j in range(ta.ent_indptr[entry], ta.ent_indptr[entry + 1])
            if in_union[j]
        }


class CandidatePoolArrays:
    """Flattened candidate pool for vectorized node-level ``RSk`` bounds.

    The indexed-users pipeline (Section 7) computes, per visited
    MIUR-tree node, the k-th best candidate *lower* bound w.r.t. the
    node's summary (``_node_rsk`` in :mod:`repro.core.indexed_users`) —
    a scalar loop over the whole candidate pool per node, the next
    Python hot spot after the PR 3 frontier work.  This class flattens
    the pool **once per query** (point coordinates plus one CSR of
    ``(term, min weight)`` in ascending term order) and evaluates every
    candidate's ``LB(o, node)`` as a few array passes per node.

    Exactness contract — the PR 3 convention, not a guard band: every
    expression mirrors the scalar :class:`~repro.core.bounds
    .BoundCalculator` operation for operation (point-rect max distance
    written exactly as ``LpMetric.max_distance_rects`` reads for a
    degenerate rect; ``MinTS`` summed ascending-term, strictly left to
    right via :func:`_masked_segment_sums`), so the returned lower
    bounds — and hence every ``RSk(node)`` and every admission decision
    of the best-first search — are **bitwise identical** to the scalar
    path (property-tested in ``tests/core/test_node_rsk_kernel.py``).
    """

    def __init__(self, dataset: "Dataset", candidates: Sequence) -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError("CandidatePoolArrays requires numpy")
        self.dataset = dataset
        self.size = len(candidates)
        self.x = np.array([c.obj.location.x for c in candidates], dtype=np.float64)
        self.y = np.array([c.obj.location.y for c in candidates], dtype=np.float64)
        indptr: List[int] = [0]
        term: List[int] = []
        minw: List[float] = []
        for c in candidates:
            for tid in sorted(c.weights):
                term.append(tid)
                minw.append(c.weights[tid][1])
            indptr.append(len(term))
        self.indptr = np.array(indptr, dtype=np.intp)
        self.term = np.array(term, dtype=np.int64)
        self.minw = np.array(minw, dtype=np.float64)
        self.max_term = int(self.term.max()) if term else -1

    #: Dense buffers the shared-memory tier lifts into arena columns.
    SHARED_ATTRS = ("x", "y", "indptr", "term", "minw")

    def share_into(self, arena, prefix: str = "pool") -> List[str]:
        """Move the flattened pool buffers into ``arena`` columns
        (same byte-identity contract as :meth:`DatasetArrays.share_into`)."""
        return arena.share_arrays(self, self.SHARED_ATTRS, prefix)

    def node_lower_bounds(self, summary) -> "np.ndarray":
        """``LB(o, summary)`` for every pooled candidate, scalar-bitwise.

        Mirrors ``BoundCalculator.node_lower`` for a point rect:
        ``alpha * MaxSS + (1 - alpha) * MinTS``.
        """
        ds = self.dataset
        mbr = summary.mbr
        # Point-rect max distance exactly as LpMetric.max_distance_rects
        # with a degenerate rect (min == max == the candidate's point).
        dx = np.maximum(np.abs(self.x - mbr.min_x), np.abs(mbr.max_x - self.x))
        dy = np.maximum(np.abs(self.y - mbr.min_y), np.abs(mbr.max_y - self.y))
        d = _pairwise_norm(dx, dy, ds.metric.p)
        ss_worst = np.maximum(0.0, np.minimum(1.0, 1.0 - d / ds.dmax))
        if summary.max_normalizer > 0.0 and summary.intersection_terms:
            mask = np.zeros(self.max_term + 2, dtype=bool)
            for t in summary.intersection_terms:
                if 0 <= t <= self.max_term:
                    mask[t] = True
            sums = _masked_segment_sums(self.minw, mask[self.term], self.indptr)
            mints = np.minimum(1.0, sums / summary.max_normalizer)
        else:
            mints = np.zeros(self.size)
        alpha = ds.alpha
        return alpha * ss_worst + (1.0 - alpha) * mints

    def node_rsk(self, summary, k: int) -> float:
        """k-th best candidate lower bound w.r.t. ``summary``.

        Identical to the scalar ``_node_rsk``: the bound values are
        bitwise-equal, and selecting the order statistic with an O(n)
        ``np.partition`` returns the same element of the same multiset
        the scalar sort-then-index picks (no NaNs can occur — every
        bound is a finite combination of clamped [0, 1] terms).
        """
        if self.size < k:
            return 0.0
        lows = self.node_lower_bounds(summary)
        idx = self.size - k
        return float(np.partition(lows, idx)[idx])


def _masked_segment_sums(values, mask, indptr):
    """Per-segment sums of ``values[mask]`` with scalar-exact association.

    Each CSR segment is summed **strictly left to right** (ascending
    term order) into a ``0.0`` accumulator, reproducing the scalar
    ``total += w`` loop bit for bit — ``np.add.reduceat`` re-associates
    segments longer than a few elements and is *not* usable here.  The
    column loop touches each relevant value exactly once, so the total
    work is O(relevant nnz) plus one vectorized pass per frontier
    "column" (the j-th relevant term of every entry advances together).
    """
    vals = values[mask]
    csum = np.concatenate(([0], np.cumsum(mask)))
    counts = csum[indptr[1:]] - csum[indptr[:-1]]
    starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
    ends = starts + counts
    totals = np.zeros(len(counts))
    pos = starts.copy()
    active = np.nonzero(counts > 0)[0]
    while active.size:
        totals[active] += vals[pos[active]]
        pos[active] += 1
        active = active[pos[active] < ends[active]]
    return totals


def arrays_for(dataset: "Dataset") -> DatasetArrays:
    """The cached :class:`DatasetArrays` of ``dataset`` (built lazily).

    The arrays hang off the dataset itself, so their lifetime is the
    dataset's own: clones from ``with_alpha``/``with_users`` build
    fresh arrays, and a collected dataset takes its arrays with it (the
    dataset<->arrays reference cycle is ordinary gc fodder).
    """
    arrays = getattr(dataset, "_kernel_arrays", None)
    if arrays is None:
        arrays = DatasetArrays(dataset)
        dataset._kernel_arrays = arrays  # type: ignore[attr-defined]
    return arrays


def tree_arrays_for(tree) -> TreeArrays:
    """The cached :class:`TreeArrays` of ``tree`` (built lazily).

    Like :func:`arrays_for`, the arrays hang off the tree itself so they
    are built exactly once per engine (the serving layer builds them
    eagerly at startup, before the worker pool forks).
    """
    arrays = getattr(tree, "_tree_arrays", None)
    if arrays is None:
        arrays = TreeArrays(tree)
        tree._tree_arrays = arrays
    return arrays
