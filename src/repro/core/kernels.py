"""NumPy-vectorized scoring kernels for batch query processing.

The scalar pipeline scores one ``(user, object/location)`` pair at a
time through :meth:`repro.model.dataset.Dataset.sts_parts` and the
:class:`~repro.core.bounds.BoundCalculator` methods.  Every per-query
hot loop in the system — the per-user shortlist test ``UBL(l, u) >=
RSk(u)`` of Algorithm 3, the BRSTkNN winner scan of the keyword
selectors, and the Algorithm 2 refinement of the candidate pools — is a
dense "one location/document against *all* users" computation, which
this module evaluates as array arithmetic instead of Python loops.

Exactness contract
------------------
``backend="numpy"`` must return *identical results* to the scalar
``backend="python"`` reference (the equivalence tests enforce it).
Floating-point sums evaluated in a different association order can
differ in the last ulp, so every kernel that feeds a *decision*
(``score >= threshold``) uses a **guard band**: comparisons decided by
a margin wider than ``GUARD_EPS`` are trusted, while pairs inside the
band are re-checked with the scalar code path.  Accumulated rounding
error across the handful of ``[0, 1]``-bounded terms a score sums is
orders of magnitude below ``GUARD_EPS``, so the band only ever catches
genuine ties — which the scalar re-check resolves exactly as the
python backend does.

Array layout
------------
:class:`DatasetArrays` caches, per dataset (stored on the dataset
itself, so clones from ``with_alpha``/``with_users`` get their own):

* user locations ``(M, 2)`` and user-side normalizers ``Z(u.d)``;
* a dense user/term incidence matrix over the *union of user keywords*
  (terms no user holds can never contribute to any text score).

Documents then become weight vectors over those term columns and text
sums become one mat-vec per location/document.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..model.objects import STObject, User
from ..spatial.geometry import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.dataset import Dataset

try:  # numpy is an optional accelerator; everything gates on HAS_NUMPY
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "BACKENDS",
    "GUARD_EPS",
    "DatasetArrays",
    "arrays_for",
    "resolve_backend",
]

#: Recognized backend names; "auto" resolves to numpy when available.
BACKENDS = ("python", "numpy", "auto")

#: Width of the guard band around decision thresholds.  Must exceed the
#: worst-case association-order rounding difference between a numpy
#: reduction and the scalar sum of the same values (scores sum tens of
#: values bounded by 1, so the true difference is ~1e-15).
GUARD_EPS = 1e-9


def resolve_backend(backend: Optional[str]) -> str:
    """Map a user-facing backend choice to "python" or "numpy".

    ``None`` and ``"auto"`` pick numpy when it is importable.  Asking
    for ``"numpy"`` explicitly without numpy installed is an error.
    """
    if backend is None:
        backend = "auto"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise RuntimeError("backend='numpy' requested but numpy is not installed")
    return backend


def _pairwise_norm(dx, dy, p: float):
    """Vectorized Lp norm mirroring ``LpMetric._norm`` op for op."""
    dx = np.abs(dx)
    dy = np.abs(dy)
    if p == float("inf"):
        return np.maximum(dx, dy)
    if p == 1:
        return dx + dy
    if p == 2:
        # np.hypot is the same C hypot() used by math.hypot, keeping the
        # numpy distances bitwise-equal to the scalar metric.
        return np.hypot(dx, dy)
    return (dx**p + dy**p) ** (1.0 / p)


class DatasetArrays:
    """Array mirror of a :class:`Dataset`'s users for vectorized scoring.

    Built once per dataset and cached (see :func:`arrays_for`); all
    kernels are methods so the term-column mapping stays private.
    """

    def __init__(self, dataset: "Dataset") -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError("DatasetArrays requires numpy")
        self.dataset = dataset
        users = dataset.users
        self.num_users = len(users)
        self.user_ids = np.array([u.item_id for u in users], dtype=np.int64)
        self.user_row: Dict[int, int] = {
            u.item_id: i for i, u in enumerate(users)
        }
        self.user_xy = np.array(
            [(u.location.x, u.location.y) for u in users], dtype=np.float64
        ).reshape(self.num_users, 2)

        rel = dataset.relevance
        self.user_z = np.array(
            [rel.user_normalizer(u.keyword_set) for u in users], dtype=np.float64
        )
        # Term columns: union of all user keywords, ascending for
        # deterministic summation order inside reductions.
        union: set = set()
        for u in users:
            union |= u.keyword_set
        self.term_col: Dict[int, int] = {t: j for j, t in enumerate(sorted(union))}
        self.num_terms = len(self.term_col)
        self.user_terms = np.zeros((self.num_users, self.num_terms), dtype=np.float64)
        for i, u in enumerate(users):
            for t in u.keyword_set:
                self.user_terms[i, self.term_col[t]] = 1.0
        self._doc_vec_cache: Dict[frozenset, "np.ndarray"] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def rows_for(self, users: Optional[Sequence[User]]):
        """Row-index array for a user subset (None = all users)."""
        if users is None:
            return np.arange(self.num_users)
        return np.array([self.user_row[u.item_id] for u in users], dtype=np.intp)

    def _doc_weight_vector(self, doc: Mapping[int, int]):
        """Document term weights as a vector over the user-term columns.

        Memoized per document content: candidate selection scores the
        same handful of augmented documents at every candidate location.
        """
        key = frozenset(doc.items())
        w = self._doc_vec_cache.get(key)
        if w is not None:
            return w
        w = np.zeros(self.num_terms, dtype=np.float64)
        if doc:
            for tid, wt in self.dataset.relevance.document_weights(doc).items():
                col = self.term_col.get(tid)
                if col is not None:
                    w[col] = wt
        if len(self._doc_vec_cache) >= 4096:  # bound memory across queries
            self._doc_vec_cache.clear()
        self._doc_vec_cache[key] = w
        return w

    # ------------------------------------------------------------------
    # Score kernels (vectorized over users)
    # ------------------------------------------------------------------
    def spatial_scores(self, location: Point, rows=None):
        """``SS(location, u)`` for every selected user."""
        xy = self.user_xy if rows is None else self.user_xy[rows]
        d = _pairwise_norm(
            xy[:, 0] - location.x, xy[:, 1] - location.y, self.dataset.metric.p
        )
        return np.clip(1.0 - d / self.dataset.dmax, 0.0, 1.0)

    def text_scores(self, doc: Mapping[int, int], rows=None):
        """``TS(doc, u.d)`` for every selected user."""
        w = self._doc_weight_vector(doc)
        terms = self.user_terms if rows is None else self.user_terms[rows]
        z = self.user_z if rows is None else self.user_z[rows]
        sums = terms @ w
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(z > 0.0, np.minimum(1.0, sums / np.where(z > 0.0, z, 1.0)), 0.0)
        return ts

    def sts(self, location: Point, doc: Mapping[int, int], rows=None):
        """``STS`` of a (location, document) pair against every user."""
        alpha = self.dataset.alpha
        return alpha * self.spatial_scores(location, rows) + (
            1.0 - alpha
        ) * self.text_scores(doc, rows)

    # ------------------------------------------------------------------
    # Bound kernels (Section 6.1, vectorized over users)
    # ------------------------------------------------------------------
    def _augmentation_gains(
        self, ox: STObject, candidate_terms: Iterable[int]
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Per-candidate optimistic gains (Lemma 3), user-independent.

        Returns (column indices, gains) for the candidates some user
        holds and whose gain is positive — the only ones
        ``best_augmentation_weights`` ever sums.
        """
        from .bounds import candidate_term_weight

        rel = self.dataset.relevance
        cols: List[int] = []
        gains: List[float] = []
        for t in sorted(set(candidate_terms)):
            col = self.term_col.get(t)
            if col is None:
                continue
            optimistic = candidate_term_weight(rel, ox.terms, t)
            gain = (
                optimistic - rel.term_weight(t, ox.terms)
                if t in ox.terms
                else optimistic
            )
            if gain > 0.0:
                cols.append(col)
                gains.append(gain)
        return np.array(cols, dtype=np.intp), np.array(gains, dtype=np.float64)

    def location_upper(
        self,
        location: Point,
        ox: STObject,
        candidate_terms: Iterable[int],
        ws: int,
        rows=None,
    ):
        """``UBL(l, u)`` for every selected user (Lemma 3, per-user)."""
        alpha = self.dataset.alpha
        ss = self.spatial_scores(location, rows)
        z = self.user_z if rows is None else self.user_z[rows]
        terms = self.user_terms if rows is None else self.user_terms[rows]

        base = terms @ self._doc_weight_vector(ox.terms)
        extra = np.zeros(len(base))
        if ws > 0:
            cols, gains = self._augmentation_gains(ox, candidate_terms)
            if len(cols):
                per_user = terms[:, cols] * gains
                if len(cols) > ws:
                    per_user = -np.sort(-per_user, axis=1)[:, :ws]
                extra = per_user.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(
                z > 0.0,
                np.minimum(1.0, (base + extra) / np.where(z > 0.0, z, 1.0)),
                0.0,
            )
        out = alpha * ss + (1.0 - alpha) * ts
        # z <= 0 users score alpha * ss exactly (scalar short-circuit).
        return np.where(z > 0.0, out, alpha * ss)

    def location_lower(self, location: Point, ox: STObject, rows=None):
        """``LBL(l, u)``: exact STS of the un-augmented ``ox`` at ``l``."""
        return self.sts(location, ox.terms, rows)

    # ------------------------------------------------------------------
    # Decision kernels (guard-banded; results match the scalar backend)
    # ------------------------------------------------------------------
    def threshold_mask(
        self,
        location: Point,
        doc: Mapping[int, int],
        users: Sequence[User],
        rsk: Mapping[int, float],
    ) -> List[bool]:
        """Guard-banded ``STS(location, doc, u) >= RSk(u)`` per user.

        Pairs whose vectorized score lands within ``GUARD_EPS`` of the
        threshold are re-scored with the scalar path, so the decisions
        match the scalar scan exactly, ties included.
        """
        rows = self.rows_for(users)
        scores = self.sts(location, doc, rows)
        thresholds = np.array([rsk[u.item_id] for u in users], dtype=np.float64)
        passed = scores >= thresholds + GUARD_EPS
        for i in np.nonzero(np.abs(scores - thresholds) < GUARD_EPS)[0]:
            u = users[i]
            passed[i] = (
                self.dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
            )
        return passed.tolist()

    def threshold_mask_many(
        self,
        location: Point,
        evals: Sequence[Tuple[Mapping[int, int], Sequence[User]]],
        rsk: Mapping[int, float],
    ) -> List[List[bool]]:
        """:meth:`threshold_mask` for many (document, users) groups at one
        location in a single kernel dispatch.

        All (user, document) pairs share one spatial-score vector and
        one gathered text reduction, which matters when the groups are
        small (the greedy selector's HW evaluations: tens of documents
        with a handful of users each per location).
        """
        if not evals:
            return []
        ss_full = self.spatial_scores(location)
        w_mat = np.stack([self._doc_weight_vector(doc) for doc, _ in evals])
        pair_rows: List[int] = []
        pair_docs: List[int] = []
        thresholds: List[float] = []
        for d, (_doc, members) in enumerate(evals):
            for u in members:
                pair_rows.append(self.user_row[u.item_id])
                pair_docs.append(d)
                thresholds.append(rsk[u.item_id])
        rows = np.array(pair_rows, dtype=np.intp)
        docs = np.array(pair_docs, dtype=np.intp)
        thr = np.array(thresholds, dtype=np.float64)
        sums = np.einsum("ij,ij->i", self.user_terms[rows], w_mat[docs])
        z = self.user_z[rows]
        ts = np.where(z > 0.0, np.minimum(1.0, sums / np.where(z > 0.0, z, 1.0)), 0.0)
        alpha = self.dataset.alpha
        scores = alpha * ss_full[rows] + (1.0 - alpha) * ts
        passed = scores >= thr + GUARD_EPS
        banded = np.nonzero(np.abs(scores - thr) < GUARD_EPS)[0]
        out: List[List[bool]] = []
        i = 0
        flat = passed.tolist()
        banded_set = set(banded.tolist())
        for d, (doc, members) in enumerate(evals):
            group: List[bool] = []
            for u in members:
                ok = flat[i]
                if i in banded_set:
                    ok = self.dataset.sts_parts(location, doc, u) >= rsk[u.item_id]
                group.append(ok)
                i += 1
            out.append(group)
        return out

    def brstknn(
        self,
        ox: STObject,
        location: Point,
        keywords: Iterable[int],
        users: Sequence[User],
        rsk: Mapping[int, float],
    ) -> frozenset:
        """Vectorized :func:`~repro.core.keyword_selection.compute_brstknn`.

        Winner membership is ``STS >= RSk(u)`` via :meth:`threshold_mask`.
        """
        from .bounds import augmented_document

        if not users:
            return frozenset()
        doc = augmented_document(ox.terms, keywords)
        passed = self.threshold_mask(location, doc, users, rsk)
        return frozenset(u.item_id for u, ok in zip(users, passed) if ok)

    def shortlist(
        self,
        location: Point,
        ox: STObject,
        candidate_terms: Sequence[int],
        ws: int,
        users: Sequence[User],
        rsk: Mapping[int, float],
        bounds=None,
    ) -> List[User]:
        """``LU_l``: users with ``UBL(l, u) >= RSk(u)``, scalar-exact.

        Membership identical to the python backend: the guard band sends
        near-threshold users through ``BoundCalculator.location_upper_user``.
        """
        from .bounds import BoundCalculator

        if not users:
            return []
        rows = self.rows_for(users)
        ub = self.location_upper(location, ox, candidate_terms, ws, rows)
        thresholds = np.array([rsk[u.item_id] for u in users], dtype=np.float64)
        keep = ub >= thresholds + GUARD_EPS
        banded = np.abs(ub - thresholds) < GUARD_EPS
        if banded.any():
            bounds = bounds or BoundCalculator(self.dataset)
            for i in np.nonzero(banded)[0]:
                u = users[i]
                keep[i] = (
                    bounds.location_upper_user(location, ox, candidate_terms, ws, u)
                    >= rsk[u.item_id]
                )
        return [u for i, u in enumerate(users) if keep[i]]

    # ------------------------------------------------------------------
    # Candidate-pool scoring (Algorithm 2 refinement)
    # ------------------------------------------------------------------
    def candidate_score_matrix(self, candidates: Sequence, rows=None) -> "np.ndarray":
        """``STS(o, u)`` for selected users x candidate objects.

        ``candidates`` is a sequence of
        :class:`~repro.core.joint_topk.CandidateObject`; text weights
        are recomputed from the full object documents (the traversal's
        ``weights`` are restricted to the group union, but so are user
        keyword sets, which is all the text score ever reads).
        """
        alpha = self.dataset.alpha
        n = len(candidates)
        user_xy = self.user_xy if rows is None else self.user_xy[rows]
        user_terms = self.user_terms if rows is None else self.user_terms[rows]
        user_z = self.user_z if rows is None else self.user_z[rows]
        cand_xy = np.array(
            [(c.obj.location.x, c.obj.location.y) for c in candidates],
            dtype=np.float64,
        ).reshape(n, 2)
        d = _pairwise_norm(
            user_xy[:, 0:1] - cand_xy[:, 0][None, :],
            user_xy[:, 1:2] - cand_xy[:, 1][None, :],
            self.dataset.metric.p,
        )
        ss = np.clip(1.0 - d / self.dataset.dmax, 0.0, 1.0)
        w = np.zeros((self.num_terms, n), dtype=np.float64)
        for j, c in enumerate(candidates):
            w[:, j] = self._doc_weight_vector(c.obj.terms)
        sums = user_terms @ w
        z = user_z[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            ts = np.where(z > 0.0, np.minimum(1.0, sums / np.where(z > 0.0, z, 1.0)), 0.0)
        return alpha * ss + (1.0 - alpha) * ts


def arrays_for(dataset: "Dataset") -> DatasetArrays:
    """The cached :class:`DatasetArrays` of ``dataset`` (built lazily).

    The arrays hang off the dataset itself, so their lifetime is the
    dataset's own: clones from ``with_alpha``/``with_users`` build
    fresh arrays, and a collected dataset takes its arrays with it (the
    dataset<->arrays reference cycle is ordinary gc fodder).
    """
    arrays = getattr(dataset, "_kernel_arrays", None)
    if arrays is None:
        arrays = DatasetArrays(dataset)
        dataset._kernel_arrays = arrays  # type: ignore[attr-defined]
    return arrays
