"""Binary scatter-payload codec over the shared-memory arena.

Every flush the executors scatter work to pool workers as payload
tuples (:func:`repro.core.pipeline.execute_shard_payload`).  Before
this module, each tuple crossed the worker pipe by pickle — including
the O(|U|) merged ``RSk(u)`` maps the root search pool consumes and the
per-shard threshold maps in shortlist payloads, re-serialized per chunk
per flush.  The codec replaces the heavy elements with:

* :class:`ArenaRef` — a ~100-byte named pointer into the engine's
  :class:`~repro.storage.shm.ShmArena`.  The referenced block is
  written to shared memory **once** and *delta-shipped*: repeat flushes
  whose threshold maps / traversal pools are unchanged (the memoized
  common case) re-send only the reference.  Blocks are keyed on
  ``Dataset.epoch`` plus the codec's ship sequence, so a mutated
  dataset can never alias a stale block.
* packed index blocks (:class:`PackedIds`, :class:`PackedMergedInput`)
  — flat little-endian int64/float64 buffers instead of pickled python
  list-of-list structures for shortlist ids and kept-location tables.
  Search-stage blocks above :data:`SHIP_ITEMS_MIN_BYTES` are per-flush
  one-shots, so they cross as a single arena column per chunk
  (:meth:`PayloadCodec.ship_once` — written, referenced, retired; never
  memoized) rather than megabytes re-pickled onto the pipe.

Decoding reconstructs byte-identical python values (dict insertion
order included), so results stay bitwise identical to the pickle path —
the PR-3 convention.  The pickle path itself remains intact: payloads
that never meet a codec (in-process execution, degraded mode,
``--no-shm``) are passed through untouched, and a worker can always
decode a codec payload because references resolve by *name* via
:meth:`ShmArena.read_column_bytes` (open, copy, close — no lingering
worker-side mappings, nothing to leak on SIGKILL).

Encoding for the two binary block kinds:

* ``rsk`` — ``"RSK1" | n:u32 | ids:int64[n] | values:float64[n]`` in
  dict insertion order;
* ``blob`` — a pickle of the object (used for the memoized traversal
  pools, super-user and ``SharedTopK`` states whose win is the delta
  shipping, not the encoding).
"""

from __future__ import annotations

import pickle
import struct
import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..storage.shm import ShmArena, ShmArenaError

__all__ = [
    "ArenaRef",
    "PackedIds",
    "PackedMergedInput",
    "PayloadCodec",
    "encode_rsk",
    "decode_rsk",
    "encode_shard_payload",
    "decode_shard_payload",
    "encode_select_payload",
    "decode_select_payload",
    "encode_gather_payload",
    "decode_gather_payload",
    "resolve_ref",
    "payload_nbytes",
]

_RSK_MAGIC = b"RSK1"


@dataclass(frozen=True, slots=True)
class ArenaRef:
    """A named pointer to one arena column, shipped instead of data."""

    arena: str
    column: str
    kind: str   # "rsk" | "blob"
    count: int  # entries (rsk) or bytes (blob): sanity + introspection


def payload_nbytes(obj) -> int:
    """Bytes ``obj`` occupies on the worker pipe (pickle size)."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# Binary block encodings (array-module based: no numpy requirement)
# ----------------------------------------------------------------------

def encode_rsk(rsk: Dict[int, float]) -> bytes:
    """``{user_id: RSk(u)}`` -> flat int64/float64 block.

    Preserves insertion order so the decoded dict iterates identically
    to the original — lookups *and* any order-sensitive consumer see
    the same mapping.
    """
    ids = array("q", rsk.keys())
    values = array("d", rsk.values())
    return b"".join((
        _RSK_MAGIC, struct.pack("<I", len(rsk)),
        ids.tobytes(), values.tobytes(),
    ))


def decode_rsk(data: bytes) -> Dict[int, float]:
    if data[:4] != _RSK_MAGIC:
        raise ValueError("not an RSK block")
    (n,) = struct.unpack_from("<I", data, 4)
    ids = array("q")
    ids.frombytes(data[8:8 + 8 * n])
    values = array("d")
    values.frombytes(data[8 + 8 * n:8 + 16 * n])
    return dict(zip(ids.tolist(), values.tolist()))


@dataclass(frozen=True, slots=True)
class PackedIds:
    """``List[List[int]]`` as one flat int64 buffer + offsets."""

    offsets: bytes  # int64[groups + 1] prefix offsets
    flat: bytes     # int64[total] concatenated ids

    @classmethod
    def pack(cls, groups: List[List[int]]) -> "PackedIds":
        offsets = array("q", [0])
        flat = array("q")
        total = 0
        for group in groups:
            flat.extend(group)
            total += len(group)
            offsets.append(total)
        return cls(offsets=offsets.tobytes(), flat=flat.tobytes())

    def unpack(self) -> List[List[int]]:
        offsets = array("q")
        offsets.frombytes(self.offsets)
        flat = array("q")
        flat.frombytes(self.flat)
        items = flat.tolist()
        return [
            items[offsets[i]:offsets[i + 1]]
            for i in range(len(offsets) - 1)
        ]


@dataclass(frozen=True, slots=True)
class PackedMergedInput:
    """One search-stage item with its tables packed flat.

    Mirrors the ``(query, kept, ids_per_location, pruned, stats,
    base_selection_s)`` tuples :meth:`ShortlistStage.merge` produces;
    ``unpack`` restores exactly that tuple (python ints/floats, same
    order, same values bit for bit).
    """

    query: object
    kept_loc: bytes        # int64[kept]
    kept_ub: bytes         # float64[kept]
    kept_lb: bytes         # float64[kept]
    ids: PackedIds         # per kept location, in kept order
    pruned: int
    stats: object
    base_selection_s: float

    @classmethod
    def pack(cls, item: tuple) -> "PackedMergedInput":
        query, kept, ids_per_location, pruned, stats, base_selection_s = item
        return cls(
            query=query,
            kept_loc=array("q", (loc for loc, _, _ in kept)).tobytes(),
            kept_ub=array("d", (ub for _, ub, _ in kept)).tobytes(),
            kept_lb=array("d", (lb for _, _, lb in kept)).tobytes(),
            ids=PackedIds.pack(ids_per_location),
            pruned=pruned,
            stats=stats,
            base_selection_s=base_selection_s,
        )

    def unpack(self) -> tuple:
        loc = array("q")
        loc.frombytes(self.kept_loc)
        ub = array("d")
        ub.frombytes(self.kept_ub)
        lb = array("d")
        lb.frombytes(self.kept_lb)
        kept = list(zip(loc.tolist(), ub.tolist(), lb.tolist()))
        return (
            self.query, kept, self.ids.unpack(), self.pruned, self.stats,
            self.base_selection_s,
        )


# ----------------------------------------------------------------------
# Reference resolution (worker side and in-process fallback alike)
# ----------------------------------------------------------------------

#: Decoded blocks, keyed ``(arena, column)``.  Columns are immutable
#: once written (epoch+sequence keyed), so cached entries never go
#: stale; the bound only caps memory.
_REF_CACHE: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
_REF_CACHE_MAX = 64
_REF_LOCK = threading.Lock()


def resolve_ref(ref: ArenaRef):
    """Materialize one reference (process-local LRU over arena reads)."""
    key = (ref.arena, ref.column)
    with _REF_LOCK:
        if key in _REF_CACHE:
            _REF_CACHE.move_to_end(key)
            return _REF_CACHE[key]
    data = ShmArena.read_column_bytes(ref.arena, ref.column)
    if ref.kind == "rsk":
        obj = decode_rsk(data)
    elif ref.kind == "blob":
        obj = pickle.loads(data)
    else:
        raise ValueError(f"unknown ArenaRef kind {ref.kind!r}")
    with _REF_LOCK:
        _REF_CACHE[key] = obj
        while len(_REF_CACHE) > _REF_CACHE_MAX:
            _REF_CACHE.popitem(last=False)
    return obj


def _clear_ref_cache() -> None:
    """Test hook: forget decoded blocks (simulates a fresh worker)."""
    with _REF_LOCK:
        _REF_CACHE.clear()


def _maybe(value):
    return resolve_ref(value) if isinstance(value, ArenaRef) else value


# ----------------------------------------------------------------------
# The codec (parent side: owns the arena writes + the delta memo)
# ----------------------------------------------------------------------

class PayloadCodec:
    """Encodes scatter payloads against one engine's arena.

    ``ship`` writes an object's block to the arena once and returns the
    same :class:`ArenaRef` for every later call with the same object at
    the same dataset epoch (identity-keyed memo with strong references,
    so a recycled ``id()`` can never alias).  If the arena write fails
    (directory full, shm exhausted) the object is returned unchanged —
    the payload simply stays on the pickle path, results unaffected.
    """

    #: Delta-memo capacity: the live working set is one traversal pool,
    #: one super-user and a handful of per-(shard, k) threshold maps;
    #: evicted entries only cost a re-ship.
    MEMO_MAX = 64

    #: Ships to wait before unlinking a superseded column.  Any payload
    #: that references it was dispatched at least this many ships ago —
    #: far past any in-flight flush — so decoders never race a drop.
    RETIRE_LAG = 64

    def __init__(
        self, arena: ShmArena, epoch_fn: Optional[Callable[[], int]] = None
    ) -> None:
        self.arena = arena
        self.epoch_fn = epoch_fn if epoch_fn is not None else (lambda: 0)
        self._memo: "OrderedDict[int, Tuple[object, int, ArenaRef]]" = OrderedDict()
        self._pending_drops: List[Tuple[int, str]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self.arena_bytes_written = 0
        self.delta_hits = 0
        self.inline_fallbacks = 0
        self._broken = False

    def ship(self, obj, tag: str, kind: str = "blob"):
        """An :class:`ArenaRef` for ``obj`` (or ``obj`` itself on
        fallback).  ``tag`` names the block for debuggability; identity
        is the epoch + sequence suffix."""
        if self._broken:
            return obj
        epoch = self.epoch_fn()
        with self._lock:
            entry = self._memo.get(id(obj))
            if entry is not None and entry[0] is obj and entry[1] == epoch:
                self._memo.move_to_end(id(obj))
                self.delta_hits += 1
                return entry[2]
            if entry is not None:
                # Same object at a new epoch (or a recycled id): the old
                # block is superseded — retire it once it's safely cold.
                self._pending_drops.append((self._seq, entry[2].column))
            try:
                data = encode_rsk(obj) if kind == "rsk" else pickle.dumps(
                    obj, protocol=pickle.HIGHEST_PROTOCOL
                )
            except (TypeError, OverflowError, pickle.PicklingError):
                # Unencodable (non-int64 keys, unpicklable object):
                # leave it inline on the pickle path.
                self.inline_fallbacks += 1
                return obj
            self._seq += 1
            column = f"{tag}-e{epoch}-f{self._seq}"
            try:
                self.arena.add_bytes(column, data)
            except (ShmArenaError, OSError):
                # Arena exhausted or gone: stop trying (every later
                # payload ships inline — correct, just un-optimized).
                self.inline_fallbacks += 1
                self._broken = True
                return obj
            count = len(obj) if kind == "rsk" else len(data)
            ref = ArenaRef(
                arena=self.arena.name, column=column, kind=kind, count=count
            )
            self._memo[id(obj)] = (obj, epoch, ref)
            while len(self._memo) > self.MEMO_MAX:
                _, (_, _, old_ref) = self._memo.popitem(last=False)
                self._pending_drops.append((self._seq, old_ref.column))
            self._drain_retired()
            self.arena_bytes_written += len(data)
            return ref

    def ship_once(self, obj, tag: str, kind: str = "blob"):
        """Ship a per-flush block that will never repeat: written and
        referenced like :meth:`ship`, but not memoized (a one-shot
        object in the delta memo would only evict real candidates and
        pin its memory) and scheduled for retirement immediately — the
        column is dropped once it is ``RETIRE_LAG`` ships cold.
        """
        if self._broken:
            return obj
        epoch = self.epoch_fn()
        with self._lock:
            try:
                data = encode_rsk(obj) if kind == "rsk" else pickle.dumps(
                    obj, protocol=pickle.HIGHEST_PROTOCOL
                )
            except (TypeError, OverflowError, pickle.PicklingError):
                self.inline_fallbacks += 1
                return obj
            self._seq += 1
            column = f"{tag}-e{epoch}-f{self._seq}"
            try:
                self.arena.add_bytes(column, data)
            except (ShmArenaError, OSError):
                self.inline_fallbacks += 1
                self._broken = True
                return obj
            self._pending_drops.append((self._seq, column))
            self._drain_retired()
            self.arena_bytes_written += len(data)
            return ArenaRef(
                arena=self.arena.name, column=column, kind=kind,
                count=len(obj) if kind == "rsk" else len(data),
            )

    def _drain_retired(self) -> None:
        """Drop every pending column that is safely cold (lock held)."""
        while (
            self._pending_drops
            and self._seq - self._pending_drops[0][0] > self.RETIRE_LAG
        ):
            _, column = self._pending_drops.pop(0)
            try:
                self.arena.drop_column(column)
            except (ShmArenaError, OSError):  # pragma: no cover
                pass

    def stats_snapshot(self) -> dict:
        return {
            "arena": self.arena.name,
            "arena_bytes_written": self.arena_bytes_written,
            "delta_hits": self.delta_hits,
            "inline_fallbacks": self.inline_fallbacks,
        }


# ----------------------------------------------------------------------
# Payload encode/decode (position-preserving: shard ids, fault hooks
# and every consumer keep addressing the same tuple slots)
# ----------------------------------------------------------------------

#: Below this many packed bytes a search-items block stays inline on
#: the pipe: a ~100-byte ref plus an arena column (page-rounded, plus
#: directory churn) only pays for itself on real blocks.
SHIP_ITEMS_MIN_BYTES = 4096


def _packed_items_nbytes(packed: List[PackedMergedInput]) -> int:
    return sum(
        len(p.kept_loc) + len(p.kept_ub) + len(p.kept_lb)
        + len(p.ids.offsets) + len(p.ids.flat)
        for p in packed
    )


def encode_shard_payload(codec: PayloadCodec, payload: tuple) -> tuple:
    """Codec form of one :func:`execute_shard_payload` work item."""
    kind = payload[0]
    if kind == "refine":
        _, traversal, ks, backend, shard_id = payload
        return (
            "refine", codec.ship(traversal, f"trav-s{shard_id}"), ks, backend,
            shard_id,
        )
    if kind == "shortlist":
        _, su, queries, rsk_by_k, group_by_k, backend, shard_id = payload
        return (
            "shortlist", codec.ship(su, f"su-s{shard_id}"), queries,
            {
                k: codec.ship(rsk, f"rsk-s{shard_id}-k{k}", kind="rsk")
                for k, rsk in rsk_by_k.items()
            },
            group_by_k, backend, shard_id,
        )
    if kind == "search":
        _, items, rsk, rsk_group, method, backend = payload
        packed = [PackedMergedInput.pack(item) for item in items]
        if _packed_items_nbytes(packed) >= SHIP_ITEMS_MIN_BYTES:
            # Per-flush blocks, so no delta possible — the win is that
            # the kept/id tables cross to every worker as a ~100-byte
            # name instead of re-pickling megabytes onto the pipe.
            packed = codec.ship_once(packed, "search-items")
        return (
            "search", packed,
            codec.ship(rsk, "rsk-root", kind="rsk"), rsk_group, method, backend,
        )
    if kind == "indexed_search":
        (_, queries, views, traversal, rsk_group, users_total, topk_time_s,
         io_node_visits, io_invfile_blocks, method, backend) = payload
        return (
            "indexed_search", queries, views, codec.ship(traversal, "root-trav"),
            rsk_group, users_total, topk_time_s, io_node_visits,
            io_invfile_blocks, method, backend,
        )
    return payload  # unknown kinds pass through untouched


def decode_shard_payload(payload: tuple) -> tuple:
    """Inverse of :func:`encode_shard_payload`; identity on plain
    (pickle-path) payloads, so every execution mode funnels through one
    call site."""
    if not isinstance(payload, tuple) or not payload:
        return payload
    kind = payload[0]
    if kind == "refine":
        _, traversal, ks, backend, shard_id = payload
        return ("refine", _maybe(traversal), ks, backend, shard_id)
    if kind == "shortlist":
        _, su, queries, rsk_by_k, group_by_k, backend, shard_id = payload
        return (
            "shortlist", _maybe(su), queries,
            {k: _maybe(rsk) for k, rsk in rsk_by_k.items()},
            group_by_k, backend, shard_id,
        )
    if kind == "search":
        _, items, rsk, rsk_group, method, backend = payload
        return (
            "search",
            [
                item.unpack() if isinstance(item, PackedMergedInput) else item
                for item in _maybe(items)
            ],
            _maybe(rsk), rsk_group, method, backend,
        )
    if kind == "indexed_search":
        (_, queries, views, traversal, rsk_group, users_total, topk_time_s,
         io_node_visits, io_invfile_blocks, method, backend) = payload
        return (
            "indexed_search", queries, views, _maybe(traversal), rsk_group,
            users_total, topk_time_s, io_node_visits, io_invfile_blocks,
            method, backend,
        )
    return payload


def encode_select_payload(codec: PayloadCodec, payload: tuple) -> tuple:
    """Codec form of one select-stage chunk: the shared phase-1 state
    (an O(|U|) ``SharedTopK``) delta-ships as a blob reference."""
    queries, shared, mode, method, backend = payload
    return (queries, codec.ship(shared, "topk"), mode, method, backend)


def decode_select_payload(payload: tuple) -> tuple:
    queries, shared, mode, method, backend = payload
    return (queries, _maybe(shared), mode, method, backend)


# ----------------------------------------------------------------------
# Gather funnels (worker -> parent direction)
# ----------------------------------------------------------------------
# Scatter payloads got the codec in PR 9; the *returned* chunks still
# crossed back as pickles (``PartialResult.__reduce__`` compacts the
# per-object blocks, but every object pays pickle framing and rebuild
# references).  These funnels turn a whole refine/shortlist chunk into
# ONE self-describing binary block — no pickle at all on the gather
# direction, which is what the socket transport frames verbatim and
# what ``payload_bytes_in`` measures on the fork-pool pipe.  Every
# other chunk shape (search results, indexed ``(result, charge)``
# pairs, empty lists) passes through unchanged, so the decode funnel is
# safe to apply unconditionally at every collect site.

_GATHER_PARTIALS_MAGIC = b"GPR1"
_GATHER_SHORTLISTS_MAGIC = b"GSL1"
_GPR_ROW = "<qqqdI"   # shard_id, k, users_total, time_s, rsk blob len
_GSL_ROW = "<qqdI"    # shard_id, locations_pruned, time_s, kept count


def _encode_gather_partials(chunk) -> bytes:
    parts = [_GATHER_PARTIALS_MAGIC, struct.pack("<I", len(chunk))]
    for p in chunk:
        blob = encode_rsk(p.rsk)
        parts.append(struct.pack(
            _GPR_ROW, p.shard_id, p.k, p.users_total, p.time_s, len(blob)
        ))
        parts.append(blob)
    return b"".join(parts)


def _decode_gather_partials(data: bytes) -> list:
    from .partial import PartialResult

    (n,) = struct.unpack_from("<I", data, 4)
    row = struct.calcsize(_GPR_ROW)
    off = 8
    out = []
    for _ in range(n):
        shard_id, k, users_total, time_s, blob_len = struct.unpack_from(
            _GPR_ROW, data, off
        )
        off += row
        rsk = decode_rsk(data[off:off + blob_len])
        off += blob_len
        out.append(PartialResult(
            shard_id=shard_id, k=k, rsk=rsk,
            users_total=users_total, time_s=time_s,
        ))
    return out


def _encode_gather_shortlists(chunk) -> bytes:
    parts = [_GATHER_SHORTLISTS_MAGIC, struct.pack("<I", len(chunk))]
    for p in chunk:
        loc = array("q", (t[0] for t in p.kept)).tobytes()
        ub = array("d", (t[1] for t in p.kept)).tobytes()
        lb = array("d", (t[2] for t in p.kept)).tobytes()
        ids = PackedIds.pack(p.users)
        parts.append(struct.pack(
            _GSL_ROW, p.shard_id, p.locations_pruned, p.time_s, len(p.kept)
        ))
        parts.extend((loc, ub, lb))
        parts.append(struct.pack("<II", len(ids.offsets), len(ids.flat)))
        parts.extend((ids.offsets, ids.flat))
    return b"".join(parts)


def _decode_gather_shortlists(data: bytes) -> list:
    from .partial import ShortlistPartial

    (n,) = struct.unpack_from("<I", data, 4)
    row = struct.calcsize(_GSL_ROW)
    off = 8
    out = []
    for _ in range(n):
        shard_id, pruned, time_s, kept_n = struct.unpack_from(
            _GSL_ROW, data, off
        )
        off += row
        loc = array("q")
        loc.frombytes(data[off:off + 8 * kept_n])
        off += 8 * kept_n
        ub = array("d")
        ub.frombytes(data[off:off + 8 * kept_n])
        off += 8 * kept_n
        lb = array("d")
        lb.frombytes(data[off:off + 8 * kept_n])
        off += 8 * kept_n
        off_len, flat_len = struct.unpack_from("<II", data, off)
        off += 8
        ids = PackedIds(
            offsets=data[off:off + off_len],
            flat=data[off + off_len:off + off_len + flat_len],
        )
        off += off_len + flat_len
        out.append(ShortlistPartial(
            shard_id=shard_id,
            kept=list(zip(loc.tolist(), ub.tolist(), lb.tolist())),
            users=ids.unpack(),
            locations_pruned=pruned,
            time_s=time_s,
        ))
    return out


def encode_gather_payload(chunk):
    """Compact wire form of one worker's returned chunk.

    A chunk of :class:`~repro.core.partial.PartialResult`\\ s (refine)
    or :class:`~repro.core.partial.ShortlistPartial`\\ s (shortlist)
    becomes one RSK1/PackedIds-packed ``bytes`` block; every other
    chunk is returned unchanged, so callers can funnel all returns
    through this without knowing the payload kind.  Decoding restores
    byte-identical python values (float bits, dict insertion order,
    list order), preserving the merge layer's determinism contract.
    """
    from .partial import PartialResult, ShortlistPartial

    if not isinstance(chunk, list) or not chunk:
        return chunk
    try:
        if all(type(p) is PartialResult for p in chunk):
            return _encode_gather_partials(chunk)
        if all(type(p) is ShortlistPartial for p in chunk):
            return _encode_gather_shortlists(chunk)
    except (TypeError, OverflowError, struct.error):
        # Unpackable contents (non-int64 ids): stay on the pickle path.
        return chunk
    return chunk


def decode_gather_payload(chunk):
    """Inverse of :func:`encode_gather_payload`; identity on plain
    (never-encoded) chunks, so in-process fallback rounds and search
    results flow through the same collect-site funnel untouched."""
    if not isinstance(chunk, (bytes, bytearray)):
        return chunk
    data = bytes(chunk)
    if data[:4] == _GATHER_PARTIALS_MAGIC:
        return _decode_gather_partials(data)
    if data[:4] == _GATHER_SHORTLISTS_MAGIC:
        return _decode_gather_shortlists(data)
    return chunk
