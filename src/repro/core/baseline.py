"""The exhaustive baseline of Section 4.

The baseline answers a MaxBRSTkNN query in two computationally heavy
steps, with no pruning beyond the relevance condition itself:

1. **Per-user top-k.**  Every user's top-k objects are computed
   individually over the IR-tree (``repro.topk.single``), yielding
   ``RSk(u)`` for each user.
2. **Exhaustive candidate scan.**  Every tuple ``<l, c>`` of a candidate
   location and a size-``ws`` keyword combination is scored against
   every user sharing a keyword with ``ox.d ∪ c``; the tuple with the
   most BRSTkNNs wins.  The baseline returns *exactly* ``ws`` keywords
   (a quirk the paper points out), so when fewer useful keywords exist
   it simply pads with whatever candidates remain.

This is also the correctness oracle: the optimized exact engine must
match its cardinality on every input (tests enforce this).
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import FrozenSet, Mapping, Optional, Sequence

from ..index.irtree import IRTree
from ..model.dataset import Dataset
from ..model.objects import User
from ..storage.pager import PageStore
from ..topk.single import topk_all_users_individually
from .bounds import augmented_document
from .query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats

__all__ = ["baseline_maxbrstknn", "baseline_select_candidate"]


def baseline_select_candidate(
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    rsk: Mapping[int, float],
    users: Optional[Sequence[User]] = None,
    stats: Optional[QueryStats] = None,
) -> MaxBRSTkNNResult:
    """Exhaustive scan over all candidate tuples.

    Definition 1 allows ``|W'| <= ws``, and under length-normalized
    text measures a smaller keyword set can strictly dominate, so the
    scan covers every combination size from 0 to ``ws`` (the paper's
    baseline returns exactly ``ws`` keywords; see DESIGN.md for why we
    widen it — it keeps the baseline a true optimum and therefore a
    usable correctness oracle for the pruned exact algorithm).
    """
    users = dataset.users if users is None else users
    stats = stats if stats is not None else QueryStats()
    pool = sorted(set(query.keywords))
    max_size = min(query.ws, len(pool))
    combos = [()]
    for size in range(1, max_size + 1):
        combos.extend(combinations(pool, size))

    best_location = query.locations[0]
    best_keywords: FrozenSet[int] = frozenset()
    best_users: FrozenSet[int] = frozenset()
    have_best = False

    for loc in query.locations:
        for combo in combos:
            doc = augmented_document(query.ox.terms, combo)
            winners = set()
            for u in users:
                # NB: the paper's baseline only scores users sharing a
                # keyword with ox.d ∪ c, but with alpha-weighted scoring
                # a user can be won purely spatially (TS = 0), so the
                # scan must evaluate everyone to stay an exact oracle.
                if dataset.sts_parts(loc, doc, u) >= rsk[u.item_id]:
                    winners.add(u.item_id)
            stats.keyword_combinations_scored += 1
            if not have_best or len(winners) > len(best_users):
                best_location, best_keywords, best_users = (
                    loc,
                    frozenset(combo),
                    frozenset(winners),
                )
                have_best = True
    return MaxBRSTkNNResult(
        location=best_location,
        keywords=best_keywords,
        brstknn=best_users,
        stats=stats,
    )


def baseline_maxbrstknn(
    tree: IRTree,
    dataset: Dataset,
    query: MaxBRSTkNNQuery,
    store: Optional[PageStore] = None,
) -> MaxBRSTkNNResult:
    """Full baseline: individual top-k for all users + exhaustive scan."""
    stats = QueryStats(users_total=len(dataset.users))
    t0 = time.perf_counter()
    before = store.counter.snapshot() if store is not None else None
    topk = topk_all_users_individually(tree, dataset, query.k, store=store)
    stats.topk_time_s = time.perf_counter() - t0
    if store is not None and before is not None:
        delta = store.counter.snapshot() - before
        stats.io_node_visits = delta.node_visits
        stats.io_invfile_blocks = delta.invfile_blocks
    rsk = {uid: res.kth_score for uid, res in topk.items()}
    t1 = time.perf_counter()
    result = baseline_select_candidate(dataset, query, rsk, stats=stats)
    stats.selection_time_s = time.perf_counter() - t1
    result.stats = stats
    return result
