"""Typed configuration for the layered query API.

The public query surface used to be stringly-typed: ``method=`` /
``mode=`` / ``backend=`` / ``workers=`` strings threaded separately
through :meth:`MaxBRSTkNNEngine.query`, :func:`query_batch`, the CLI
and the bench harness — with *different defaults per entry point*
(``query`` defaulted ``backend="python"`` while ``query_batch``
defaulted ``None``).  This module replaces the kwarg soup with two
frozen dataclasses:

* :class:`EngineConfig` — how indexes are built (fanout, MIUR-tree,
  buffer pages); one value per engine lifetime.
* :class:`QueryOptions` — how one query (or batch) is answered
  (method / mode / backend as :class:`enum.Enum`\\ s, selection
  fan-out ``workers``); validated on construction, shared by every
  entry point, with **one** default: :meth:`QueryOptions.default`.

Legacy string kwargs keep working through :func:`coerce_options`,
which maps them onto a :class:`QueryOptions` and emits a single
:class:`DeprecationWarning` per call.
"""

from __future__ import annotations

import contextlib
import enum
import warnings
from dataclasses import dataclass, replace
from typing import Optional, Union

from ..spatial.rtree import DEFAULT_FANOUT
from .kernels import resolve_backend

__all__ = [
    "Method",
    "Mode",
    "Backend",
    "Partitioner",
    "CachePolicy",
    "EngineConfig",
    "QueryOptions",
    "coerce_options",
]


def _require_int(name: str, value, minimum: int) -> None:
    """Reject non-ints *including* ``bool`` (``True`` is an ``int``).

    ``isinstance(x, int)`` alone accepts booleans — ``max_batch=True``
    used to validate and silently serve batches of one — so every
    integer knob across the config surface routes through this check.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an int (not bool), got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")


class _CoercingEnum(str, enum.Enum):
    """String-valued enum that accepts its own values case-insensitively."""

    @classmethod
    def coerce(cls, value: Union[str, "_CoercingEnum"]) -> "_CoercingEnum":
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            with contextlib.suppress(ValueError):
                return cls(value.lower())
        valid = ", ".join(repr(m.value) for m in cls)
        raise ValueError(
            f"unknown {cls.__name__.lower()} {value!r}; expected one of {valid}"
        )

    def __str__(self) -> str:  # "joint", not "Mode.JOINT", in messages
        return self.value


class Method(_CoercingEnum):
    """Keyword-selection method (Section 6)."""

    APPROX = "approx"  # Algorithm 4, greedy with guarantee
    EXACT = "exact"    # pruned exhaustive subset scan


class Mode(_CoercingEnum):
    """Query pipeline."""

    JOINT = "joint"        # Section 5: joint top-k + Algorithm 3
    BASELINE = "baseline"  # Section 4: per-user top-k + exhaustive scan
    INDEXED = "indexed"    # Section 7: users on disk under the MIUR-tree


class Backend(_CoercingEnum):
    """Scoring-kernel implementation (results are backend-identical)."""

    PYTHON = "python"  # scalar reference
    NUMPY = "numpy"    # vectorized kernels (repro.core.kernels)
    AUTO = "auto"      # numpy when importable, python otherwise

    def resolve(self) -> str:
        """Concrete backend name ("python" / "numpy") for the kernels."""
        return resolve_backend(self.value)


class Partitioner(_CoercingEnum):
    """User-set partitioning strategy for sharded execution.

    The strategies themselves live in :mod:`repro.datagen.partition`;
    this enum is the typed configuration handle.
    """

    HASH = "hash"  # deterministic id mix, statistically even shards
    GRID = "grid"  # spatial grid cells dealt round-robin, co-located users


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """How a :class:`MaxBRSTkNNEngine` builds its indexes.

    Attributes
    ----------
    fanout:
        R-tree fanout for every tree (objects and users).
    index_users:
        Also build the MIUR-tree so ``Mode.INDEXED`` is available.
    buffer_pages:
        LRU buffer capacity in pages; 0 = cold queries (paper setting).
    num_shards:
        Partition the user set across this many engines behind a
        :class:`~repro.serve.sharded.ShardedEngine` (scatter/gather
        execution, results identical to a single engine).  ``1`` (the
        default) means an ordinary single engine; a plain
        :class:`MaxBRSTkNNEngine` refuses configs with more shards —
        build through :func:`repro.serve.sharded.make_engine`.
    partitioner:
        How users are split across shards; strings coerce
        (``"hash"`` / ``"grid"``).  Ignored when ``num_shards == 1``.
    use_shm:
        Publish the engine's dense arrays into a named
        :class:`~repro.storage.shm.ShmArena` and ship scatter payloads
        through the binary arena codec (:mod:`repro.core.payload`)
        instead of pickle.  Results are bitwise identical either way;
        ``False`` keeps the pure fork/COW + pickle path.
    """

    fanout: int = DEFAULT_FANOUT
    index_users: bool = False
    buffer_pages: int = 0
    num_shards: int = 1
    partitioner: Partitioner = Partitioner.HASH
    use_shm: bool = False

    def __post_init__(self) -> None:
        _require_int("fanout", self.fanout, minimum=2)
        _require_int("buffer_pages", self.buffer_pages, minimum=0)
        _require_int("num_shards", self.num_shards, minimum=1)
        if not isinstance(self.index_users, bool):
            raise ValueError(
                f"index_users must be a bool, got {self.index_users!r}"
            )
        if not isinstance(self.use_shm, bool):
            raise ValueError(f"use_shm must be a bool, got {self.use_shm!r}")
        object.__setattr__(self, "partitioner", Partitioner.coerce(self.partitioner))

    def with_(self, **kwargs) -> "EngineConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)


@dataclass(frozen=True, slots=True)
class CachePolicy:
    """Knobs of the cross-flush result cache (:mod:`repro.core.cache`).

    Attributes
    ----------
    max_entries:
        LRU capacity in cached results.  A cached
        :class:`~repro.core.query.MaxBRSTkNNResult` is small (a
        location, two frozensets, stats), so the default keeps a few
        thousand hot queries without meaningful memory pressure.
    track_thresholds:
        Also count the warm tier: queries that *miss* the exact-result
        cache but land on a ``k`` the engine's memoized
        ``SharedTopK``/``RootTraversal`` pools have already walked —
        they skip the tree walk and threshold derivation even though
        the full selection re-runs.  Surfaced as
        ``cache_threshold_hits`` in :class:`~repro.serve.config.ServerStats`.
    """

    max_entries: int = 4096
    track_thresholds: bool = True

    def __post_init__(self) -> None:
        _require_int("max_entries", self.max_entries, minimum=1)
        if not isinstance(self.track_thresholds, bool):
            raise ValueError(
                f"track_thresholds must be a bool, got {self.track_thresholds!r}"
            )

    def with_(self, **kwargs) -> "CachePolicy":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)


@dataclass(frozen=True, slots=True)
class QueryOptions:
    """How one query (or one batch of queries) is answered.

    Attributes
    ----------
    method:
        Keyword selector; strings are coerced (``"exact"`` works).
    mode:
        Pipeline; strings are coerced.
    backend:
        Scoring kernels; strings are coerced.  The single shared
        default is :attr:`Backend.AUTO` — ``query`` and ``query_batch``
        used to disagree ("python" vs ``None``); both now resolve
        through :meth:`default`.
    workers:
        Fan candidate selection out over a process pool (batches only;
        a single query always runs in-process).
    """

    method: Method = Method.APPROX
    mode: Mode = Mode.JOINT
    backend: Backend = Backend.AUTO
    workers: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "method", Method.coerce(self.method))
        object.__setattr__(self, "mode", Mode.coerce(self.mode))
        object.__setattr__(self, "backend", Backend.coerce(self.backend))
        _require_int("workers", self.workers, minimum=1)

    @classmethod
    def default(cls) -> "QueryOptions":
        """The one shared default for every entry point."""
        return _DEFAULT_OPTIONS

    def with_(self, **kwargs) -> "QueryOptions":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)


_DEFAULT_OPTIONS = QueryOptions()


def coerce_options(
    options: Union[QueryOptions, str, None] = None,
    *,
    method: Optional[str] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    api: str = "query",
) -> QueryOptions:
    """Resolve the (options | legacy kwargs) surface to a QueryOptions.

    The deprecation shim for the pre-typed API: legacy string kwargs
    (and the legacy positional ``method`` string in the ``options``
    slot) are mapped onto a validated :class:`QueryOptions` with
    exactly one :class:`DeprecationWarning` per call.  ``None`` kwargs
    mean "not passed" and fall through to the shared default — this is
    what unifies ``query``'s old ``backend="python"`` default with
    ``query_batch``'s old ``backend=None``.
    """
    if isinstance(options, str):
        # Legacy positional call: engine.query(q, "exact").
        if method is not None:
            raise TypeError(f"{api}() got two values for 'method'")
        method, options = options, None
    legacy = {
        name: value
        for name, value in (
            ("method", method),
            ("mode", mode),
            ("backend", backend),
            ("workers", workers),
        )
        if value is not None
    }
    if options is not None:
        if legacy:
            raise TypeError(
                f"{api}() takes either options=QueryOptions(...) or legacy "
                f"kwargs, not both (got {sorted(legacy)})"
            )
        if not isinstance(options, QueryOptions):
            raise TypeError(
                f"{api}() options must be a QueryOptions, got {type(options).__name__}"
            )
        return options
    if not legacy:
        return QueryOptions.default()
    if legacy.get("workers") == 0:
        # PR-1 query_batch treated workers=0 like 1 (in-process); keep
        # that call form working.  QueryOptions itself stays strict.
        legacy["workers"] = 1
    warnings.warn(
        f"passing {'/'.join(sorted(legacy))} to {api}() as loose kwargs is "
        f"deprecated; pass options=QueryOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return QueryOptions(**legacy)
