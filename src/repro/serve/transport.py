"""Multi-host scatter: socket transport over arena descriptors.

The fork pools of :mod:`repro.serve.pool` cap scatter parallelism at
one machine: every worker is a child of the serving process.  This
module carries the exact same scatter contract over TCP to independent
**shard host processes** (:mod:`repro.serve.shardhost`), each owning a
local engine replica, so the per-user phases fan out across processes
that share nothing with the coordinator but a workload spec and — with
``use_shm`` — the shared-memory arena.

Three layers, coordinator side:

* :class:`FrameCodec` — the wire format.  Length-prefixed frames with a
  fixed 21-byte header (magic, kind, flush sequence, shard id, epoch,
  body length) and a pickled body.  Scatter bodies carry the PR 9
  payloads **verbatim** — :class:`~repro.core.payload.ArenaRef`
  descriptors and packed blocks pickle as the same few hundred bytes
  that cross a fork pipe; result bodies carry the compact gather frames
  of :func:`~repro.core.payload.encode_gather_payload`.  Every pickle
  on the socket path funnels through this class (the ``TR701`` lint
  contract).
* :class:`ShardHostClient` / :class:`ShardRegistry` — one blocking
  client per shard host with send/recv byte counters, plus the registry
  that assigns shards to surviving hosts, marks hosts dead, and
  aggregates fault counters in the same vocabulary as
  :class:`~repro.serve.pool.PoolHealth` (so
  ``ShardedEngine.fault_counters()`` and the server's stats mirror work
  unchanged).
* :class:`SocketExecutor` — a
  :class:`~repro.core.pipeline.ShardedExecutor` whose user-axis scatter
  rounds go to shard hosts instead of fork pools.  Failures map onto
  the existing taxonomy (EOF/reset → :class:`WorkerCrashed`, read
  timeout → :class:`FlushDeadlineExceeded`, refused/exhausted →
  :class:`PoolUnavailable`); the retry ladder re-scatters a failed
  round to the next surviving host, and past the budget the round
  degrades to in-process execution — bitwise-identical results either
  way, because :func:`~repro.core.pipeline.execute_shard_payload` is
  pure.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.pipeline import (
    ScatterFailure,
    ShardHandle,
    ShardedExecutor,
    _encode_payloads,
    execute_shard_payload,
)
from .config import DeadlinePolicy, RetryPolicy
from .errors import FlushDeadlineExceeded, PoolUnavailable, WorkerCrashed

__all__ = [
    "FrameCodec",
    "ShardHostClient",
    "ShardRegistry",
    "SocketExecutor",
    "parse_host_specs",
]


def parse_host_specs(
    specs: Union[str, Sequence[Union[str, Tuple[str, int]]]],
) -> List[Tuple[str, int]]:
    """Normalize ``"h:p,h:p"`` / ``["h:p", (h, p)]`` to ``[(host, port)]``."""
    if isinstance(specs, str):
        specs = [part for part in specs.split(",") if part.strip()]
    out: List[Tuple[str, int]] = []
    for spec in specs:
        if isinstance(spec, tuple):
            host, port = spec
        else:
            host, _, port_s = spec.strip().rpartition(":")
            if not host:
                raise ValueError(f"host spec must be 'host:port', got {spec!r}")
            port = int(port_s)
        if not (0 < int(port) < 65536):
            raise ValueError(f"port out of range in host spec {spec!r}")
        out.append((host, int(port)))
    if not out:
        raise ValueError("at least one shard host is required")
    return out


class FrameCodec:
    """Length-prefixed frame protocol for the shard scatter wire.

    Header (little-endian, 21 bytes)::

        magic    4s   b"RPF1"
        kind     u8   SCATTER / RESULT / ERROR / PING / PONG
        flush    u32  coordinator flush sequence (round id)
        shard    i32  shard id the round targets (-1 = whole dataset)
        epoch    u32  dataset epoch the payloads were encoded under
        length   u32  body length in bytes

    Bodies are pickles: a scatter body is the round's payload list
    (small tuples of :class:`~repro.core.payload.ArenaRef` descriptors
    and packed blocks — the PR 9 codec output, shipped verbatim), a
    result body is the list of gather frames the host produced (mostly
    ``bytes`` from :func:`~repro.core.payload.encode_gather_payload`),
    an error body is a ``(type_name, message)`` pair.  This class is
    the ONE pickle funnel of the socket path — raw ``pickle.dumps`` /
    ``loads`` anywhere else in a transport module is a ``TR701`` lint
    finding.
    """

    MAGIC = b"RPF1"
    HEADER = struct.Struct("<4sBIiII")
    HEADER_SIZE = HEADER.size

    SCATTER = 1
    RESULT = 2
    ERROR = 3
    PING = 4
    PONG = 5

    _KINDS = frozenset((SCATTER, RESULT, ERROR, PING, PONG))

    @classmethod
    def pack(cls, kind: int, flush_seq: int, shard_id: int, epoch: int,
             body: bytes = b"") -> bytes:
        if kind not in cls._KINDS:
            raise ValueError(f"unknown frame kind {kind!r}")
        return cls.HEADER.pack(
            cls.MAGIC, kind, flush_seq, shard_id, epoch, len(body)
        ) + body

    @classmethod
    def unpack_header(cls, header: bytes) -> Tuple[int, int, int, int, int]:
        """``(kind, flush_seq, shard_id, epoch, body_length)``."""
        magic, kind, flush_seq, shard_id, epoch, length = cls.HEADER.unpack(header)
        if magic != cls.MAGIC:
            raise ValueError(f"bad frame magic {magic!r}")
        if kind not in cls._KINDS:
            raise ValueError(f"unknown frame kind {kind!r}")
        return kind, flush_seq, shard_id, epoch, length

    @staticmethod
    def encode_body(obj) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode_body(data: bytes):
        return pickle.loads(data)


class ShardHostClient:
    """Blocking TCP client for one shard host, with byte counters.

    Error mapping (all callers rely on it):

    * connect refused / unreachable → :class:`PoolUnavailable`;
    * EOF / connection reset mid-round → :class:`WorkerCrashed` (the
      host died with our round in flight — same semantics as a dead
      fork worker);
    * read past the deadline → :class:`FlushDeadlineExceeded`.

    ``bytes_sent`` / ``bytes_received`` count actual wire bytes (frame
    headers included) — the numbers behind the multi-host bench's
    |U|/N scaling claim.
    """

    def __init__(self, host: str, port: int, *,
                 connect_timeout_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self._sock: Optional[socket.socket] = None
        self.alive = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.rounds = 0
        self.last_error: Optional[str] = None

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except (OSError, socket.timeout) as exc:
            self.alive = False
            raise PoolUnavailable(
                f"shard host {self.addr} refused connection: {exc!r}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.alive = True

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            self._sock = None
        self.alive = False

    # -- frame I/O -----------------------------------------------------
    def send_frame(self, frame: bytes) -> None:
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        try:
            self._sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            self.close()
            raise WorkerCrashed(
                f"shard host {self.addr} dropped the connection mid-send: "
                f"{exc!r}"
            ) from exc
        self.bytes_sent += len(frame)

    def recv_frame(
        self, deadline_s: Optional[float]
    ) -> Tuple[int, int, int, int, bytes]:
        """One frame: ``(kind, flush_seq, shard_id, epoch, body)``.

        ``deadline_s`` bounds the whole read (header + body); ``None``
        waits unbounded (host death still surfaces as EOF/reset).
        """
        if self._sock is None:
            raise WorkerCrashed(f"shard host {self.addr} is not connected")
        started = time.perf_counter()
        header = self._recv_exactly(FrameCodec.HEADER_SIZE, deadline_s, started)
        kind, flush_seq, shard_id, epoch, length = FrameCodec.unpack_header(header)
        body = (
            self._recv_exactly(length, deadline_s, started) if length else b""
        )
        self.rounds += 1
        return kind, flush_seq, shard_id, epoch, body

    def _recv_exactly(
        self, n: int, deadline_s: Optional[float], started: float
    ) -> bytes:
        assert self._sock is not None
        buf = bytearray()
        while len(buf) < n:
            if deadline_s is None:
                self._sock.settimeout(None)
            else:
                remaining = deadline_s - (time.perf_counter() - started)
                if remaining <= 0:
                    raise FlushDeadlineExceeded(
                        f"shard host {self.addr} exceeded the "
                        f"{deadline_s:.3f}s read deadline"
                    )
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(min(1 << 20, n - len(buf)))
            except socket.timeout as exc:
                raise FlushDeadlineExceeded(
                    f"shard host {self.addr} exceeded the "
                    f"{deadline_s:.3f}s read deadline"
                ) from exc
            except (ConnectionResetError, OSError) as exc:
                self.close()
                raise WorkerCrashed(
                    f"shard host {self.addr} reset the connection: {exc!r}"
                ) from exc
            if not chunk:
                self.close()
                raise WorkerCrashed(
                    f"shard host {self.addr} closed the connection "
                    f"mid-frame (EOF after {len(buf)}/{n} bytes)"
                )
            buf += chunk
            self.bytes_received += len(chunk)
        return bytes(buf)

    # -- liveness ------------------------------------------------------
    def ping(self, timeout_s: float = 2.0) -> bool:
        """One PING/PONG round trip; marks the client dead on failure."""
        try:
            self.send_frame(FrameCodec.pack(FrameCodec.PING, 0, -1, 0))
            kind, *_ = self.recv_frame(timeout_s)
        except ScatterFailure:
            self.close()
            return False
        if kind != FrameCodec.PONG:
            self.close()
            return False
        return True


class ShardRegistry:
    """The coordinator's view of the shard host fleet.

    Static host list for now; liveness comes from :meth:`ping_all`
    heartbeats and from in-band failures (the executor marks a host
    dead the moment a round on it crashes or misses its deadline).
    Shard→host assignment is deterministic over the *surviving* hosts
    — ``shard_id % len(alive)`` — so a re-scatter after a death lands
    on a well-defined survivor.
    """

    def __init__(self, clients: Sequence[ShardHostClient]) -> None:
        if not clients:
            raise ValueError("at least one shard host is required")
        self.clients = list(clients)
        #: Same vocabulary as PoolHealth, so ``fault_counters()`` and
        #: the server's stats mirror fold these in unchanged:
        #: host deaths count as worker deaths, re-scatters as retries.
        self.counters: Dict[str, int] = {
            "respawns": 0, "worker_deaths": 0, "deadline_hits": 0, "retries": 0,
        }
        #: Clients whose death is already counted (one death per host
        #: per downtime — the client closes its own socket before the
        #: registry hears about the failure, so ``alive`` can't dedupe).
        self._dead_counted: set = set()

    @classmethod
    def from_specs(
        cls,
        specs: Union[str, Sequence[Union[str, Tuple[str, int]]]],
        *,
        connect_timeout_s: float = 5.0,
    ) -> "ShardRegistry":
        return cls([
            ShardHostClient(host, port, connect_timeout_s=connect_timeout_s)
            for host, port in parse_host_specs(specs)
        ])

    def connect_all(self) -> None:
        """Connect every host; raise ``PoolUnavailable`` if none came up."""
        last: Optional[Exception] = None
        for client in self.clients:
            try:
                client.connect()
            except PoolUnavailable as exc:
                last = exc
        if not self.alive_hosts():
            raise PoolUnavailable(
                f"no shard host reachable out of {len(self.clients)}"
            ) from last

    def alive_hosts(self) -> List[ShardHostClient]:
        return [c for c in self.clients if c.alive]

    def host_for(self, shard_id: int) -> ShardHostClient:
        alive = self.alive_hosts()
        if not alive:
            raise PoolUnavailable(
                f"all {len(self.clients)} shard hosts are dead"
            )
        return alive[shard_id % len(alive)]

    def mark_dead(self, client: ShardHostClient, reason: Exception) -> None:
        if id(client) not in self._dead_counted:
            self._dead_counted.add(id(client))
            self.counters["worker_deaths"] += 1
        client.close()
        client.last_error = repr(reason)

    def ping_all(self, timeout_s: float = 2.0) -> Dict[str, bool]:
        """Heartbeat sweep: one PING round trip per host.

        Dead hosts are pinged too — ``ping`` reconnects first, so a
        restarted host process resurrects into the rotation (and a
        later death counts again).
        """
        results: Dict[str, bool] = {}
        for client in self.clients:
            ok = client.ping(timeout_s)
            if ok:
                self._dead_counted.discard(id(client))
            else:
                self.mark_dead(client, RuntimeError("heartbeat ping failed"))
            results[client.addr] = ok
        return results

    def fault_counters(self) -> Dict[str, int]:
        return dict(self.counters)

    def health_rows(self) -> List[dict]:
        """Per-host rows in the ``pool_health()`` display shape."""
        return [
            {
                "pool": f"host-{client.addr}",
                "state": "healthy" if client.alive else "dead",
                "rounds": client.rounds,
                "bytes_sent": client.bytes_sent,
                "bytes_received": client.bytes_received,
            }
            for client in self.clients
        ]

    def bytes_totals(self) -> Tuple[int, int]:
        sent = sum(c.bytes_sent for c in self.clients)
        received = sum(c.bytes_received for c in self.clients)
        return sent, received

    def close(self) -> None:
        for client in self.clients:
            client.close()


class SocketExecutor(ShardedExecutor):
    """Scatter the user-axis rounds to shard hosts over TCP.

    Same ``split``/``run``/``merge`` contract as the fork-pool
    :class:`~repro.core.pipeline.ShardedExecutor` — the pipeline stages
    run unchanged; only the round transport differs.  Query-axis stages
    (the central searches) inherit the base implementation and run
    in-process on the coordinator.

    Per failed round the ladder is: mark the host dead, re-scatter the
    *same* frame body to the next surviving host (``RetryPolicy``
    budget), and past the budget — or with no survivors — run the
    round's payloads in-process via
    :func:`~repro.core.pipeline.execute_shard_payload` (pure, so the
    merged answer is bitwise-identical; the round is counted degraded).
    """

    def __init__(
        self,
        sharded,
        registry: ShardRegistry,
        *,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[DeadlinePolicy] = None,
    ) -> None:
        super().__init__(sharded)
        self.registry = registry
        self.retry = retry if retry is not None else RetryPolicy()
        self.deadline = deadline if deadline is not None else DeadlinePolicy()
        self._flush_seq = 0
        #: RESULT bodies read off a connection while waiting for a
        #: different shard's answer.  After a re-scatter two shards
        #: share one host connection, so round responses interleave;
        #: frames for a sibling shard of the SAME flush round are
        #: stashed here for that shard's collector, keyed
        #: ``(flush_seq, shard_id)``.  Cleared per scatter round.
        self._stash: Dict[Tuple[int, int], bytes] = {}

    # -- scatter routing -----------------------------------------------
    def _scatter_users(self, stage, ctx):
        sharded = self.sharded
        queries = ctx.require("queries")
        if stage.name == "refine" and not ctx.require("need_ks"):
            return 0, 0, 0, 0, 0, 0
        self._flush_seq += 1
        self._stash.clear()  # orphans of abandoned earlier rounds
        flush_seq = self._flush_seq
        epoch = getattr(sharded.dataset, "epoch", 0)
        handles = [
            ShardHandle(
                shard_id=shard.shard_id,
                dataset=shard.engine.dataset,
                rsk_by_k=shard.rsk_by_k,
                stats=shard.stats,
            )
            for shard in sharded._shards
            if shard.users > 0
        ]
        items = len(ctx["need_ks"]) if stage.name == "refine" else len(queries)
        for handle in handles:
            handle.stats.queue_depth_peak = max(
                handle.stats.queue_depth_peak, items
            )
            handle.stats.scatter_flushes += 1
        plans = [stage.split(ctx, handle) for handle in handles]
        codec = getattr(sharded.root, "payload_codec", None)
        bodies: List[bytes] = []
        bytes_out = bytes_in = 0
        for i in range(len(handles)):
            plans[i] = _encode_payloads(codec, stage.name, plans[i])
            bodies.append(FrameCodec.encode_body(plans[i]))
        # Dispatch everything before collecting anything, so hosts run
        # their rounds concurrently (the host loop is one frame at a
        # time per connection, but hosts are independent processes).
        dispatched: List[Optional[ShardHostClient]] = [None] * len(handles)
        for i, handle in enumerate(handles):
            frame = FrameCodec.pack(
                FrameCodec.SCATTER, flush_seq, handle.shard_id, epoch, bodies[i]
            )
            client = None
            try:
                client = self.registry.host_for(handle.shard_id)
                client.send_frame(frame)
            except ScatterFailure as exc:
                self._note_failure(client, exc)
            else:
                dispatched[i] = client
                bytes_out += len(frame)
        returned: List[Optional[list]] = [None] * len(handles)
        retries = degraded = 0
        deadline_s = self.deadline.flush_deadline_s
        for i, handle in enumerate(handles):
            chunks, used_retries, round_out, round_in = self._collect_round(
                handle, bodies[i], flush_seq, epoch, dispatched[i], deadline_s
            )
            retries += used_retries
            handle.stats.retries += used_retries
            bytes_out += round_out
            bytes_in += round_in
            if chunks is None:
                # Ladder exhausted (or no surviving host): the same
                # payloads, in-process — execute_shard_payload is pure
                # and the decode funnel resolves arena refs in the
                # parent, so the merged answer is unchanged.
                returned[i] = [
                    execute_shard_payload(handle.dataset, payload)
                    for payload in plans[i]
                ]
                degraded += 1
                handle.stats.degraded_rounds += 1
            else:
                returned[i] = self._decode_chunks(chunks)
        self._account(stage, handles, returned, items)
        t_merge = time.perf_counter()
        stage.merge(ctx, returned)
        if stage.name == "shortlist":
            sharded._merge_s += time.perf_counter() - t_merge
        if stage.name == "refine":
            for handle, chunks in zip(handles, returned):
                for partial in (p for chunk in chunks for p in chunk):
                    handle.rsk_by_k[partial.k] = partial.rsk
        return len(handles), items, retries, degraded, bytes_out, bytes_in

    # -- round transport -----------------------------------------------
    def _collect_round(
        self,
        handle: ShardHandle,
        body: bytes,
        flush_seq: int,
        epoch: int,
        client: Optional[ShardHostClient],
        deadline_s: Optional[float],
    ) -> Tuple[Optional[list], int, int, int]:
        """Collect one shard's round, re-scattering across survivors.

        Returns ``(chunks | None, retries_used, extra_bytes_out,
        bytes_in)`` — ``None`` chunks means the ladder is exhausted and
        the caller must degrade the round in-process.
        """
        attempts = self.retry.max_retries + 1
        retries_used = 0
        extra_out = bytes_in = 0
        for attempt in range(attempts):
            stashed = self._stash.pop((flush_seq, handle.shard_id), None)
            if stashed is not None:
                # A sibling shard's collector already read our answer
                # off the shared connection.
                bytes_in += FrameCodec.HEADER_SIZE + len(stashed)
                return (
                    FrameCodec.decode_body(stashed),
                    retries_used, extra_out, bytes_in,
                )
            if client is None:
                # (Re-)dispatch: first attempt whose send already
                # failed, or a retry after a death — pick a survivor.
                try:
                    client = self.registry.host_for(handle.shard_id)
                    frame = FrameCodec.pack(
                        FrameCodec.SCATTER, flush_seq, handle.shard_id,
                        epoch, body,
                    )
                    client.send_frame(frame)
                    extra_out += len(frame)
                except PoolUnavailable:
                    return None, retries_used, extra_out, bytes_in
                except ScatterFailure as exc:
                    self._note_failure(client, exc)
                    client = None
                    if attempt + 1 < attempts:
                        retries_used += 1
                        self.registry.counters["retries"] += 1
                    continue
            try:
                rbody = self._recv_matching(
                    client, flush_seq, handle.shard_id, deadline_s
                )
            except PoolUnavailable:
                return None, retries_used, extra_out, bytes_in
            except ScatterFailure as exc:
                self._note_failure(client, exc)
                client = None
                if attempt + 1 < attempts:
                    retries_used += 1
                    self.registry.counters["retries"] += 1
                continue
            bytes_in += FrameCodec.HEADER_SIZE + len(rbody)
            return FrameCodec.decode_body(rbody), retries_used, extra_out, bytes_in
        return None, retries_used, extra_out, bytes_in

    def _recv_matching(
        self,
        client: ShardHostClient,
        flush_seq: int,
        shard_id: int,
        deadline_s: Optional[float],
    ) -> bytes:
        """Read frames until this round's RESULT body arrives.

        After a re-scatter a host connection can carry rounds for more
        than one shard; responses arrive in the host's execution order,
        not ours.  RESULT frames for sibling shards of the same flush
        round are stashed for their own collectors; anything stale (an
        abandoned earlier round) is discarded.
        """
        while True:
            kind, seq, sid, _ep, rbody = client.recv_frame(deadline_s)
            if seq != flush_seq:
                continue  # stale frame from an abandoned round
            if kind == FrameCodec.RESULT:
                if sid == shard_id:
                    return rbody
                self._stash[(seq, sid)] = rbody
                continue
            if kind == FrameCodec.ERROR and sid == shard_id:
                # A task error on the host: treat like a crashed round
                # (the host engine is a replica; a genuine payload bug
                # reproduces identically — and authentically — on the
                # in-process degrade path).
                raise WorkerCrashed(
                    f"shard host {client.addr} answered round "
                    f"(seq={flush_seq}, shard={shard_id}) with remote "
                    f"error {FrameCodec.decode_body(rbody)!r}"
                )

    def _note_failure(
        self, client: Optional[ShardHostClient], exc: Exception
    ) -> None:
        if isinstance(exc, FlushDeadlineExceeded):
            self.registry.counters["deadline_hits"] += 1
        if client is not None:
            self.registry.mark_dead(client, exc)

    @staticmethod
    def _decode_chunks(chunks: list) -> list:
        from ..core.payload import decode_gather_payload

        return [decode_gather_payload(c) for c in chunks]
